// Protocol states for the Hammer-style MOESI protocol of the paper (Fig. 3)
// plus the transient states any real implementation needs.
//
// Stable states follow the paper's naming:
//   MM - exclusive and potentially locally modified (conventional M)
//   M  - exclusive but not written (conventional E); stores are NOT allowed
//        in M (the paper is explicit about this) and must upgrade via GetX
//   O  - owns the line (responsible for supplying data / writeback),
//        sharers may exist
//   S  - shared, read-only
//   I  - invalid
//
// Transient states:
//   IS_D  - GetS issued, waiting for data
//   IM_D  - GetX issued from I, waiting for data
//   SM_D  - GetX (upgrade) issued from S/M/O, data still readable
//   MI_A / OI_A - writeback (Put) issued, waiting for WbAck; these live in
//        the writeback buffer, not the cache array
//   II_A  - was MI_A/OI_A but a snoop took the line away; waiting for the
//        (now stale) WbAck
#pragma once

#include <cstdint>

#include "sim/types.h"

namespace dscoh {

enum class CohState : std::uint8_t {
    kI,
    kS,
    kO,
    kM,
    kMM,
    kIS_D,
    kIM_D,
    kSM_D,
    kMI_A,
    kOI_A,
    kII_A,
};

const char* to_string(CohState s);

constexpr bool isStable(CohState s)
{
    switch (s) {
    case CohState::kI:
    case CohState::kS:
    case CohState::kO:
    case CohState::kM:
    case CohState::kMM:
        return true;
    default:
        return false;
    }
}

/// May a local load read the line's data in this state?
constexpr bool canRead(CohState s)
{
    switch (s) {
    case CohState::kS:
    case CohState::kO:
    case CohState::kM:
    case CohState::kMM:
    case CohState::kSM_D: // upgrade in flight; S-copy data still valid
        return true;
    default:
        return false;
    }
}

/// May a local store write the line in this state? Only MM: the paper
/// forbids stores in M (conventional E), so M upgrades through GetX.
constexpr bool canWrite(CohState s) { return s == CohState::kMM; }

/// Is this agent the one responsible for supplying data on a snoop?
constexpr bool isOwner(CohState s)
{
    return s == CohState::kMM || s == CohState::kM || s == CohState::kO;
}

/// Does eviction of this stable state require a writeback (Put with data)?
/// M is exclusive-clean: memory is current, silent drop is safe. S likewise.
constexpr bool needsWriteback(CohState s)
{
    return s == CohState::kMM || s == CohState::kO;
}

/// Deliberate protocol bugs for checker/fuzzer validation. A CacheAgent (or
/// its derived CPU agent) configured with one of these will *mis-implement*
/// the protocol in a specific, realistic way; the CoherenceChecker must
/// catch every one of them. Never enabled outside tests and the fuzzer.
enum class InjectedBug : std::uint8_t {
    kNone,
    /// CPU side ignores the invalidation a full-line direct store implies:
    /// the stale local copy survives a remote store (Fig. 3 kRemoteStore
    /// edges dropped).
    kSkipRemoteStoreInval,
    /// A snoop-GetX still supplies data but leaves the local copy valid —
    /// two exclusive owners after the requester's fill.
    kSkipSnoopInvalidate,
    /// Writeback acks are dropped on the floor: MI_A/OI_A entries wedge in
    /// the writeback buffer forever (deadlock / leak detection).
    kDropWbAck,
    /// Multi-GPU: the home slice grants timestamp leases but skips every
    /// lease-hold protection (write stall, snoop hold, eviction pin), so a
    /// write on the home GPU lands while remote leaseholders still serve
    /// the old epoch's data — a cross-shard ordering violation the fuzzer
    /// must catch via stale reads / mode divergence.
    kCrossShardOrder,
};

const char* to_string(InjectedBug b);

/// Per-line metadata stored in a coherent cache array.
struct CohMeta {
    CohState state = CohState::kI;
    /// Line was deposited by a direct store (for compulsory-miss accounting
    /// and the traffic breakdown bench).
    bool dsFilled = false;
};

} // namespace dscoh
