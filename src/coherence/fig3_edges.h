// The paper's Fig. 3 as data: every (state, event) -> state edge the
// protocol implementation is expected to take, expressed in the exact
// triples the transition-coverage recorder sees. The gap-report test
// (tests/coh_fig3_gap_test.cpp) sweeps workloads and directed scenarios and
// fails listing any table row no run exercised — so a protocol change that
// silently makes an edge unreachable (or a new edge that nothing tests)
// shows up as a coverage gap, not as silence.
//
// The table covers the stable-state diagram (I, S, O, M, MM) including the
// bold remote-store edges of the direct-store extension, spelled out as the
// implementation's recorded transitions: a logical stable-to-stable edge
// that passes through a transient appears as its request leg plus its
// completion leg (e.g. I --Load--> IS_D and IS_D --Fill--> S for Fig. 3's
// I -> S). Race-only transients (SM_D losing its upgrade, a snooped
// writeback buffer entry) are listed separately in kRaceEdges: real,
// tested-elsewhere behaviour, but not part of Fig. 3's stable diagram and
// not reachable by directed single-pass programs.
#pragma once

#include <cstddef>

#include "coherence/transition_coverage.h"

namespace dscoh {

struct Fig3Edge {
    CohState from;
    CohEvent event;
    CohState to;
    const char* note;
};

inline constexpr Fig3Edge kFig3StableEdges[] = {
    // Misses out of I (request legs).
    {CohState::kI, CohEvent::kLoad, CohState::kIS_D, "load miss"},
    {CohState::kI, CohEvent::kStore, CohState::kIM_D, "store miss"},
    // Fills (completion legs). A load fill grants M when no other sharer
    // exists, S otherwise — both are Fig. 3 outcomes of the same edge.
    {CohState::kIS_D, CohEvent::kFill, CohState::kM, "exclusive grant"},
    {CohState::kIS_D, CohEvent::kFill, CohState::kS, "shared fill"},
    {CohState::kIM_D, CohEvent::kFill, CohState::kMM, "store fill"},
    // Upgrades: the paper forbids stores in M, so S, O and M all reach MM
    // through a GetX (SM_D keeps its readable copy meanwhile).
    {CohState::kS, CohEvent::kStore, CohState::kSM_D, "upgrade from S"},
    {CohState::kO, CohEvent::kStore, CohState::kSM_D, "upgrade from O"},
    {CohState::kM, CohEvent::kStore, CohState::kSM_D,
     "upgrade from M (no stores in M)"},
    {CohState::kSM_D, CohEvent::kFill, CohState::kMM, "upgrade completes"},
    // Hits (Fig. 3 self-loops).
    {CohState::kS, CohEvent::kLoad, CohState::kS, "read hit"},
    {CohState::kO, CohEvent::kLoad, CohState::kO, "read hit as owner"},
    {CohState::kM, CohEvent::kLoad, CohState::kM, "read hit exclusive"},
    {CohState::kMM, CohEvent::kLoad, CohState::kMM, "read hit dirty"},
    {CohState::kMM, CohEvent::kStore, CohState::kMM, "write hit"},
    // Snoops.
    {CohState::kM, CohEvent::kSnpGetS, CohState::kO, "reader downgrades M"},
    {CohState::kMM, CohEvent::kSnpGetS, CohState::kO, "reader downgrades MM"},
    {CohState::kO, CohEvent::kSnpGetS, CohState::kO, "owner keeps supplying"},
    {CohState::kS, CohEvent::kSnpGetX, CohState::kI, "writer invalidates S"},
    {CohState::kO, CohEvent::kSnpGetX, CohState::kI, "writer invalidates O"},
    {CohState::kM, CohEvent::kSnpGetX, CohState::kI, "writer invalidates M"},
    {CohState::kMM, CohEvent::kSnpGetX, CohState::kI,
     "writer invalidates MM"},
    // Replacement.
    {CohState::kS, CohEvent::kEvict, CohState::kI, "clean drop"},
    {CohState::kM, CohEvent::kEvict, CohState::kI, "clean-exclusive drop"},
    {CohState::kMM, CohEvent::kEvict, CohState::kMI_A, "dirty writeback"},
    {CohState::kO, CohEvent::kEvict, CohState::kOI_A, "owner writeback"},
    {CohState::kMI_A, CohEvent::kWbAck, CohState::kI, "writeback acked"},
    {CohState::kOI_A, CohEvent::kWbAck, CohState::kI, "owner wb acked"},
    // Direct-store extension, CPU side (Fig. 3 bold edges): a remote store
    // leaves the CPU in I from every starting state.
    {CohState::kI, CohEvent::kRemoteStore, CohState::kI,
     "DS line is never CPU-cached"},
    {CohState::kS, CohEvent::kRemoteStore, CohState::kI, "drop clean copy"},
    {CohState::kM, CohEvent::kRemoteStore, CohState::kI,
     "drop clean-exclusive copy"},
    {CohState::kMM, CohEvent::kRemoteStore, CohState::kI,
     "flush dirty copy first"},
    {CohState::kO, CohEvent::kRemoteStore, CohState::kI,
     "flush owned copy first"},
    // Direct-store extension, slice side (Fig. 3 blue edge): full-line
    // install lands exclusive-clean (write-through), partial stores merge
    // into a fetched exclusive copy.
    {CohState::kI, CohEvent::kRemoteStore, CohState::kM,
     "slice full-line install"},
    {CohState::kMM, CohEvent::kRemoteStore, CohState::kMM,
     "slice partial-line merge"},
    // Delivery hardening (PROTOCOL.md "Delivery hardening"): the recovery
    // edges of the ACK/timeout/retransmit machinery under fault injection.
    {CohState::kI, CohEvent::kFallbackStore, CohState::kMM,
     "CPU store degraded to the coherent pull path"},
    {CohState::kI, CohEvent::kCorruptPush, CohState::kI,
     "corrupt DsPutX detected by checksum, NACKed"},
    {CohState::kMM, CohEvent::kDupPush, CohState::kMM,
     "duplicate DsPutX squashed, ack replayed"},
    // Multi-GPU directory sharding + timestamp fast path (PROTOCOL.md
    // "Directory sharding across GPUs"): a slice touching a remotely-homed
    // line pulls through that line's home shard, and GPU<->GPU reads may
    // ride a timestamp lease instead.
    {CohState::kI, CohEvent::kRemoteGetS, CohState::kIS_D,
     "slice load miss on a remotely-homed line"},
    {CohState::kI, CohEvent::kRemoteGetX, CohState::kIM_D,
     "slice store miss on a remotely-homed line"},
    {CohState::kM, CohEvent::kTsGrant, CohState::kM,
     "home slice leases its clean-exclusive copy"},
    {CohState::kMM, CohEvent::kTsGrant, CohState::kMM,
     "home slice leases its dirty copy"},
    {CohState::kI, CohEvent::kTsFill, CohState::kI,
     "requester installs leased data in its epoch buffer"},
    {CohState::kI, CohEvent::kTsExpire, CohState::kI,
     "leased copy self-invalidates at epoch expiry"},
    {CohState::kI, CohEvent::kTsFallback, CohState::kI,
     "no lease available, requester takes the pull path"},
    {CohState::kMM, CohEvent::kLeaseHold, CohState::kMM,
     "write on the home GPU stalls until the lease expires"},
};

inline constexpr std::size_t kFig3StableEdgeCount =
    sizeof(kFig3StableEdges) / sizeof(kFig3StableEdges[0]);

/// Transitions that exist only when requests race: not part of Fig. 3's
/// stable diagram, excluded from the gap report, exercised by the fuzzer.
inline constexpr Fig3Edge kRaceEdges[] = {
    {CohState::kSM_D, CohEvent::kSnpGetX, CohState::kIM_D,
     "upgrade lost the race"},
    {CohState::kMI_A, CohEvent::kSnpGetX, CohState::kII_A,
     "writeback snooped"},
    {CohState::kOI_A, CohEvent::kSnpGetX, CohState::kII_A,
     "owner writeback snooped"},
    {CohState::kII_A, CohEvent::kWbAck, CohState::kI,
     "superseded writeback acked"},
    // A write can also catch a leased line still clean-exclusive (DS push
    // leased before any local store) or owned-shared — same hold, but only
    // the MM flavour is a stable Fig. 3 row.
    {CohState::kM, CohEvent::kLeaseHold, CohState::kM,
     "write to a leased clean-exclusive line stalls"},
    {CohState::kO, CohEvent::kLeaseHold, CohState::kO,
     "write to a leased owned line stalls"},
};

} // namespace dscoh
