#include "coherence/cache_agent.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "check/coherence_checker.h"
#include "coherence/transition_coverage.h"
#include "sim/log.h"

namespace dscoh {

const char* to_string(CohState s)
{
    switch (s) {
    case CohState::kI: return "I";
    case CohState::kS: return "S";
    case CohState::kO: return "O";
    case CohState::kM: return "M";
    case CohState::kMM: return "MM";
    case CohState::kIS_D: return "IS_D";
    case CohState::kIM_D: return "IM_D";
    case CohState::kSM_D: return "SM_D";
    case CohState::kMI_A: return "MI_A";
    case CohState::kOI_A: return "OI_A";
    case CohState::kII_A: return "II_A";
    }
    return "?";
}

const char* to_string(InjectedBug b)
{
    switch (b) {
    case InjectedBug::kNone: return "none";
    case InjectedBug::kSkipRemoteStoreInval: return "skip-remote-store-inval";
    case InjectedBug::kSkipSnoopInvalidate: return "skip-snoop-inval";
    case InjectedBug::kDropWbAck: return "drop-wback";
    case InjectedBug::kCrossShardOrder: return "cross-shard-order";
    }
    return "?";
}

CacheAgent::CacheAgent(std::string name, SimContext& ctx, const Params& params)
    : SimObject(std::move(name), ctx), params_(params),
      array_(params.geometry), mshr_(params.mshrs)
{
    assert(params_.requestNet && params_.forwardNet && params_.responseNet);
}

void CacheAgent::noteTransition(CohState from, CohEvent event, CohState to,
                                Addr base)
{
    recordTransition(from, event, to);
    if (TraceSession* t = tracing(TraceCat::kCoherence))
        t->transition(name(), to_string(event), to_string(from), to_string(to),
                      curTick(), base);
    if (CoherenceChecker* c = checking())
        c->onTransition(name(), base, from, event, to, curTick());
}

bool CacheAgent::probeHit(Addr addr, bool exclusive) const
{
    const Line* line = array_.find(addr);
    return line != nullptr && satisfies(line->meta.state, exclusive);
}

void CacheAgent::access(Addr addr, bool exclusive, AccessDone done)
{
    const Addr base = lineAlign(addr);

    // Merge into an outstanding transaction for this line.
    if (auto* entry = mshr_.find(base)) {
        entry->targets.push_back({exclusive, std::move(done)});
        return;
    }

    // The line is draining through the writeback buffer: wait for the WbAck
    // rather than creating a second copy.
    if (inWriteback(base)) {
        deferrals_.inc();
        deferUntilResourceFree([this, base, exclusive, d = std::move(done)]() mutable {
            access(base, exclusive, std::move(d));
        });
        return;
    }

    Line* line = array_.find(base);
    if (line != nullptr && satisfies(line->meta.state, exclusive)) {
        noteTransition(line->meta.state,
                       exclusive ? CohEvent::kStore : CohEvent::kLoad,
                       line->meta.state, base);
        array_.touch(base);
        done(*line);
        return;
    }

    // A transient line without an MSHR entry is impossible: every transient
    // array state is created together with its entry.
    assert(line == nullptr || isStable(line->meta.state));

    if (mshr_.full()) {
        deferrals_.inc();
        deferUntilResourceFree([this, base, exclusive, d = std::move(done)]() mutable {
            access(base, exclusive, std::move(d));
        });
        return;
    }

    startTransaction(line, base, exclusive, std::move(done));
}

void CacheAgent::startTransaction(Line* existing, Addr base, bool exclusive,
                                  AccessDone done)
{
    if (existing != nullptr) {
        // Upgrade from S/M/O (stores are not allowed in M, per the paper, so
        // M also upgrades through GetX). Data stays readable while SM_D.
        assert(exclusive && canRead(existing->meta.state));
        noteTransition(existing->meta.state, CohEvent::kStore,
                       CohState::kSM_D, base);
        existing->meta.state = CohState::kSM_D;
        upgrades_.inc();
        if (CoherenceChecker* c = checking())
            c->onMshrAllocate(name(), base, curTick());
        auto& entry = mshr_.allocate(base);
        entry.allocatedAt = curTick();
        entry.targets.push_back({exclusive, std::move(done)});
        getxIssued_.inc();
        std::uint64_t prof = 0;
        if (TxnProfiler* p = profiling())
            prof = p->begin(TxnKind::kUpgrade, base, name(), curTick());
        sendToHome(MsgType::kGetX, base, /*ownerFlag=*/false, prof);
        return;
    }

    Line* way = makeRoom(base);
    if (way == nullptr) {
        // Every way in the set is pinned by an in-flight transaction.
        deferrals_.inc();
        deferUntilResourceFree([this, base, exclusive, d = std::move(done)]() mutable {
            access(base, exclusive, std::move(d));
        });
        return;
    }
    Line& line = array_.install(*way, base);
    line.meta.state = exclusive ? CohState::kIM_D : CohState::kIS_D;
    noteTransition(CohState::kI,
                   exclusive ? CohEvent::kStore : CohEvent::kLoad,
                   line.meta.state, base);
    if (CoherenceChecker* c = checking())
        c->onMshrAllocate(name(), base, curTick());
    auto& entry = mshr_.allocate(base);
    entry.allocatedAt = curTick();
    entry.targets.push_back({exclusive, std::move(done)});
    std::uint64_t prof = 0;
    if (TxnProfiler* p = profiling())
        prof = p->begin(exclusive ? TxnKind::kGetX : TxnKind::kGetS, base,
                        name(), curTick());
    if (exclusive) {
        getxIssued_.inc();
        sendToHome(MsgType::kGetX, base, /*ownerFlag=*/false, prof);
    } else {
        getsIssued_.inc();
        sendToHome(MsgType::kGetS, base, /*ownerFlag=*/false, prof);
    }
}

CacheAgent::Line* CacheAgent::makeRoom(Addr addr)
{
    if (Line* free = array_.findFreeWay(addr))
        return free;

    const bool wbbFull = writebackBufferFull();
    Line* victim = array_.selectVictim(addr, [this, wbbFull](const Line& l) {
        if (!isStable(l.meta.state))
            return false;
        // A line under a granted timestamp lease is pinned: evicting it
        // would let another agent take ownership and write while remote
        // leaseholders still read the old epoch's data.
        if (holdUntil(l.base) > curTick())
            return false;
        // A dirty victim needs a writeback-buffer slot and must not collide
        // with a line already draining.
        if (needsWriteback(l.meta.state) && (wbbFull || inWriteback(l.base)))
            return false;
        return true;
    });
    if (victim == nullptr)
        return nullptr;

    onInvalidate(victim->base);
    if (needsWriteback(victim->meta.state)) {
        noteTransition(victim->meta.state, CohEvent::kEvict,
                       victim->meta.state == CohState::kMM ? CohState::kMI_A
                                                           : CohState::kOI_A,
                       victim->base);
        issueWriteback(victim->base, victim->data, victim->meta.state);
    } else {
        noteTransition(victim->meta.state, CohEvent::kEvict, CohState::kI,
                       victim->base);
    }
    array_.invalidate(*victim);
    return victim;
}

void CacheAgent::issueWriteback(Addr base, const DataBlock& data,
                                CohState fromState)
{
    assert(needsWriteback(fromState));
    assert(!inWriteback(base) && !writebackBufferFull());
    WbEntry entry;
    entry.state = fromState == CohState::kMM ? CohState::kMI_A : CohState::kOI_A;
    entry.data = data;
    wbb_.emplace(base, std::move(entry));
    writebacks_.inc();

    Message msg;
    msg.type = MsgType::kPut;
    msg.addr = base;
    msg.src = params_.self;
    msg.dst = homeFor(base);
    msg.requester = params_.self;
    msg.data = data;
    msg.mask.set(0, kLineSize);
    msg.hasData = true;
    msg.dirty = true;
    msg.txn = nextTxn_++;
    if (TxnProfiler* p = profiling())
        msg.prof = p->begin(TxnKind::kWriteback, base, name(), curTick());
    params_.requestNet->send(std::move(msg));
}

void CacheAgent::sendToHome(MsgType type, Addr base, bool ownerFlag,
                            std::uint64_t prof)
{
    Message msg;
    msg.type = type;
    msg.addr = base;
    msg.src = params_.self;
    msg.dst = homeFor(base);
    msg.requester = params_.self;
    // For kUnblock, `exclusive` carries "requester ended the transaction as
    // the line's owner (MM)" so home can maintain its owner registry.
    msg.exclusive = ownerFlag;
    msg.txn = nextTxn_++;
    msg.prof = prof;
    params_.requestNet->send(std::move(msg));
}

void CacheAgent::sendDataTo(NodeId dst, Addr base, const DataBlock& data,
                            bool dirty, bool exclusive, std::uint64_t txn,
                            std::uint64_t prof)
{
    Message msg;
    msg.type = MsgType::kData;
    msg.addr = base;
    msg.src = params_.self;
    msg.dst = dst;
    msg.requester = dst;
    msg.data = data;
    msg.mask.set(0, kLineSize);
    msg.hasData = true;
    msg.dirty = dirty;
    msg.exclusive = exclusive;
    msg.txn = txn;
    msg.prof = prof;
    dataSupplied_.inc();
    if (params_.dataSupplyLatency == 0 && params_.dataSupplyInterval == 0) {
        if (TxnProfiler* p = profiling())
            p->hop(prof, TxnStage::kSupplySend, name(), curTick());
        params_.responseNet->send(std::move(msg));
        return;
    }
    // Reading the line out of the hierarchy takes time and uses a single
    // read port; the requester sees it as the slow cache-to-cache leg of a
    // pull, and concurrent pulls serialize behind each other.
    const Tick start = std::max(curTick(), supplyPortFreeAt_);
    supplyPortFreeAt_ = start + params_.dataSupplyInterval;
    Message* slot = context().msgPool.acquire();
    *slot = std::move(msg);
    queue().scheduleInline(start + params_.dataSupplyLatency,
                           [this, slot] {
                               if (TxnProfiler* p = profiling())
                                   p->hop(slot->prof, TxnStage::kSupplySend,
                                          name(), curTick());
                               params_.responseNet->send(std::move(*slot));
                               context().msgPool.release(slot);
                           },
                           EventPriority::kController);
}

void CacheAgent::handleForward(const Message& msg)
{
    switch (msg.type) {
    case MsgType::kSnpGetS:
    case MsgType::kSnpGetX:
        // A granted timestamp lease freezes the line: the snoop (and with
        // it the competing writer) waits out the epoch so every remote
        // leaseholder reads consistent data until its own expiry. Re-checks
        // on arrival in case the line was re-leased meanwhile; grants never
        // extend an active lease, so the wait is bounded.
        if (const Tick hold = holdUntil(msg.addr); hold > curTick()) {
            Message* m = context().msgPool.acquire();
            *m = msg;
            queue().scheduleInline(hold + 1,
                                   [this, m] {
                                       handleForward(*m);
                                       context().msgPool.release(m);
                                   },
                                   EventPriority::kController);
            break;
        }
        if (params_.snoopTagLatency == 0) {
            handleSnoop(msg);
        } else {
            Message* m = context().msgPool.acquire();
            *m = msg;
            queue().scheduleAfterInline(params_.snoopTagLatency,
                                        [this, m] {
                                            handleSnoop(*m);
                                            context().msgPool.release(m);
                                        },
                                        EventPriority::kController);
        }
        break;
    case MsgType::kWbAck: {
        if (params_.injectBug == InjectedBug::kDropWbAck)
            break; // deliberate bug: the writeback entry wedges forever
        const auto it = wbb_.find(msg.addr);
        assert(it != wbb_.end() && "WbAck for unknown writeback");
        noteTransition(it->second.state, CohEvent::kWbAck, CohState::kI,
                       msg.addr);
        wbb_.erase(it);
        if (TxnProfiler* p = profiling()) {
            p->hop(msg.prof, TxnStage::kAckArrive, name(), curTick());
            p->end(msg.prof, curTick());
        }
        replayBlocked();
        break;
    }
    default:
        assert(false && "unexpected forward message");
    }
}

void CacheAgent::handleSnoop(const Message& msg)
{
    snoops_.inc();
    const Addr base = msg.addr;
    const bool wantsExclusive = msg.type == MsgType::kSnpGetX;
    if (TxnProfiler* p = profiling())
        p->hop(msg.prof, TxnStage::kSnpArrive, name(), curTick());

    bool suppliedData = false;
    bool wasSharer = false;

    if (const auto it = wbb_.find(base); it != wbb_.end()) {
        // The line is draining. Until the WbAck arrives we still act as its
        // owner (unless a previous snoop already took it away: II_A).
        WbEntry& entry = it->second;
        if (entry.state != CohState::kII_A) {
            sendDataTo(msg.requester, base, entry.data, /*dirty=*/true,
                       wantsExclusive, msg.txn, msg.prof);
            suppliedData = true;
            wasSharer = true;
            if (wantsExclusive) {
                noteTransition(entry.state, CohEvent::kSnpGetX,
                               CohState::kII_A, base);
                entry.state = CohState::kII_A;
            }
        }
    } else if (Line* line = array_.find(base)) {
        switch (line->meta.state) {
        case CohState::kMM:
        case CohState::kM:
        case CohState::kO:
            sendDataTo(msg.requester, base, line->data,
                       /*dirty=*/line->meta.state != CohState::kM,
                       wantsExclusive, msg.txn, msg.prof);
            suppliedData = true;
            wasSharer = true;
            if (wantsExclusive) {
                if (params_.injectBug == InjectedBug::kSkipSnoopInvalidate)
                    break; // deliberate bug: keep a second "exclusive" copy
                noteTransition(line->meta.state, CohEvent::kSnpGetX,
                               CohState::kI, base);
                onInvalidate(base);
                array_.invalidate(*line);
            } else {
                noteTransition(line->meta.state, CohEvent::kSnpGetS,
                               CohState::kO, base);
                line->meta.state = CohState::kO;
            }
            break;
        case CohState::kS:
            wasSharer = true;
            if (wantsExclusive) {
                noteTransition(CohState::kS, CohEvent::kSnpGetX,
                               CohState::kI, base);
                onInvalidate(base);
                array_.invalidate(*line);
            }
            break;
        case CohState::kSM_D:
            // Our upgrade lost the race: the competing GetX invalidates our
            // S copy and our transaction degrades to a full miss.
            wasSharer = true;
            if (wantsExclusive) {
                noteTransition(CohState::kSM_D, CohEvent::kSnpGetX,
                               CohState::kIM_D, base);
                onInvalidate(base);
                line->meta.state = CohState::kIM_D;
            }
            break;
        case CohState::kIS_D:
        case CohState::kIM_D:
            // Our own request is ordered after this transaction; we hold
            // nothing yet.
            break;
        default:
            assert(false && "stable I lines are not kept in the array");
        }
    }

    Message resp;
    resp.type = MsgType::kSnpResp;
    resp.addr = base;
    resp.src = params_.self;
    resp.dst = homeFor(base);
    resp.requester = msg.requester;
    resp.suppliedData = suppliedData;
    resp.wasSharer = wasSharer;
    resp.txn = msg.txn;
    resp.prof = msg.prof;
    params_.responseNet->send(std::move(resp));
}

void CacheAgent::handleResponse(const Message& msg)
{
    assert(msg.type == MsgType::kData);
    handleData(msg);
}

void CacheAgent::handleData(const Message& msg)
{
    Line* line = array_.find(msg.addr);
    // A correct protocol delivers exactly one data response per
    // transaction. An injected bug can break that — e.g. skipped snoop
    // invalidations leave two stale "owners" in a multi-GPU system and a
    // broadcast snoop makes both supply — so a second kData can land after
    // the fill already released the MSHR. Drop strays instead of tripping
    // over the missing bookkeeping: the oracle reports the underlying
    // single-writer violation.
    if (line == nullptr || mshr_.find(msg.addr) == nullptr) {
        DSCOH_LOG("coherence", name() << " stray data response for 0x"
                                      << std::hex << msg.addr << std::dec
                                      << " dropped");
        return;
    }
    const CohState prev = line->meta.state;
    if (prev != CohState::kIS_D && prev != CohState::kIM_D &&
        prev != CohState::kSM_D) {
        DSCOH_LOG("coherence", name() << " data response in state "
                                      << to_string(prev) << " for 0x"
                                      << std::hex << msg.addr << std::dec
                                      << " dropped");
        return;
    }

    // An upgrade (SM_D) kept its copy — possibly the only up-to-date one
    // when it started from M/MM/O, in which case the response carries a
    // stale memory image. Only a true miss (IS_D/IM_D) takes the data; a
    // raced-out upgrade was already degraded to IM_D by the snoop.
    if (prev != CohState::kSM_D)
        line->data = msg.data;
    CohState next;
    if (prev == CohState::kIS_D)
        next = msg.exclusive ? CohState::kM : CohState::kS;
    else
        next = CohState::kMM;
    // State is committed before noteTransition so the checker's line scan
    // sees the post-transition world.
    line->meta.state = next;
    line->meta.dsFilled = false;
    noteTransition(prev, CohEvent::kFill, next, msg.addr);
    DSCOH_LOG("coherence", name() << " fill 0x" << std::hex << msg.addr
                                  << std::dec << ' ' << to_string(prev)
                                  << " -> " << to_string(next));
    fills_.inc();
    noteFilled(msg.addr);
    onFill(*line);
    if (TxnProfiler* p = profiling()) {
        p->hop(msg.prof, TxnStage::kDataArrive, name(), curTick());
        p->end(msg.prof, curTick());
    }

    sendToHome(MsgType::kUnblock, msg.addr,
               /*ownerFlag=*/next == CohState::kMM);

    if (TraceSession* t = tracing(TraceCat::kMshr)) {
        if (const auto* entry = mshr_.find(msg.addr))
            t->span(TraceCat::kMshr, name(), "mshr", entry->allocatedAt,
                    curTick(), msg.addr);
    }

    // Serve the merged requests. Targets the fill does not satisfy (a store
    // merged into a GetS) restart as fresh accesses (upgrade).
    if (CoherenceChecker* c = checking())
        c->onMshrRelease(name(), msg.addr, curTick());
    auto targets = mshr_.release(msg.addr);
    for (auto& target : targets) {
        if (satisfies(line->meta.state, target.exclusive)) {
            target.done(*line);
        } else {
            access(msg.addr, target.exclusive, std::move(target.done));
            // The restart may have changed `line`'s state (SM_D) but not its
            // storage location; later targets re-check via satisfies().
        }
    }

    replayBlocked();
}

void CacheAgent::replayBlocked()
{
    std::deque<std::function<void()>> pending;
    pending.swap(blocked_);
    for (auto& thunk : pending)
        thunk();
}

void CacheAgent::forEachLine(const std::function<void(const Line&)>& fn) const
{
    const_cast<CacheArray<CohMeta>&>(array_).forEachValid(
        [&fn](Line& l) { fn(l); });
}

CohState CacheAgent::stateOf(Addr addr) const
{
    if (const auto it = wbb_.find(lineAlign(addr)); it != wbb_.end())
        return it->second.state;
    const Line* line = array_.find(addr);
    return line == nullptr ? CohState::kI : line->meta.state;
}

const DataBlock* CacheAgent::peekLine(Addr addr) const
{
    if (const Line* line = array_.find(addr))
        return &line->data;
    if (const auto it = wbb_.find(lineAlign(addr)); it != wbb_.end())
        return &it->second.data;
    return nullptr;
}

void CacheAgent::forEachWriteback(
    const std::function<void(Addr, CohState, const DataBlock&)>& fn) const
{
    for (const auto& [base, entry] : wbb_)
        fn(base, entry.state, entry.data);
}

void CacheAgent::regStats(StatRegistry& registry)
{
    registry.registerCounter(statName("gets_issued"), &getsIssued_);
    registry.registerCounter(statName("getx_issued"), &getxIssued_);
    registry.registerCounter(statName("upgrades"), &upgrades_);
    registry.registerCounter(statName("fills"), &fills_);
    registry.registerCounter(statName("writebacks"), &writebacks_);
    registry.registerCounter(statName("snoops"), &snoops_);
    registry.registerCounter(statName("data_supplied"), &dataSupplied_);
    registry.registerCounter(statName("deferrals"), &deferrals_);
}

void CacheAgent::snapSave(snap::SnapWriter& w) const
{
    requireQuiesced(mshr_.size() == 0,
                    name() + " has in-flight MSHR transactions");
    requireQuiesced(wbb_.empty(), name() + " has parked writebacks");
    requireQuiesced(blocked_.empty(), name() + " has deferred requests");
    array_.snapSave(w, [](snap::SnapWriter& sw, const CohMeta& meta) {
        sw.u8(static_cast<std::uint8_t>(meta.state));
        sw.u8(meta.dsFilled ? 1 : 0);
    });
    w.u64(nextTxn_);
    w.u64(supplyPortFreeAt_);
    std::vector<Addr> filled(everFilled_.begin(), everFilled_.end());
    std::sort(filled.begin(), filled.end());
    w.u64(filled.size());
    for (const Addr line : filled)
        w.u64(line);
}

void CacheAgent::snapRestore(snap::SnapReader& r)
{
    array_.snapRestore(r, [](snap::SnapReader& sr, CohMeta& meta) {
        meta.state = static_cast<CohState>(sr.u8());
        meta.dsFilled = sr.u8() != 0;
    });
    nextTxn_ = r.u64();
    supplyPortFreeAt_ = r.u64();
    everFilled_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i)
        everFilled_.insert(r.u64());
}

} // namespace dscoh
