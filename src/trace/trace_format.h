// Text-trace frontend: define a CPU-produce / GPU-consume workload in a
// small line-oriented DSL instead of C++, and run it through the same
// Workload/Runner machinery as the built-in Table II models.
//
// Format (see examples/traces/*.trace and the tests):
//
//   # comment
//   name my_workload
//   shared-memory yes                 # Table II "Shared" flag (optional)
//
//   array A  200000            shared produced   # same bytes for both sizes
//   array B  200000 800000     shared produced   # small / big bytes
//   array C  200000            shared             # GPU-written output
//   array P  4096              private            # CPU-private
//
//   cpu:
//     produce A                       # store producedValue over the array
//     store  A 16 4 123               # array offset size value
//     loadc  A 16 4 123               # checked load
//     compute 500
//     fence
//   end
//
//   kernel vadd blocks 196 tpb 256
//     ldc A ($gid * 4) 4              # checked load of produced data
//     ld  B ($gid * 4) 4
//     compute 2
//     st  C ($gid * 4) 4 ($gid + 1)   # store value expression
//     when ($tid % 2 == 0) smem_ld    # predicated ops
//   end
//
// Expressions may use $gid, $bid, $tid, $nthreads, $ntpb, $nblocks, integer
// literals, + - * / % << >> ( ), and comparisons inside `when (...)`.
// Kernels execute their statement list once per thread; `when` predicates
// are evaluated per thread (off lanes emit nops, preserving SIMT lockstep).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "workloads/workload.h"

namespace dscoh::trace {

/// Syntax or semantic error in a trace file; message carries the line.
class TraceError : public std::runtime_error {
public:
    TraceError(std::size_t line, const std::string& what)
        : std::runtime_error("trace:" + std::to_string(line) + ": " + what),
          line_(line)
    {
    }
    std::size_t line() const { return line_; }

private:
    std::size_t line_;
};

/// Parses @p text into a Workload usable with runWorkload/compareModes.
/// Throws TraceError on malformed input.
std::unique_ptr<Workload> parseTrace(const std::string& text);

/// Convenience: parse a trace from a file on disk.
std::unique_ptr<Workload> loadTraceFile(const std::string& path);

} // namespace dscoh::trace
