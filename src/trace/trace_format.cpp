#include "trace/trace_format.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "translate/lexer.h"

namespace dscoh::trace {

namespace {

// ---------------------------------------------------------------------------
// Expression evaluation with variables ($gid, $tid, ...).
// ---------------------------------------------------------------------------

using Env = std::map<std::string, std::int64_t>;

class Expr {
public:
    Expr(const std::string& text, std::size_t line)
        : text_(text), line_(line), lexed_(xlate::lex(text))
    {
    }

    std::int64_t eval(const Env& env) const
    {
        Cursor cur{0};
        const std::int64_t v = parseCompare(cur, env);
        if (lexed_.tokens[cur.pos].kind != xlate::TokKind::kEof)
            throw TraceError(line_, "trailing tokens in expression: " + text_);
        return v;
    }

    const std::string& text() const { return text_; }

private:
    struct Cursor {
        std::size_t pos;
    };

    const xlate::Token& tok(const Cursor& c) const
    {
        return lexed_.tokens[c.pos];
    }
    bool isPunct(const Cursor& c, const char* p) const
    {
        return tok(c).kind == xlate::TokKind::kPunct && tok(c).text == p;
    }
    /// Two adjacent same-character puncts (<<, >>, ==, !=, <=, >=).
    bool isPair(const Cursor& c, char a, char b) const
    {
        const auto& t0 = lexed_.tokens[c.pos];
        const auto& t1 = lexed_.tokens[c.pos + 1];
        return t0.kind == xlate::TokKind::kPunct && t0.text[0] == a &&
               t1.kind == xlate::TokKind::kPunct && t1.text[0] == b &&
               t1.offset == t0.offset + 1;
    }

    std::int64_t parseCompare(Cursor& c, const Env& env) const
    {
        std::int64_t lhs = parseShift(c, env);
        for (;;) {
            if (isPair(c, '=', '=')) {
                c.pos += 2;
                lhs = lhs == parseShift(c, env) ? 1 : 0;
            } else if (isPair(c, '!', '=')) {
                c.pos += 2;
                lhs = lhs != parseShift(c, env) ? 1 : 0;
            } else if (isPair(c, '<', '=')) {
                c.pos += 2;
                lhs = lhs <= parseShift(c, env) ? 1 : 0;
            } else if (isPair(c, '>', '=')) {
                c.pos += 2;
                lhs = lhs >= parseShift(c, env) ? 1 : 0;
            } else if (isPunct(c, "<") && !isPair(c, '<', '<')) {
                ++c.pos;
                lhs = lhs < parseShift(c, env) ? 1 : 0;
            } else if (isPunct(c, ">") && !isPair(c, '>', '>')) {
                ++c.pos;
                lhs = lhs > parseShift(c, env) ? 1 : 0;
            } else {
                return lhs;
            }
        }
    }

    std::int64_t parseShift(Cursor& c, const Env& env) const
    {
        std::int64_t lhs = parseAdd(c, env);
        for (;;) {
            if (isPair(c, '<', '<')) {
                c.pos += 2;
                lhs <<= parseAdd(c, env);
            } else if (isPair(c, '>', '>')) {
                c.pos += 2;
                lhs >>= parseAdd(c, env);
            } else {
                return lhs;
            }
        }
    }

    std::int64_t parseAdd(Cursor& c, const Env& env) const
    {
        std::int64_t lhs = parseMul(c, env);
        for (;;) {
            if (isPunct(c, "+")) {
                ++c.pos;
                lhs += parseMul(c, env);
            } else if (isPunct(c, "-")) {
                ++c.pos;
                lhs -= parseMul(c, env);
            } else {
                return lhs;
            }
        }
    }

    std::int64_t parseMul(Cursor& c, const Env& env) const
    {
        std::int64_t lhs = parseUnary(c, env);
        for (;;) {
            char op = 0;
            if (isPunct(c, "*"))
                op = '*';
            else if (isPunct(c, "/"))
                op = '/';
            else if (isPunct(c, "%"))
                op = '%';
            else
                return lhs;
            ++c.pos;
            const std::int64_t rhs = parseUnary(c, env);
            if ((op == '/' || op == '%') && rhs == 0)
                throw TraceError(line_, "division by zero in: " + text_);
            lhs = op == '*' ? lhs * rhs : (op == '/' ? lhs / rhs : lhs % rhs);
        }
    }

    std::int64_t parseUnary(Cursor& c, const Env& env) const
    {
        if (isPunct(c, "-")) {
            ++c.pos;
            return -parseUnary(c, env);
        }
        return parsePrimary(c, env);
    }

    std::int64_t parsePrimary(Cursor& c, const Env& env) const
    {
        if (isPunct(c, "(")) {
            ++c.pos;
            const std::int64_t v = parseCompare(c, env);
            if (!isPunct(c, ")"))
                throw TraceError(line_, "missing ')' in: " + text_);
            ++c.pos;
            return v;
        }
        if (isPunct(c, "$")) {
            ++c.pos;
            if (tok(c).kind != xlate::TokKind::kIdent)
                throw TraceError(line_, "expected variable after '$'");
            const std::string name = tok(c).text;
            ++c.pos;
            const auto it = env.find(name);
            if (it == env.end())
                throw TraceError(line_, "unknown variable $" + name);
            return it->second;
        }
        if (tok(c).kind == xlate::TokKind::kNumber) {
            const std::string& body = tok(c).text;
            ++c.pos;
            try {
                if (body.size() > 2 && body[0] == '0' &&
                    (body[1] == 'x' || body[1] == 'X'))
                    return static_cast<std::int64_t>(
                        std::stoull(body.substr(2), nullptr, 16));
                return static_cast<std::int64_t>(std::stoull(body));
            } catch (const std::exception&) {
                throw TraceError(line_, "bad number: " + body);
            }
        }
        throw TraceError(line_, "unexpected token in expression: " + text_);
    }

    std::string text_;
    std::size_t line_;
    xlate::LexResult lexed_;
};

// ---------------------------------------------------------------------------
// Trace IR
// ---------------------------------------------------------------------------

struct TraceArray {
    std::string name;
    std::uint64_t smallBytes = 0;
    std::uint64_t bigBytes = 0;
    bool shared = false;
    bool produced = false;
};

struct CpuStmt {
    enum class Kind { kProduce, kStore, kLoad, kLoadc, kCompute, kFence };
    Kind kind = Kind::kFence;
    std::string array;
    std::uint64_t offset = 0;
    std::uint32_t size = 4;
    std::uint64_t value = 0;
    Tick cycles = 0;
};

struct KernelStmt {
    enum class Kind { kLd, kLdc, kSt, kCompute, kSmemLd, kSmemSt };
    Kind kind = Kind::kLd;
    std::string array;
    std::shared_ptr<Expr> addr;  ///< byte offset into the array
    std::uint32_t size = 4;
    std::shared_ptr<Expr> value; ///< store value / compute cycles
    std::shared_ptr<Expr> when;  ///< optional predicate
};

struct TraceKernel {
    std::string name;
    std::uint32_t blocks = 1;
    std::uint32_t tpb = 32;
    std::vector<KernelStmt> stmts;
};

struct TraceIr {
    std::string name = "trace";
    bool sharedMemory = false;
    std::vector<TraceArray> arrays;
    std::vector<CpuStmt> cpu;
    std::vector<TraceKernel> kernels;
};

// ---------------------------------------------------------------------------
// The Workload adapter
// ---------------------------------------------------------------------------

class TraceWorkload final : public Workload {
public:
    explicit TraceWorkload(TraceIr ir) : ir_(std::move(ir)) {}

    WorkloadInfo info() const override
    {
        WorkloadInfo info;
        info.code = ir_.name;
        info.fullName = "trace-defined workload";
        info.smallInput = "trace";
        info.bigInput = "trace";
        info.suite = "trace";
        info.usesSharedMemory = ir_.sharedMemory;
        info.scalingNote = "user-defined trace";
        return info;
    }

    std::vector<ArraySpec> arrays(InputSize size) const override
    {
        std::vector<ArraySpec> out;
        for (const TraceArray& a : ir_.arrays) {
            ArraySpec spec;
            spec.name = a.name;
            spec.bytes = size == InputSize::kSmall ? a.smallBytes : a.bigBytes;
            spec.gpuShared = a.shared;
            spec.cpuProduced = a.produced;
            out.push_back(std::move(spec));
        }
        return out;
    }

    CpuProgram cpuProduce(InputSize size, const ArrayMap& mem) const override
    {
        CpuProgram prog;
        for (const CpuStmt& stmt : ir_.cpu) {
            switch (stmt.kind) {
            case CpuStmt::Kind::kProduce: {
                const Addr base = mem.at(stmt.array);
                const std::uint64_t bytes = arrayBytes(stmt.array, size);
                for (std::uint64_t off = 0; off < bytes; off += 4)
                    prog.push_back(
                        cpuStore(base + off, producedValue(base + off), 4));
                break;
            }
            case CpuStmt::Kind::kStore:
                prog.push_back(cpuStore(mem.at(stmt.array) + stmt.offset,
                                        stmt.value, stmt.size));
                break;
            case CpuStmt::Kind::kLoad:
                prog.push_back(
                    cpuLoad(mem.at(stmt.array) + stmt.offset, stmt.size));
                break;
            case CpuStmt::Kind::kLoadc:
                prog.push_back(cpuLoadCheck(mem.at(stmt.array) + stmt.offset,
                                            stmt.value, stmt.size));
                break;
            case CpuStmt::Kind::kCompute:
                prog.push_back(cpuCompute(stmt.cycles));
                break;
            case CpuStmt::Kind::kFence:
                prog.push_back(cpuFence());
                break;
            }
        }
        return prog;
    }

    std::vector<KernelDesc> kernels(InputSize size, const ArrayMap& mem) const override
    {
        std::vector<KernelDesc> out;
        for (const TraceKernel& tk : ir_.kernels) {
            KernelDesc k;
            k.name = tk.name;
            k.blocks = tk.blocks;
            k.threadsPerBlock = tk.tpb;
            k.usesSharedMemory = ir_.sharedMemory;
            // Copies keep the lambda self-contained past this call.
            auto stmts = tk.stmts;
            auto bounds = boundsFor(size);
            const std::uint32_t tpb = tk.tpb;
            const std::uint32_t blocks = tk.blocks;
            ArrayMap memCopy = mem;
            k.body = [stmts, bounds, memCopy, tpb, blocks](
                         ThreadBuilder& t, std::uint32_t b, std::uint32_t tid) {
                Env env{{"gid", static_cast<std::int64_t>(b) * tpb + tid},
                        {"bid", b},
                        {"tid", tid},
                        {"ntpb", tpb},
                        {"nblocks", blocks},
                        {"nthreads", static_cast<std::int64_t>(blocks) * tpb}};
                for (const KernelStmt& s : stmts) {
                    if (s.when && s.when->eval(env) == 0) {
                        t.nop(); // keep SIMT lockstep across the warp
                        continue;
                    }
                    switch (s.kind) {
                    case KernelStmt::Kind::kLd:
                    case KernelStmt::Kind::kLdc: {
                        const Addr va = resolve(s, env, memCopy, bounds);
                        if (s.kind == KernelStmt::Kind::kLdc)
                            t.ldCheck(va, producedValue(va), s.size);
                        else
                            t.ld(va, s.size);
                        break;
                    }
                    case KernelStmt::Kind::kSt: {
                        const Addr va = resolve(s, env, memCopy, bounds);
                        const std::uint64_t value =
                            static_cast<std::uint64_t>(s.value->eval(env));
                        t.st(va, value, s.size);
                        break;
                    }
                    case KernelStmt::Kind::kCompute:
                        t.compute(static_cast<std::uint32_t>(
                            std::max<std::int64_t>(1, s.value->eval(env))));
                        break;
                    case KernelStmt::Kind::kSmemLd:
                        t.smemLd();
                        break;
                    case KernelStmt::Kind::kSmemSt:
                        t.smemSt();
                        break;
                    }
                }
            };
            out.push_back(std::move(k));
        }
        return out;
    }

private:
    using Bounds = std::map<std::string, std::uint64_t>;

    std::uint64_t arrayBytes(const std::string& name, InputSize size) const
    {
        for (const TraceArray& a : ir_.arrays)
            if (a.name == name)
                return size == InputSize::kSmall ? a.smallBytes : a.bigBytes;
        throw std::out_of_range("trace: unknown array " + name);
    }

    Bounds boundsFor(InputSize size) const
    {
        Bounds bounds;
        for (const TraceArray& a : ir_.arrays)
            bounds[a.name] =
                size == InputSize::kSmall ? a.smallBytes : a.bigBytes;
        return bounds;
    }

    static Addr resolve(const KernelStmt& s, const Env& env,
                        const ArrayMap& mem, const Bounds& bounds)
    {
        const std::int64_t off = s.addr->eval(env);
        const std::uint64_t limit = bounds.at(s.array);
        if (off < 0 || static_cast<std::uint64_t>(off) + s.size > limit)
            throw std::out_of_range(
                "trace: access to '" + s.array + "' at offset " +
                std::to_string(off) + " exceeds " + std::to_string(limit) +
                " bytes (expression: " + s.addr->text() + ")");
        return mem.at(s.array) + static_cast<std::uint64_t>(off);
    }

    TraceIr ir_;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Splits a statement line into fields: bare words and '('...')' groups.
std::vector<std::string> fields(const std::string& line, std::size_t lineNo)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < line.size()) {
        if (std::isspace(static_cast<unsigned char>(line[i]))) {
            ++i;
            continue;
        }
        if (line[i] == '#')
            break;
        if (line[i] == '(') {
            int depth = 0;
            const std::size_t start = i;
            for (; i < line.size(); ++i) {
                if (line[i] == '(')
                    ++depth;
                else if (line[i] == ')' && --depth == 0) {
                    ++i;
                    break;
                }
            }
            if (depth != 0)
                throw TraceError(lineNo, "unbalanced parentheses");
            out.push_back(line.substr(start, i - start));
            continue;
        }
        const std::size_t start = i;
        while (i < line.size() &&
               !std::isspace(static_cast<unsigned char>(line[i])) &&
               line[i] != '(' && line[i] != '#')
            ++i;
        out.push_back(line.substr(start, i - start));
    }
    return out;
}

std::uint64_t parseUint(const std::string& word, std::size_t lineNo)
{
    try {
        std::size_t used = 0;
        const std::uint64_t v = std::stoull(word, &used, 0);
        if (used != word.size())
            throw std::invalid_argument(word);
        return v;
    } catch (const std::exception&) {
        throw TraceError(lineNo, "expected a number, got '" + word + "'");
    }
}

KernelStmt parseKernelStmt(std::vector<std::string> f, std::size_t lineNo)
{
    KernelStmt stmt;
    std::size_t at = 0;
    if (f.at(at) == "when") {
        if (f.size() < 3)
            throw TraceError(lineNo, "'when' needs a predicate and an op");
        stmt.when = std::make_shared<Expr>(f[1], lineNo);
        at = 2;
    }
    const std::string op = f.at(at);
    const auto need = [&](std::size_t n, const char* usage) {
        if (f.size() - at != n)
            throw TraceError(lineNo, std::string("usage: ") + usage);
    };
    if (op == "ld" || op == "ldc") {
        need(4, "ld|ldc <array> (<offset expr>) <size>");
        stmt.kind = op == "ld" ? KernelStmt::Kind::kLd : KernelStmt::Kind::kLdc;
        stmt.array = f[at + 1];
        stmt.addr = std::make_shared<Expr>(f[at + 2], lineNo);
        stmt.size = static_cast<std::uint32_t>(parseUint(f[at + 3], lineNo));
    } else if (op == "st") {
        need(5, "st <array> (<offset expr>) <size> (<value expr>)");
        stmt.kind = KernelStmt::Kind::kSt;
        stmt.array = f[at + 1];
        stmt.addr = std::make_shared<Expr>(f[at + 2], lineNo);
        stmt.size = static_cast<std::uint32_t>(parseUint(f[at + 3], lineNo));
        stmt.value = std::make_shared<Expr>(f[at + 4], lineNo);
    } else if (op == "compute") {
        need(2, "compute <cycles expr>");
        stmt.kind = KernelStmt::Kind::kCompute;
        stmt.value = std::make_shared<Expr>(f[at + 1], lineNo);
    } else if (op == "smem_ld") {
        need(1, "smem_ld");
        stmt.kind = KernelStmt::Kind::kSmemLd;
    } else if (op == "smem_st") {
        need(1, "smem_st");
        stmt.kind = KernelStmt::Kind::kSmemSt;
    } else {
        throw TraceError(lineNo, "unknown kernel op '" + op + "'");
    }
    if (stmt.size != 1 && stmt.size != 2 && stmt.size != 4 && stmt.size != 8)
        throw TraceError(lineNo, "access size must be 1, 2, 4 or 8");
    return stmt;
}

CpuStmt parseCpuStmt(const std::vector<std::string>& f, std::size_t lineNo)
{
    CpuStmt stmt;
    const std::string& op = f.at(0);
    const auto need = [&](std::size_t n, const char* usage) {
        if (f.size() != n)
            throw TraceError(lineNo, std::string("usage: ") + usage);
    };
    if (op == "produce") {
        need(2, "produce <array>");
        stmt.kind = CpuStmt::Kind::kProduce;
        stmt.array = f[1];
    } else if (op == "store" || op == "load" || op == "loadc") {
        if (op == "store") {
            need(5, "store <array> <offset> <size> <value>");
            stmt.kind = CpuStmt::Kind::kStore;
            stmt.value = parseUint(f[4], lineNo);
        } else if (op == "loadc") {
            need(5, "loadc <array> <offset> <size> <expected>");
            stmt.kind = CpuStmt::Kind::kLoadc;
            stmt.value = parseUint(f[4], lineNo);
        } else {
            need(4, "load <array> <offset> <size>");
            stmt.kind = CpuStmt::Kind::kLoad;
        }
        stmt.array = f[1];
        stmt.offset = parseUint(f[2], lineNo);
        stmt.size = static_cast<std::uint32_t>(parseUint(f[3], lineNo));
    } else if (op == "compute") {
        need(2, "compute <cycles>");
        stmt.kind = CpuStmt::Kind::kCompute;
        stmt.cycles = parseUint(f[1], lineNo);
    } else if (op == "fence") {
        need(1, "fence");
        stmt.kind = CpuStmt::Kind::kFence;
    } else {
        throw TraceError(lineNo, "unknown cpu op '" + op + "'");
    }
    return stmt;
}

} // namespace

std::unique_ptr<Workload> parseTrace(const std::string& text)
{
    TraceIr ir;
    enum class Section { kTop, kCpu, kKernel };
    Section section = Section::kTop;
    TraceKernel kernel;

    std::istringstream in(text);
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const auto f = fields(line, lineNo);
        if (f.empty())
            continue;

        if (section == Section::kCpu) {
            if (f[0] == "end") {
                section = Section::kTop;
                continue;
            }
            ir.cpu.push_back(parseCpuStmt(f, lineNo));
            continue;
        }
        if (section == Section::kKernel) {
            if (f[0] == "end") {
                ir.kernels.push_back(std::move(kernel));
                kernel = TraceKernel{};
                section = Section::kTop;
                continue;
            }
            kernel.stmts.push_back(parseKernelStmt(f, lineNo));
            continue;
        }

        // Top level.
        if (f[0] == "name") {
            if (f.size() != 2)
                throw TraceError(lineNo, "usage: name <identifier>");
            ir.name = f[1];
        } else if (f[0] == "shared-memory") {
            if (f.size() != 2 || (f[1] != "yes" && f[1] != "no"))
                throw TraceError(lineNo, "usage: shared-memory yes|no");
            ir.sharedMemory = f[1] == "yes";
        } else if (f[0] == "array") {
            TraceArray a;
            if (f.size() < 3)
                throw TraceError(lineNo,
                                 "usage: array <name> <small bytes> [big "
                                 "bytes] [shared] [private] [produced]");
            a.name = f[1];
            a.smallBytes = parseUint(f[2], lineNo);
            std::size_t at = 3;
            if (f.size() > at && std::isdigit(static_cast<unsigned char>(
                                     f[at][0]))) {
                a.bigBytes = parseUint(f[at], lineNo);
                ++at;
            } else {
                a.bigBytes = a.smallBytes;
            }
            for (; at < f.size(); ++at) {
                if (f[at] == "shared")
                    a.shared = true;
                else if (f[at] == "private")
                    a.shared = false;
                else if (f[at] == "produced")
                    a.produced = true;
                else
                    throw TraceError(lineNo, "unknown array flag '" + f[at] +
                                                 "'");
            }
            for (const TraceArray& existing : ir.arrays)
                if (existing.name == a.name)
                    throw TraceError(lineNo, "duplicate array '" + a.name + "'");
            ir.arrays.push_back(std::move(a));
        } else if (f[0] == "cpu:") {
            section = Section::kCpu;
        } else if (f[0] == "kernel") {
            // kernel <name> blocks <n> tpb <n>
            if (f.size() != 6 || f[2] != "blocks" || f[4] != "tpb")
                throw TraceError(lineNo,
                                 "usage: kernel <name> blocks <n> tpb <n>");
            kernel = TraceKernel{};
            kernel.name = f[1];
            kernel.blocks =
                static_cast<std::uint32_t>(parseUint(f[3], lineNo));
            kernel.tpb = static_cast<std::uint32_t>(parseUint(f[5], lineNo));
            if (kernel.blocks == 0 || kernel.tpb == 0 || kernel.tpb % 32 != 0)
                throw TraceError(lineNo,
                                 "blocks must be > 0 and tpb a multiple of 32");
            section = Section::kKernel;
        } else {
            throw TraceError(lineNo, "unknown directive '" + f[0] + "'");
        }
    }
    if (section != Section::kTop)
        throw TraceError(lineNo, "unterminated section (missing 'end')");
    if (ir.arrays.empty())
        throw TraceError(lineNo, "trace defines no arrays");

    // Semantic checks: every referenced array exists.
    const auto known = [&ir](const std::string& name) {
        return std::any_of(ir.arrays.begin(), ir.arrays.end(),
                           [&name](const TraceArray& a) {
                               return a.name == name;
                           });
    };
    for (const CpuStmt& s : ir.cpu)
        if (!s.array.empty() && !known(s.array))
            throw TraceError(0, "cpu section references unknown array '" +
                                    s.array + "'");
    for (const TraceKernel& k : ir.kernels)
        for (const KernelStmt& s : k.stmts)
            if (!s.array.empty() && !known(s.array))
                throw TraceError(0, "kernel '" + k.name +
                                        "' references unknown array '" +
                                        s.array + "'");

    return std::make_unique<TraceWorkload>(std::move(ir));
}

std::unique_ptr<Workload> loadTraceFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open trace file: " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parseTrace(buffer.str());
}

} // namespace dscoh::trace
