#include "exp/progress.h"

#include <cstdio>
#include <sstream>

#include "snap/serializer.h"

namespace dscoh {

std::string renderProgressJson(const ProgressSnapshot& s)
{
    const double rate = (s.done > 0 && s.elapsedSeconds > 0.0)
                            ? static_cast<double>(s.done) / s.elapsedSeconds
                            : 0.0;
    const std::size_t left = s.total > s.done ? s.total - s.done : 0;
    const double eta =
        rate > 0.0 ? static_cast<double>(left) / rate : 0.0;
    std::string state = s.state;
    if (state.empty())
        state = s.done < s.total ? "running"
                                 : (s.failed != 0 ? "failed" : "done");

    std::ostringstream os;
    os << "{\"schema\": \"dscoh-progress-v2\", \"state\": \"" << state
       << "\"";
    if (!s.id.empty())
        os << ", \"id\": \"" << s.id << "\"";
    if (!s.tenant.empty())
        os << ", \"tenant\": \"" << s.tenant << "\"";
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  ", \"jobsTotal\": %zu, \"jobsDone\": %zu, "
                  "\"jobsFailed\": %zu, \"elapsedSeconds\": %.3f, "
                  "\"jobsPerSecond\": %.3f, \"etaSeconds\": %.1f",
                  s.total, s.done, s.failed, s.elapsedSeconds, rate, eta);
    os << buf;
    // v1 aliases, kept for one release (dropped in v3).
    std::snprintf(buf, sizeof buf,
                  ", \"total\": %zu, \"done\": %zu, \"failed\": %zu}\n",
                  s.total, s.done, s.failed);
    os << buf;
    return os.str();
}

void ProgressPublisher::publish(const ProgressSnapshot& s) const
{
    snap::atomicWriteFile(path_, renderProgressJson(s));
}

} // namespace dscoh
