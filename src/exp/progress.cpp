#include "exp/progress.h"

#include <cstdio>

#include "snap/serializer.h"

namespace dscoh {

std::string renderProgressJson(const ProgressSnapshot& s)
{
    const double rate = (s.done > 0 && s.elapsedSeconds > 0.0)
                            ? static_cast<double>(s.done) / s.elapsedSeconds
                            : 0.0;
    const std::size_t left = s.total > s.done ? s.total - s.done : 0;
    const double eta =
        rate > 0.0 ? static_cast<double>(left) / rate : 0.0;
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"schema\": \"dscoh-progress-v1\", \"total\": %zu, "
                  "\"done\": %zu, \"failed\": %zu, "
                  "\"elapsedSeconds\": %.3f, \"jobsPerSecond\": %.3f, "
                  "\"etaSeconds\": %.1f}\n",
                  s.total, s.done, s.failed, s.elapsedSeconds, rate, eta);
    return buf;
}

void ProgressPublisher::publish(const ProgressSnapshot& s) const
{
    snap::atomicWriteFile(path_, renderProgressJson(s));
}

} // namespace dscoh
