// Live sweep progress publication.
//
// A long sweep is opaque from the outside: the table prints only at the
// end, and stderr interleaves worker messages. ProgressPublisher gives
// dashboards and wrapper scripts a machine-readable view: after every
// completed job it atomically rewrites one small "dscoh-progress-v1" JSON
// file (temp + rename, via snap::atomicWriteFile), so a reader polling the
// path always sees a complete, internally consistent document — never a
// torn write.
//
// The schema is deliberately tiny and derived from three counters plus the
// wall clock: total jobs, done, failed, elapsed seconds, jobs/second and
// the ETA extrapolated from the mean completion rate. Rendering is split
// out as a pure function (renderProgressJson) so tests can pin the format
// without touching the filesystem.
#pragma once

#include <cstddef>
#include <string>

namespace dscoh {

/// One observation of a running batch.
struct ProgressSnapshot {
    std::size_t total = 0;
    std::size_t done = 0;   ///< completed jobs, failed ones included
    std::size_t failed = 0;
    double elapsedSeconds = 0.0;
};

/// The "dscoh-progress-v1" JSON document for @p s (one object, trailing
/// newline). jobsPerSecond/etaSeconds are 0 while no job has finished or
/// no time has passed; etaSeconds is 0 once done == total.
std::string renderProgressJson(const ProgressSnapshot& s);

/// Publishes snapshots to a file. Each publish() atomically replaces the
/// whole file; throws snap::SnapError when the path is unwritable (surface
/// the error once at startup rather than silently dropping updates).
class ProgressPublisher {
public:
    explicit ProgressPublisher(std::string path) : path_(std::move(path)) {}

    const std::string& path() const { return path_; }

    void publish(const ProgressSnapshot& s) const;

private:
    std::string path_;
};

} // namespace dscoh
