// Live progress publication, shared by batch sweeps and the sweep service.
//
// A long sweep is opaque from the outside: the table prints only at the
// end, and stderr interleaves worker messages. ProgressPublisher gives
// dashboards and wrapper scripts a machine-readable view: after every
// completed job it atomically rewrites one small JSON file (temp + rename,
// via snap::atomicWriteFile), so a reader polling the path always sees a
// complete, internally consistent document — never a torn write.
//
// The "dscoh-progress-v2" schema is the one status document for BOTH
// execution modes: `dscoh_sweep --progress-json` publishes it per batch,
// and the service publishes the identical shape per request (status.json
// in the request directory, and embedded in `status` protocol responses).
// One poller/dashboard format covers batch and daemon. v2 renamed the
// counters to jobsTotal/jobsDone/jobsFailed and added state/id/tenant; the
// v1 names (total/done/failed) are kept as aliases for one release and
// will be dropped in v3.
//
// Rendering is split out as a pure function (renderProgressJson) so tests
// can pin the format without touching the filesystem, and so the ETA
// fields are a deterministic function of the counters — no hidden clock.
#pragma once

#include <cstddef>
#include <string>

namespace dscoh {

/// One observation of a running batch or service request.
struct ProgressSnapshot {
    std::size_t total = 0;
    std::size_t done = 0;   ///< completed jobs, failed ones included
    std::size_t failed = 0;
    double elapsedSeconds = 0.0;

    // --- daemon-mode fields (defaulted in batch mode) ---
    /// queued | running | done | failed | cancelled. Empty = derived:
    /// "running" until done == total, then "done" or "failed" (any
    /// failures). The service sets it explicitly for queued/cancelled.
    std::string state;
    std::string id;     ///< service request id; omitted from JSON if empty
    std::string tenant; ///< submitting tenant; omitted from JSON if empty
};

/// The "dscoh-progress-v2" JSON document for @p s (one object, trailing
/// newline). jobsPerSecond/etaSeconds are 0 while no job has finished or
/// no time has passed; etaSeconds is 0 once done == total. Pure function
/// of the snapshot — bit-identical for identical inputs regardless of
/// thread count or wall clock.
std::string renderProgressJson(const ProgressSnapshot& s);

/// Publishes snapshots to a file. Each publish() atomically replaces the
/// whole file; throws snap::SnapError when the path is unwritable (surface
/// the error once at startup rather than silently dropping updates).
class ProgressPublisher {
public:
    explicit ProgressPublisher(std::string path) : path_(std::move(path)) {}

    const std::string& path() const { return path_; }

    void publish(const ProgressSnapshot& s) const;

private:
    std::string path_;
};

} // namespace dscoh
