#include "exp/experiment_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <fstream>
#include <iomanip>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "core/config_io.h"
#include "obs/json_lite.h"
#include "sim/errors.h"
#include "snap/serializer.h"

namespace dscoh {

namespace {

std::string journalKey(const std::string& code, InputSize size,
                       CoherenceMode mode, std::uint64_t configHash)
{
    std::ostringstream os;
    os << code << "|" << to_string(size) << "|" << to_string(mode) << "|"
       << std::hex << configHash;
    return os.str();
}

std::string jobCheckpointPath(const std::string& dir, const ExperimentJob& job,
                              std::uint64_t configHash)
{
    std::ostringstream os;
    os << dir << "/job-" << std::hex << std::setw(16) << std::setfill('0')
       << configHash << "-" << job.code << "-" << to_string(job.size) << "-"
       << to_string(job.mode) << ".snap";
    return os.str();
}

} // namespace

std::vector<std::size_t>
replayJournal(const std::vector<ExperimentJob>& jobs,
              const std::vector<std::uint64_t>& hashes,
              const std::string& path,
              std::vector<ExperimentResult>* results)
{
    // Matching is positional per key — a batch with duplicate (code, size,
    // mode, config) jobs consumes one journal entry per duplicate.
    std::map<std::string, std::deque<JournalEntry>> byKey;
    for (JournalEntry& e : readJournal(path))
        byKey[journalKey(e.result.job.code, e.result.job.size,
                         e.result.job.mode, e.configHash)]
            .push_back(std::move(e));
    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto it = byKey.find(
            journalKey(jobs[i].code, jobs[i].size, jobs[i].mode, hashes[i]));
        if (it == byKey.end() || it->second.empty()) {
            pending.push_back(i);
            continue;
        }
        (*results)[i] = std::move(it->second.front().result);
        it->second.pop_front();
        (*results)[i].job = jobs[i];
        (*results)[i].fromJournal = true;
    }
    return pending;
}

ExperimentResult runExperimentJob(const ExperimentJob& job,
                                  std::uint64_t configHash,
                                  const JobRunOptions& options)
{
    ExperimentResult r;
    r.job = job;

    WorkloadRunOptions runOpts;
    runOpts.cancelFlag = options.cancel;
    if (options.forkProduce) {
        runOpts.produceCacheDir = options.produceCacheDir.empty()
                                      ? options.snapDir
                                      : options.produceCacheDir;
        runOpts.produceCacheMaxBytes = options.produceCacheMaxBytes;
    }
    std::string checkpoint;
    if (options.jobCheckpoint) {
        checkpoint = jobCheckpointPath(options.snapDir, job, configHash);
        runOpts.phaseCheckpointPath = checkpoint;
        if (options.resumeCheckpoint) {
            // A leftover checkpoint from a killed run resumes the job from
            // its last completed phase; anything stale or unusable silently
            // falls back to a fresh run.
            runOpts.restoreFrom = checkpoint;
            runOpts.restoreOptional = true;
        }
    }

    const auto t0 = std::chrono::steady_clock::now();
    try {
        const Workload* w = job.workload;
        if (w == nullptr)
            w = &WorkloadRegistry::instance().get(job.code);
        WorkloadRun wr(*w, job.size, job.mode, job.config,
                       std::move(runOpts));
        r.run = wr.run();
        r.produceTicksSaved = wr.produceTicksSaved();
        r.ok = true;
    } catch (const CancelledError& e) {
        r.error = e.what();
        r.errorClass = kExitFailure;
    } catch (const DeadlockError& e) {
        r.error = e.what();
        r.errorClass = kExitDeadlock;
    } catch (const OracleError& e) {
        r.error = e.what();
        r.errorClass = kExitOracle;
    } catch (const snap::SnapError& e) {
        r.error = e.what();
        r.errorClass = kExitIo;
    } catch (const std::exception& e) {
        r.error = e.what();
        r.errorClass = kExitFailure;
    } catch (...) {
        r.error = "unknown error";
        r.errorClass = kExitFailure;
    }
    const auto t1 = std::chrono::steady_clock::now();
    r.wallSeconds = std::chrono::duration<double>(t1 - t0).count();

    if (!checkpoint.empty())
        std::remove(checkpoint.c_str());
    return r;
}

ExperimentEngine::ExperimentEngine(unsigned threads)
{
    if (threads == 0)
        threads = std::thread::hardware_concurrency();
    threads_ = threads == 0 ? 1 : threads;
}

std::vector<ExperimentResult>
ExperimentEngine::run(const std::vector<ExperimentJob>& jobs) const
{
    return run(jobs, EngineRunOptions{});
}

std::vector<ExperimentResult>
ExperimentEngine::run(const std::vector<ExperimentJob>& jobs,
                      const EngineRunOptions& options) const
{
    std::vector<ExperimentResult> results(jobs.size());
    if (jobs.empty())
        return results;

    // Force the registry's one-time construction before workers race to use
    // it; afterwards it is immutable and safe to read concurrently.
    WorkloadRegistry::instance();

    std::vector<std::uint64_t> hashes(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        hashes[i] = configHashOf(jobs[i].config);

    // Resume: replay journaled jobs instead of re-simulating them.
    std::vector<std::size_t> pending;
    std::size_t replayed = 0;
    if (options.resume && !options.journalPath.empty()) {
        pending = replayJournal(jobs, hashes, options.journalPath, &results);
        replayed = jobs.size() - pending.size();
    } else {
        pending.resize(jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i)
            pending[i] = i;
    }

    std::atomic<std::size_t> next{0};
    std::size_t done = replayed;
    std::mutex progressMutex;
    std::mutex journalMutex;
    std::string journalError; // first append failure (under journalMutex)

    JobRunOptions jobOpts;
    jobOpts.snapDir = options.snapDir;
    jobOpts.forkProduce = options.forkProduce;
    jobOpts.jobCheckpoint = options.jobCheckpoints;
    jobOpts.resumeCheckpoint = options.resume;

    const auto worker = [&] {
        for (;;) {
            const std::size_t slot = next.fetch_add(1);
            if (slot >= pending.size())
                return;
            const std::size_t i = pending[slot];
            ExperimentResult& r = results[i];
            r = runExperimentJob(jobs[i], hashes[i], jobOpts);
            if (!options.journalPath.empty()) {
                const std::lock_guard<std::mutex> lock(journalMutex);
                // Durable append (fsync'ed, torn-safe): a kill right after
                // this returns can only replay, never corrupt. A failing
                // journal no longer silently forgets completed work — the
                // batch finishes, then run() throws with the first error
                // (workers must not throw across the pool).
                try {
                    snap::durableAppendLine(options.journalPath,
                                            journalLine(r, hashes[i]));
                } catch (const snap::SnapError& e) {
                    if (journalError.empty())
                        journalError = e.what();
                }
            }
            if (progress_) {
                const std::lock_guard<std::mutex> lock(progressMutex);
                progress_(r, ++done, jobs.size());
            }
        }
    };

    const std::size_t want = std::min<std::size_t>(threads_, pending.size());
    if (want <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(want);
        for (std::size_t t = 0; t < want; ++t)
            pool.emplace_back(worker);
        for (std::thread& t : pool)
            t.join();
    }
    if (!journalError.empty())
        throw snap::SnapError("journal append failed: " + journalError);
    return results;
}

ResidentEngine::ResidentEngine(unsigned threads, Source source)
{
    if (threads == 0)
        threads = std::thread::hardware_concurrency();
    if (threads == 0)
        threads = 1;
    // Force the registry's one-time construction before workers race to
    // use it (same reason as the batch path).
    WorkloadRegistry::instance();
    workers_.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        workers_.emplace_back([source] {
            while (std::optional<Admitted> a = source()) {
                ExperimentResult r = runExperimentJob(a->job, a->configHash,
                                                      a->options);
                if (a->done)
                    a->done(std::move(r));
            }
        });
}

ResidentEngine::~ResidentEngine()
{
    for (std::thread& w : workers_)
        w.join();
}

void finalizeJournal(const std::string& journalPath, bool hadFailures)
{
    if (journalPath.empty())
        return;
    if (!hadFailures) {
        std::remove(journalPath.c_str());
        return;
    }
    // Keep the failure set replayable: a later --resume against the
    // restored name can retry exactly the jobs that failed. rename(2)
    // replaces an older .failed journal atomically; syncing the directory
    // makes the disposal itself crash-durable.
    const std::string kept = journalPath + ".failed";
    std::rename(journalPath.c_str(), kept.c_str());
    try {
        snap::fsyncDir(snap::dirOf(journalPath));
    } catch (const snap::SnapError&) {
        // Disposal durability is best-effort: a re-found journal on the
        // next start only causes a harmless replay.
    }
}

std::vector<ExperimentJob>
makeSweepJobs(const std::vector<std::string>& codes,
              const std::vector<InputSize>& sizes,
              const std::vector<CoherenceMode>& modes,
              const SystemConfig& base)
{
    std::vector<ExperimentJob> jobs;
    jobs.reserve(codes.size() * sizes.size() * modes.size());
    for (const std::string& code : codes)
        for (const InputSize size : sizes)
            for (const CoherenceMode mode : modes) {
                ExperimentJob job;
                job.code = code;
                job.size = size;
                job.mode = mode;
                job.config = base;
                jobs.push_back(std::move(job));
            }
    return jobs;
}

namespace {

std::string jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/// The per-job object shared by writeResultsJson() and journalLine(),
/// WITHOUT the closing brace (the journal appends resume-only fields).
void writeResultCore(std::ostream& os, const ExperimentResult& r)
{
    os << "{\"code\": \"" << jsonEscape(r.job.code) << "\""
       << ", \"size\": \"" << to_string(r.job.size) << "\""
       << ", \"mode\": \"" << to_string(r.job.mode) << "\""
       << ", \"ok\": " << (r.ok ? "true" : "false");
    if (!r.ok) {
        os << ", \"error\": \"" << jsonEscape(r.error) << "\""
           << ", \"errorClass\": " << r.errorClass;
        return;
    }
    const RunMetrics& m = r.run.metrics;
    os << ", \"metrics\": {"
       << "\"ticks\": " << m.ticks
       << ", \"gpuL2Accesses\": " << m.gpuL2Accesses
       << ", \"gpuL2Misses\": " << m.gpuL2Misses
       << ", \"gpuL2Compulsory\": " << m.gpuL2Compulsory
       << ", \"gpuL2MissRate\": " << m.gpuL2MissRate
       << ", \"dsFills\": " << m.dsFills
       << ", \"dsBypasses\": " << m.dsBypasses
       << ", \"coherenceMessages\": " << m.coherenceMessages
       << ", \"coherenceBytes\": " << m.coherenceBytes
       << ", \"dsNetworkMessages\": " << m.dsNetworkMessages
       << ", \"dramReads\": " << m.dramReads
       << ", \"dramWrites\": " << m.dramWrites
       << "}, \"footprintBytes\": " << r.run.footprintBytes
       << ", \"stats\": {";
    bool firstStat = true;
    for (const auto& [name, value] : r.run.statCounters) {
        os << (firstStat ? "" : ", ") << "\"" << jsonEscape(name)
           << "\": " << value;
        firstStat = false;
    }
    os << "}";
}

} // namespace

void writeResultsJson(std::ostream& os,
                      const std::vector<ExperimentResult>& results)
{
    // schemaVersion exists so downstream plot scripts can detect format
    // drift without string-matching the schema name. v2 added the per-job
    // "stats" counter snapshot.
    os << "{\n  \"schema\": \"dscoh-results-v2\",\n  \"schemaVersion\": 2,\n"
          "  \"results\": [";
    bool first = true;
    for (const ExperimentResult& r : results) {
        os << (first ? "\n" : ",\n");
        first = false;
        // No wall-clock time here: the file must be bit-identical across
        // runs and --jobs values. Timing is reported on stderr instead.
        os << "    ";
        writeResultCore(os, r);
        os << "}";
    }
    os << "\n  ]\n}\n";
}

void writeResultsJsonAtomic(const std::string& path,
                            const std::vector<ExperimentResult>& results)
{
    std::ostringstream os;
    writeResultsJson(os, results);
    snap::atomicWriteFile(path, os.str());
}

std::string journalLine(const ExperimentResult& r, std::uint64_t configHash)
{
    std::ostringstream os;
    writeResultCore(os, r);
    os << ", \"configHash\": \"0x" << std::hex << configHash << std::dec
       << "\"";
    if (r.ok) {
        os << ", \"produceDoneAt\": " << r.run.produceDoneAt
           << ", \"kernelDoneAt\": [";
        for (std::size_t i = 0; i < r.run.kernelDoneAt.size(); ++i)
            os << (i == 0 ? "" : ", ") << r.run.kernelDoneAt[i];
        os << "], \"violations\": [";
        for (std::size_t i = 0; i < r.run.violations.size(); ++i)
            os << (i == 0 ? "" : ", ") << "\""
               << jsonEscape(r.run.violations[i]) << "\"";
        os << "]";
    }
    os << "}\n";
    return os.str();
}

std::vector<JournalEntry> readJournal(const std::string& path)
{
    std::vector<JournalEntry> entries;
    std::ifstream in(path);
    if (!in)
        return entries;

    const auto modeOf = [](const std::string& s, CoherenceMode* out) {
        for (const CoherenceMode m :
             {CoherenceMode::kCcsm, CoherenceMode::kDirectStore,
              CoherenceMode::kDirectStoreOnly}) {
            if (s == to_string(m)) {
                *out = m;
                return true;
            }
        }
        return false;
    };

    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::string error;
        const jsonlite::ValuePtr v = jsonlite::parse(line, error);
        // A torn final line (process killed mid-append) parses as garbage;
        // the job it described simply re-runs.
        if (v == nullptr || !v->isObject())
            continue;
        const jsonlite::Value* code = v->get("code");
        const jsonlite::Value* size = v->get("size");
        const jsonlite::Value* mode = v->get("mode");
        const jsonlite::Value* hash = v->get("configHash");
        const jsonlite::Value* ok = v->get("ok");
        if (code == nullptr || !code->isString() || size == nullptr ||
            !size->isString() || mode == nullptr || !mode->isString() ||
            hash == nullptr || !hash->isString() || ok == nullptr)
            continue;

        JournalEntry e;
        ExperimentJob& job = e.result.job;
        job.code = code->string;
        job.size = size->string == "big" ? InputSize::kBig : InputSize::kSmall;
        if (!modeOf(mode->string, &job.mode))
            continue;
        try {
            e.configHash = std::stoull(hash->string, nullptr, 16);
        } catch (const std::exception&) {
            continue;
        }

        e.result.ok = ok->boolean;
        if (!e.result.ok) {
            if (const jsonlite::Value* err = v->get("error"))
                e.result.error = err->string;
            if (const jsonlite::Value* cls = v->get("errorClass");
                cls != nullptr && cls->isNumber())
                e.result.errorClass = static_cast<int>(cls->number);
            entries.push_back(std::move(e));
            continue;
        }

        const jsonlite::Value* metrics = v->get("metrics");
        const jsonlite::Value* stats = v->get("stats");
        if (metrics == nullptr || !metrics->isObject() || stats == nullptr ||
            !stats->isObject())
            continue;
        WorkloadRunResult& run = e.result.run;
        run.code = job.code;
        run.size = job.size;
        run.mode = job.mode;
        RunMetrics& m = run.metrics;
        const auto uintOf = [metrics](const char* key) {
            const jsonlite::Value* f = metrics->get(key);
            return f == nullptr ? std::uint64_t{0} : f->asUint();
        };
        m.ticks = uintOf("ticks");
        m.gpuL2Accesses = uintOf("gpuL2Accesses");
        m.gpuL2Misses = uintOf("gpuL2Misses");
        m.gpuL2Compulsory = uintOf("gpuL2Compulsory");
        m.dsFills = uintOf("dsFills");
        m.dsBypasses = uintOf("dsBypasses");
        m.coherenceMessages = uintOf("coherenceMessages");
        m.coherenceBytes = uintOf("coherenceBytes");
        m.dsNetworkMessages = uintOf("dsNetworkMessages");
        m.dramReads = uintOf("dramReads");
        m.dramWrites = uintOf("dramWrites");
        // Recomputed from the integer counters (not journaled as a float):
        // the division below is bit-identical to System::metrics().
        m.gpuL2MissRate = m.gpuL2Accesses == 0
                              ? 0.0
                              : static_cast<double>(m.gpuL2Misses) /
                                    static_cast<double>(m.gpuL2Accesses);
        if (const jsonlite::Value* fp = v->get("footprintBytes"))
            run.footprintBytes = fp->asUint();
        for (const auto& [name, value] : stats->object)
            run.statCounters.emplace(name, value->asUint());
        if (const jsonlite::Value* p = v->get("produceDoneAt"))
            run.produceDoneAt = p->asUint();
        if (const jsonlite::Value* k = v->get("kernelDoneAt");
            k != nullptr && k->isArray())
            for (const jsonlite::ValuePtr& t : k->array)
                run.kernelDoneAt.push_back(t->asUint());
        if (const jsonlite::Value* viol = v->get("violations");
            viol != nullptr && viol->isArray())
            for (const jsonlite::ValuePtr& s : viol->array)
                run.violations.push_back(s->string);
        entries.push_back(std::move(e));
    }
    return entries;
}

} // namespace dscoh
