#include "exp/experiment_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

namespace dscoh {

ExperimentEngine::ExperimentEngine(unsigned threads)
{
    if (threads == 0)
        threads = std::thread::hardware_concurrency();
    threads_ = threads == 0 ? 1 : threads;
}

std::vector<ExperimentResult>
ExperimentEngine::run(const std::vector<ExperimentJob>& jobs) const
{
    std::vector<ExperimentResult> results(jobs.size());
    if (jobs.empty())
        return results;

    // Force the registry's one-time construction before workers race to use
    // it; afterwards it is immutable and safe to read concurrently.
    WorkloadRegistry::instance();

    std::atomic<std::size_t> next{0};
    std::size_t done = 0;
    std::mutex progressMutex;

    const auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= jobs.size())
                return;
            ExperimentResult& r = results[i];
            r.job = jobs[i];
            const auto t0 = std::chrono::steady_clock::now();
            try {
                const Workload* w = jobs[i].workload;
                if (w == nullptr)
                    w = &WorkloadRegistry::instance().get(jobs[i].code);
                r.run = runWorkload(*w, jobs[i].size, jobs[i].mode,
                                    jobs[i].config);
                r.ok = true;
            } catch (const std::exception& e) {
                r.error = e.what();
            } catch (...) {
                r.error = "unknown error";
            }
            const auto t1 = std::chrono::steady_clock::now();
            r.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
            if (progress_) {
                const std::lock_guard<std::mutex> lock(progressMutex);
                progress_(r, ++done, jobs.size());
            }
        }
    };

    const std::size_t want =
        std::min<std::size_t>(threads_, jobs.size());
    if (want <= 1) {
        worker();
        return results;
    }
    std::vector<std::thread> pool;
    pool.reserve(want);
    for (std::size_t t = 0; t < want; ++t)
        pool.emplace_back(worker);
    for (std::thread& t : pool)
        t.join();
    return results;
}

std::vector<ExperimentJob>
makeSweepJobs(const std::vector<std::string>& codes,
              const std::vector<InputSize>& sizes,
              const std::vector<CoherenceMode>& modes,
              const SystemConfig& base)
{
    std::vector<ExperimentJob> jobs;
    jobs.reserve(codes.size() * sizes.size() * modes.size());
    for (const std::string& code : codes)
        for (const InputSize size : sizes)
            for (const CoherenceMode mode : modes) {
                ExperimentJob job;
                job.code = code;
                job.size = size;
                job.mode = mode;
                job.config = base;
                jobs.push_back(std::move(job));
            }
    return jobs;
}

namespace {

std::string jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

void writeResultsJson(std::ostream& os,
                      const std::vector<ExperimentResult>& results)
{
    // schemaVersion exists so downstream plot scripts can detect format
    // drift without string-matching the schema name. v2 added the per-job
    // "stats" counter snapshot.
    os << "{\n  \"schema\": \"dscoh-results-v2\",\n  \"schemaVersion\": 2,\n"
          "  \"results\": [";
    bool first = true;
    for (const ExperimentResult& r : results) {
        os << (first ? "\n" : ",\n");
        first = false;
        // No wall-clock time here: the file must be bit-identical across
        // runs and --jobs values. Timing is reported on stderr instead.
        os << "    {\"code\": \"" << jsonEscape(r.job.code) << "\""
           << ", \"size\": \"" << to_string(r.job.size) << "\""
           << ", \"mode\": \"" << to_string(r.job.mode) << "\""
           << ", \"ok\": " << (r.ok ? "true" : "false");
        if (!r.ok) {
            os << ", \"error\": \"" << jsonEscape(r.error) << "\"}";
            continue;
        }
        const RunMetrics& m = r.run.metrics;
        os << ", \"metrics\": {"
           << "\"ticks\": " << m.ticks
           << ", \"gpuL2Accesses\": " << m.gpuL2Accesses
           << ", \"gpuL2Misses\": " << m.gpuL2Misses
           << ", \"gpuL2Compulsory\": " << m.gpuL2Compulsory
           << ", \"gpuL2MissRate\": " << m.gpuL2MissRate
           << ", \"dsFills\": " << m.dsFills
           << ", \"dsBypasses\": " << m.dsBypasses
           << ", \"coherenceMessages\": " << m.coherenceMessages
           << ", \"coherenceBytes\": " << m.coherenceBytes
           << ", \"dsNetworkMessages\": " << m.dsNetworkMessages
           << ", \"dramReads\": " << m.dramReads
           << ", \"dramWrites\": " << m.dramWrites
           << "}, \"footprintBytes\": " << r.run.footprintBytes
           << ", \"stats\": {";
        bool firstStat = true;
        for (const auto& [name, value] : r.run.statCounters) {
            os << (firstStat ? "" : ", ") << "\"" << jsonEscape(name)
               << "\": " << value;
            firstStat = false;
        }
        os << "}}";
    }
    os << "\n  ]\n}\n";
}

} // namespace dscoh
