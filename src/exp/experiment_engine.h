// Parallel experiment harness.
//
// The paper's evaluation is 22 benchmarks x 2 input sizes x 2 coherence
// modes; every figure/table is a batch of fully independent simulations.
// Each System owns its whole universe (SimContext: event queue + log sink;
// per-object RNGs; thread-local transition coverage), so independent runs
// can execute concurrently with no synchronisation. The ExperimentEngine
// shards a job list across a thread pool and returns results in submission
// order — output is bit-identical whether it ran on 1 thread or N.
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "workloads/runner.h"
#include "workloads/workload.h"

namespace dscoh {

/// One simulation to run: a (workload, size, mode, config) tuple. The
/// workload is normally named by its Table II code and resolved from the
/// WorkloadRegistry; tests may pass an explicit instance instead (it must
/// outlive the run).
struct ExperimentJob {
    std::string code;
    InputSize size = InputSize::kSmall;
    CoherenceMode mode = CoherenceMode::kCcsm;
    SystemConfig config{};
    const Workload* workload = nullptr; ///< optional override of @ref code
};

struct ExperimentResult {
    ExperimentJob job;
    bool ok = false;
    std::string error; ///< what() of the failure when !ok
    WorkloadRunResult run; ///< valid only when ok
    /// Host time spent on this job. For progress display only — it is
    /// deliberately kept out of writeResultsJson() so that file stays
    /// bit-identical across runs and thread counts.
    double wallSeconds = 0.0;
};

class ExperimentEngine {
public:
    /// @p threads == 0 picks std::thread::hardware_concurrency().
    explicit ExperimentEngine(unsigned threads = 0);

    unsigned threads() const { return threads_; }

    /// Called after each job finishes (serialized; any thread). @p done is
    /// the number of completed jobs so far, @p total the batch size.
    using Progress = std::function<void(const ExperimentResult&,
                                        std::size_t done, std::size_t total)>;
    void onProgress(Progress cb) { progress_ = std::move(cb); }

    /// Runs the batch, sharding across the pool. Results land in submission
    /// order. A throwing job fails only its own slot (ok == false); the
    /// pool and all other jobs are unaffected.
    ///
    /// Transition coverage: TransitionCoverage::instance() is thread_local,
    /// so enable() on the calling thread sees nothing from a multi-threaded
    /// run — the workers record into their own (disabled) instances. To
    /// collect coverage across a sweep, call
    /// TransitionCoverage::enableProcessWide() before run() and read
    /// TransitionCoverage::aggregateSnapshot() after it returns: run()
    /// joins its workers, and each flushes its counts into the process
    /// aggregate at thread exit (the caller's own counts merge into the
    /// snapshot too, covering the threads<=1 run-on-caller path).
    std::vector<ExperimentResult> run(const std::vector<ExperimentJob>& jobs) const;

private:
    unsigned threads_ = 1;
    Progress progress_;
};

/// Cross product in deterministic order: for each code, for each size, for
/// each mode — the order every bench prints its tables in.
std::vector<ExperimentJob>
makeSweepJobs(const std::vector<std::string>& codes,
              const std::vector<InputSize>& sizes,
              const std::vector<CoherenceMode>& modes,
              const SystemConfig& base = SystemConfig{});

/// Machine-readable results (schema "dscoh-results-v2", with an explicit
/// "schemaVersion" field so plots can detect format drift): one object per
/// job, in submission order, with the headline RunMetrics inlined plus the
/// full per-job counter snapshot under "stats".
void writeResultsJson(std::ostream& os,
                      const std::vector<ExperimentResult>& results);

} // namespace dscoh
