// Parallel experiment harness.
//
// The paper's evaluation is 22 benchmarks x 2 input sizes x 2 coherence
// modes; every figure/table is a batch of fully independent simulations.
// Each System owns its whole universe (SimContext: event queue + log sink;
// per-object RNGs; thread-local transition coverage), so independent runs
// can execute concurrently with no synchronisation. The ExperimentEngine
// shards a job list across a thread pool and returns results in submission
// order — output is bit-identical whether it ran on 1 thread or N.
#pragma once

#include <atomic>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "workloads/runner.h"
#include "workloads/workload.h"

namespace dscoh {

/// One simulation to run: a (workload, size, mode, config) tuple. The
/// workload is normally named by its Table II code and resolved from the
/// WorkloadRegistry; tests may pass an explicit instance instead (it must
/// outlive the run).
struct ExperimentJob {
    std::string code;
    InputSize size = InputSize::kSmall;
    CoherenceMode mode = CoherenceMode::kCcsm;
    SystemConfig config{};
    const Workload* workload = nullptr; ///< optional override of @ref code
};

struct ExperimentResult {
    ExperimentJob job;
    bool ok = false;
    std::string error; ///< what() of the failure when !ok
    /// Failure class when !ok, as a sim/errors.h exit code (kExitDeadlock,
    /// kExitOracle, kExitIo, or kExitFailure for anything unclassified).
    /// The sweep tool exits with the first failing job's class.
    int errorClass = 0;
    WorkloadRunResult run; ///< valid only when ok
    /// Host time spent on this job. For progress display only — it is
    /// deliberately kept out of writeResultsJson() so that file stays
    /// bit-identical across runs and thread counts.
    double wallSeconds = 0.0;
    /// Replayed from a --resume journal (not re-simulated). Like
    /// wallSeconds, kept out of writeResultsJson().
    bool fromJournal = false;
    /// Produce-phase ticks skipped via the fork-after-produce snapshot
    /// cache (0 = cache off or miss). Kept out of writeResultsJson().
    Tick produceTicksSaved = 0;
};

/// Checkpoint/resume options for a batch (all off by default).
struct EngineRunOptions {
    /// Append-only JSON-lines journal of completed jobs. Written as each
    /// job finishes; with resume, jobs already journaled (matched on
    /// code/size/mode/config hash) are replayed instead of re-simulated.
    std::string journalPath;
    bool resume = false;
    /// Directory for snapshots (produce cache, rolling job checkpoints).
    /// Must exist; required by the two flags below.
    std::string snapDir;
    /// Fork-after-produce: share the CPU produce phase across runs through
    /// an on-disk snapshot cache keyed by (config hash, workload, size).
    bool forkProduce = false;
    /// Write a rolling per-job checkpoint at every phase boundary; with
    /// resume, a killed job restarts from its last completed phase.
    bool jobCheckpoints = false;
};

/// Snapshot-related options for a SINGLE job — the per-job slice of
/// EngineRunOptions, shared by the batch worker and the resident mode the
/// sweep service runs the engine in.
struct JobRunOptions {
    /// Directory for rolling job checkpoints; required by jobCheckpoint.
    std::string snapDir;
    /// Directory of the produce-phase snapshot cache. Empty falls back to
    /// snapDir (the batch engine's historical behaviour); the service
    /// points it at one store shared across every tenant.
    std::string produceCacheDir;
    /// Share the CPU produce phase through that snapshot cache.
    bool forkProduce = false;
    /// Byte budget for the cache (0 = unbounded); see snap::SnapshotCache.
    std::uint64_t produceCacheMaxBytes = 0;
    /// Keep a rolling per-job checkpoint at every phase boundary.
    bool jobCheckpoint = false;
    /// Restore a leftover checkpoint from a killed run when usable.
    bool resumeCheckpoint = false;
    /// Cooperative cancel flag threaded into the run (see
    /// WorkloadRunOptions::cancelFlag). A cancelled job reports as a
    /// failed result whose error names the cancellation. Null = not
    /// cancellable.
    const std::atomic<bool>* cancel = nullptr;
};

/// Runs one job to completion (or classified failure) with the same
/// semantics as one slot of ExperimentEngine::run(): exceptions land in
/// ExperimentResult::error/errorClass, never escape, and a successful job
/// removes its rolling checkpoint. @p configHash must be
/// configHashOf(job.config) (hoisted out so batch callers hash once).
ExperimentResult runExperimentJob(const ExperimentJob& job,
                                  std::uint64_t configHash,
                                  const JobRunOptions& options);

class ExperimentEngine {
public:
    /// @p threads == 0 picks std::thread::hardware_concurrency().
    explicit ExperimentEngine(unsigned threads = 0);

    unsigned threads() const { return threads_; }

    /// Called after each job finishes (serialized; any thread). @p done is
    /// the number of completed jobs so far, @p total the batch size.
    using Progress = std::function<void(const ExperimentResult&,
                                        std::size_t done, std::size_t total)>;
    void onProgress(Progress cb) { progress_ = std::move(cb); }

    /// Runs the batch, sharding across the pool. Results land in submission
    /// order. A throwing job fails only its own slot (ok == false); the
    /// pool and all other jobs are unaffected.
    ///
    /// Transition coverage: TransitionCoverage::instance() is thread_local,
    /// so enable() on the calling thread sees nothing from a multi-threaded
    /// run — the workers record into their own (disabled) instances. To
    /// collect coverage across a sweep, call
    /// TransitionCoverage::enableProcessWide() before run() and read
    /// TransitionCoverage::aggregateSnapshot() after it returns: run()
    /// joins its workers, and each flushes its counts into the process
    /// aggregate at thread exit (the caller's own counts merge into the
    /// snapshot too, covering the threads<=1 run-on-caller path).
    std::vector<ExperimentResult> run(const std::vector<ExperimentJob>& jobs) const;

    /// run() with journaling / resume / snapshot options. Results are in
    /// submission order and bit-identical to a plain run() regardless of
    /// how many jobs were replayed from the journal or resumed from
    /// checkpoints (restore-determinism is the snap subsystem's keystone
    /// property).
    std::vector<ExperimentResult> run(const std::vector<ExperimentJob>& jobs,
                                      const EngineRunOptions& options) const;

private:
    unsigned threads_ = 1;
    Progress progress_;
};

/// The engine's resident mode: a persistent worker pool that pulls jobs
/// from a caller-supplied blocking source instead of sharding one fixed
/// batch. This is the admission hook the sweep service schedules through —
/// ordering policy (tenants, priorities, fair sharing) lives entirely in
/// the source; the pool only executes. Cancellation of queued work is the
/// source's job too (a cancelled job is simply never handed out); a job
/// already running always completes and reports through its callback.
class ResidentEngine {
public:
    /// One admitted unit of work. @p done runs on the worker thread that
    /// executed the job; it must do its own locking.
    struct Admitted {
        ExperimentJob job;
        std::uint64_t configHash = 0;
        JobRunOptions options;
        std::function<void(ExperimentResult&&)> done;
    };

    /// Blocks until work is available and returns it, or returns nullopt
    /// to retire the calling worker (shutdown). Called concurrently from
    /// every worker; must be thread-safe.
    using Source = std::function<std::optional<Admitted>()>;

    /// Spawns @p threads workers (0 = hardware concurrency) that loop on
    /// @p source until it returns nullopt.
    ResidentEngine(unsigned threads, Source source);
    /// Joins the pool. The source must already be returning nullopt (or do
    /// so promptly) or this blocks forever — stop the source first.
    ~ResidentEngine();

    ResidentEngine(const ResidentEngine&) = delete;
    ResidentEngine& operator=(const ResidentEngine&) = delete;

    unsigned threads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

private:
    std::vector<std::thread> workers_;
};

/// Disposes of a finished batch's crash-recovery journal. A fully
/// successful batch deletes it (the published results.json supersedes it);
/// a batch with failed jobs keeps it renamed "<path>.failed" so the
/// failure set stays replayable instead of vanishing with the publication.
void finalizeJournal(const std::string& journalPath, bool hadFailures);

/// One parsed line of a completed-job journal.
struct JournalEntry {
    std::uint64_t configHash = 0;
    ExperimentResult result; ///< job.code/size/mode set; config left default
};

/// Serializes one completed job as a single JSON line (the per-job object
/// of writeResultsJson() plus configHash / produceDoneAt / kernelDoneAt /
/// violations, so a resumed sweep reproduces the results file exactly).
std::string journalLine(const ExperimentResult& r, std::uint64_t configHash);

/// Parses a JSON-lines journal. Unparseable lines (a torn final line from
/// a killed process) are skipped silently; a missing file yields an empty
/// vector. gpuL2MissRate is recomputed from the integer counters so a
/// replayed job is bit-identical to a simulated one.
std::vector<JournalEntry> readJournal(const std::string& path);

/// Fills completed slots of @p results from the journal at @p path:
/// entries match jobs positionally per (code, size, mode, config-hash) key
/// — a batch with duplicate keys consumes one entry per duplicate. Matched
/// slots get fromJournal = true; the returned indices are the jobs the
/// journal does NOT cover (the work a resumed batch still owes). This is
/// the resume step of ExperimentEngine::run(), exported so the sweep
/// service can recover each request's journal after a restart.
std::vector<std::size_t>
replayJournal(const std::vector<ExperimentJob>& jobs,
              const std::vector<std::uint64_t>& hashes,
              const std::string& path,
              std::vector<ExperimentResult>* results);

/// Cross product in deterministic order: for each code, for each size, for
/// each mode — the order every bench prints its tables in.
std::vector<ExperimentJob>
makeSweepJobs(const std::vector<std::string>& codes,
              const std::vector<InputSize>& sizes,
              const std::vector<CoherenceMode>& modes,
              const SystemConfig& base = SystemConfig{});

/// Machine-readable results (schema "dscoh-results-v2", with an explicit
/// "schemaVersion" field so plots can detect format drift): one object per
/// job, in submission order, with the headline RunMetrics inlined plus the
/// full per-job counter snapshot under "stats".
void writeResultsJson(std::ostream& os,
                      const std::vector<ExperimentResult>& results);

/// writeResultsJson() published atomically (temp + rename), so readers and
/// crash recovery only ever see a complete results file.
void writeResultsJsonAtomic(const std::string& path,
                            const std::vector<ExperimentResult>& results);

} // namespace dscoh
