// Shared building blocks for the workload models: produce-phase program
// builders and per-thread access-pattern emitters. Every workload composes
// these with its own geometry and compute intensity.
//
// Elements are 4 bytes (float/int), matching the benchmarks' data types —
// footprints at Table II input sizes depend on this. producedValue() is
// compared under a 32-bit mask for 4-byte accesses, so verification works
// unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "workloads/workload.h"

namespace dscoh::patterns {

/// Element size of every modelled array (float/int).
inline constexpr std::uint32_t kElem = 4;

/// Appends stores of producedValue() over [va, va+bytes), one element each,
/// with @p computePerStore CPU cycles between stores (models the host-side
/// initialization loop's arithmetic).
inline void produceArray(CpuProgram& prog, Addr va, std::uint64_t bytes,
                         Tick computePerStore = 2)
{
    for (std::uint64_t off = 0; off < bytes; off += kElem) {
        if (computePerStore > 0)
            prog.push_back(cpuCompute(computePerStore));
        prog.push_back(cpuStore(va + off, producedValue(va + off), kElem));
    }
}

/// Emits a grid-stride streaming read over an array: thread `tid` of
/// `totalThreads` checks every `totalThreads`-th element, with
/// @p computePerElem GPU cycles of work per element. Coalesced: consecutive
/// threads touch consecutive elements.
inline void gridStrideRead(ThreadBuilder& t, Addr base, std::uint64_t bytes,
                           std::uint32_t tid, std::uint32_t totalThreads,
                           std::uint32_t computePerElem,
                           std::uint32_t elemsPerThread = 0xffffffff,
                           bool check = true)
{
    const std::uint64_t elems = bytes / kElem;
    std::uint32_t done = 0;
    for (std::uint64_t i = tid; i < elems && done < elemsPerThread;
         i += totalThreads, ++done) {
        const Addr va = base + i * kElem;
        if (check)
            t.ldCheck(va, producedValue(va), kElem);
        else
            t.ld(va, kElem);
        if (computePerElem > 0)
            t.compute(computePerElem);
    }
}

/// Grid-stride streaming write of derived results.
inline void gridStrideWrite(ThreadBuilder& t, Addr base, std::uint64_t bytes,
                            std::uint32_t tid, std::uint32_t totalThreads,
                            std::uint32_t computePerElem,
                            std::uint32_t elemsPerThread = 0xffffffff)
{
    const std::uint64_t elems = bytes / kElem;
    std::uint32_t done = 0;
    for (std::uint64_t i = tid; i < elems && done < elemsPerThread;
         i += totalThreads, ++done) {
        const Addr va = base + i * kElem;
        t.st(va, producedValue(va) + 1, kElem);
        if (computePerElem > 0)
            t.compute(computePerElem);
    }
}

/// Re-read pass without value checks (values may have been overwritten by
/// earlier kernels): models iterative algorithms revisiting their data.
inline void gridStrideReadNoCheck(ThreadBuilder& t, Addr base,
                                  std::uint64_t bytes, std::uint32_t tid,
                                  std::uint32_t totalThreads,
                                  std::uint32_t computePerElem,
                                  std::uint32_t elemsPerThread = 0xffffffff)
{
    gridStrideRead(t, base, bytes, tid, totalThreads, computePerElem,
                   elemsPerThread, /*check=*/false);
}

/// 2D 5-point stencil step over a rows x cols grid of 4-byte cells:
/// each thread owns a strip of cells, reads the cross neighbourhood from
/// `in` and writes `out`. Staged through shared memory when @p useSmem.
inline void stencil2d(ThreadBuilder& t, Addr in, Addr out, std::uint32_t rows,
                      std::uint32_t cols, std::uint32_t tid,
                      std::uint32_t totalThreads, std::uint32_t computePerCell,
                      bool useSmem, std::uint32_t cellsPerThread)
{
    const std::uint64_t cells = static_cast<std::uint64_t>(rows) * cols;
    std::uint32_t done = 0;
    for (std::uint64_t c = tid; c < cells && done < cellsPerThread;
         c += totalThreads, ++done) {
        const std::uint32_t r = static_cast<std::uint32_t>(c / cols);
        const std::uint32_t col = static_cast<std::uint32_t>(c % cols);
        t.ld(in + c * kElem, kElem);
        if (useSmem) {
            // Neighbours come from the scratchpad tile after one staging
            // load; this is why shared-memory codes barely touch the L2.
            t.smemSt();
            t.smemLd();
            t.smemLd();
        } else {
            if (col + 1 < cols)
                t.ld(in + (c + 1) * kElem, kElem);
            if (r + 1 < rows)
                t.ld(in + (c + cols) * kElem, kElem);
        }
        if (computePerCell > 0)
            t.compute(computePerCell);
        t.st(out + c * kElem, producedValue(out + c * kElem) ^ c, kElem);
    }
}

/// CSR-style sparse traversal: thread = node; reads its offset entry, then a
/// run of edge words, then the looked-up neighbour word in `nodeData`
/// (irregular indirection modelled with a multiplicative hash).
inline void csrTraverse(ThreadBuilder& t, Addr offsets, Addr edges,
                        Addr nodeData, std::uint32_t nodes,
                        std::uint32_t avgDegree, std::uint32_t node,
                        std::uint32_t computePerEdge)
{
    if (node >= nodes)
        return;
    // The offsets array is produced by the CPU and read-only in every graph
    // kernel: a checked load gives end-to-end value verification.
    const Addr off = offsets + static_cast<Addr>(node) * kElem;
    t.ldCheck(off, producedValue(off), kElem);
    const std::uint64_t firstEdge =
        static_cast<std::uint64_t>(node) * avgDegree;
    for (std::uint32_t e = 0; e < avgDegree; ++e) {
        t.ld(edges + (firstEdge + e) * kElem, kElem);
        // Neighbour lookup: deterministic pseudo-random target node.
        const std::uint64_t neighbor =
            (firstEdge + e) * 0x9e3779b97f4a7c15ull % nodes;
        t.ld(nodeData + neighbor * kElem, kElem);
        if (computePerEdge > 0)
            t.compute(computePerEdge);
    }
}

/// Dense dot-product row: reads `k` elements from a row of A (contiguous)
/// and `k` elements from a column of B (strided by rowElems), the classic
/// GEMM inner loop from the thread's point of view.
inline void dotRowCol(ThreadBuilder& t, Addr a, Addr b, std::uint32_t rowElems,
                      std::uint32_t row, std::uint32_t col, std::uint32_t k,
                      std::uint32_t computePerStep)
{
    for (std::uint32_t i = 0; i < k; ++i) {
        t.ld(a + (static_cast<Addr>(row) * rowElems + i) * kElem, kElem);
        t.ld(b + (static_cast<Addr>(i) * rowElems + col) * kElem, kElem);
        if (computePerStep > 0)
            t.compute(computePerStep);
    }
}

} // namespace dscoh::patterns
