#include "workloads/runner.h"

#include <cstdio>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "check/coherence_checker.h"
#include "sim/errors.h"
#include "snap/serializer.h"
#include "snap/snap_cache.h"

namespace dscoh {

WorkloadRun::WorkloadRun(const Workload& workload, InputSize size,
                         CoherenceMode mode, const SystemConfig& config,
                         WorkloadRunOptions options)
    : workload_(workload), size_(size), mode_(mode), opts_(std::move(options)),
      cfg_(config)
{
    cfg_.mode = mode;
    build();
}

void WorkloadRun::build()
{
    sys_ = std::make_unique<System>(cfg_);
    if (opts_.oracle)
        sys_->enableChecker();
    mem_.clear();
    footprint_ = 0;

    // Allocate the benchmark's arrays the way the (translated) program
    // would: kernel-referenced arrays move to the DS region under DS mode.
    // Allocation is deterministic (config + workload + size fix every
    // address), so a restore re-runs it and then overwrites the address
    // space with the identical snapshotted state.
    for (const ArraySpec& spec : workload_.arrays(size_)) {
        mem_[spec.name] = sys_->allocateArray(spec.bytes, spec.gpuShared);
        footprint_ += spec.bytes;
    }
    produce_ = workload_.cpuProduce(size_, mem_);
    kernels_ = workload_.kernels(size_, mem_);
    // Multi-GPU scale-out: spread the workload's kernel phases round-robin
    // across the configured devices. Phase order (and hence the coherence
    // traffic each phase generates) is unchanged — only the launching
    // device rotates, so every GPU's L2 and the sharded directory get
    // exercised.
    if (cfg_.numGpus > 1)
        for (std::size_t i = 0; i < kernels_.size(); ++i)
            kernels_[i].gpu = static_cast<std::uint32_t>(i % cfg_.numGpus);
}

WorkloadRun::~WorkloadRun() = default;

std::string WorkloadRun::produceCacheFile(std::uint64_t configHash,
                                          const std::string& code,
                                          InputSize size)
{
    std::ostringstream os;
    os << "produce-" << std::hex << std::setw(16) << std::setfill('0')
       << configHash << "-" << code << "-" << to_string(size) << ".snap";
    return os.str();
}

std::string WorkloadRun::produceCachePath(const std::string& dir,
                                          std::uint64_t configHash,
                                          const std::string& code,
                                          InputSize size)
{
    return dir + "/" + produceCacheFile(configHash, code, size);
}

void WorkloadRun::writeCheckpoint(const std::string& path) const
{
    sys_->snapshotSave(path, [this](snap::SnapWriter& w) {
        w.str(workload_.info().code);
        w.u8(static_cast<std::uint8_t>(size_));
        w.u8(static_cast<std::uint8_t>(mode_));
        w.u32(static_cast<std::uint32_t>(phasesDone_));
        w.u64(produceDoneAt_);
        w.u32(static_cast<std::uint32_t>(kernelDoneAt_.size()));
        for (Tick t : kernelDoneAt_)
            w.u64(t);
    });
}

bool WorkloadRun::tryRestore(const std::string& path, bool required)
{
    try {
        sys_->snapshotRestore(path, [this, &path](snap::SnapReader& r) {
            const std::string code = r.str();
            const auto size = static_cast<InputSize>(r.u8());
            const auto mode = static_cast<CoherenceMode>(r.u8());
            if (code != workload_.info().code || size != size_ ||
                mode != mode_)
                throw snap::SnapError(
                    path + ": checkpoint belongs to " + code + "/" +
                    to_string(size) + "/" + to_string(mode) +
                    ", not to this run (" + workload_.info().code + "/" +
                    to_string(size_) + "/" + to_string(mode_) + ")");
            phasesDone_ = r.u32();
            produceDoneAt_ = r.u64();
            kernelDoneAt_.resize(r.u32());
            for (Tick& t : kernelDoneAt_)
                t = r.u64();
        });
    } catch (const snap::SnapError&) {
        if (required)
            throw;
        // A stale/corrupt/missing cache entry is not an error: rebuild the
        // system (the failed restore may have partially mutated it) and
        // run fresh; the entry gets rewritten below.
        build();
        phasesDone_ = 0;
        produceDoneAt_ = 0;
        kernelDoneAt_.clear();
        return false;
    }
    if (phasesDone_ > phaseCount())
        throw snap::SnapError(path + ": checkpoint claims " +
                              std::to_string(phasesDone_) +
                              " completed phases, run only has " +
                              std::to_string(phaseCount()));
    restoredAt_ = sys_->queue().curTick();
    fromCheckpoint_ = true;
    return true;
}

void WorkloadRun::drain()
{
    EventQueue& queue = sys_->queue();
    if (opts_.maxIdleTicks == 0 && opts_.cancelFlag == nullptr) {
        queue.run();
        return;
    }
    // Slice the run so a protocol hang surfaces as an error instead of an
    // infinite loop, and so a raised cancel flag is noticed within one
    // slice. runUntil() preserves event order exactly (the slice boundary
    // only bounds the clock), so neither watchdog perturbs the simulation.
    // With only cancellation on, slices are a fixed stride: long enough to
    // stay off the hot path, short enough that cancels land promptly.
    constexpr Tick kCancelCheckTicks = Tick{1} << 16;
    const Tick slice =
        opts_.maxIdleTicks != 0 ? opts_.maxIdleTicks : kCancelCheckTicks;
    while (!queue.empty()) {
        if (opts_.cancelFlag != nullptr &&
            opts_.cancelFlag->load(std::memory_order_relaxed))
            throw CancelledError(workload_.info().code + " (" +
                                 std::string(to_string(size_)) + ", " +
                                 to_string(mode_) + "): cancelled at tick " +
                                 std::to_string(queue.curTick()));
        const std::uint64_t before = queue.executedEvents();
        queue.runUntil(queue.curTick() + slice);
        if (opts_.maxIdleTicks != 0 && !queue.empty() &&
            queue.executedEvents() == before) {
            std::string msg =
                workload_.info().code + " (" +
                std::string(to_string(size_)) + ", " + to_string(mode_) +
                "): no event executed for " +
                std::to_string(opts_.maxIdleTicks) + " ticks with " +
                std::to_string(queue.pending()) +
                " still queued — deadlock/livelock at tick " +
                std::to_string(queue.curTick());
            if (std::string stalled = sys_->describeOutstandingWork();
                !stalled.empty())
                msg += " [outstanding: " + stalled + "]";
            throw DeadlockError(msg);
        }
    }
}

void WorkloadRun::runPhase(std::size_t phase)
{
    if (phase == 0) {
        sys_->runCpuProgram(produce_, [this] {
            produceDoneAt_ = sys_->queue().curTick();
        });
    } else {
        sys_->launchKernel(kernels_[phase - 1], [this] {
            kernelDoneAt_.push_back(sys_->queue().curTick());
        });
    }
    drain();
}

void WorkloadRun::afterPhase(std::size_t phase)
{
    phasesDone_ = phase + 1;

    if (phase == 0 && !opts_.produceCacheDir.empty() && restoredAt_ == 0) {
        // Populate the fork-after-produce cache (atomic write: concurrent
        // sweep jobs racing on the same key both publish a valid file),
        // then trim the shared store back under its byte budget — the
        // fresh entry itself is exempt from this eviction pass. The cache
        // and the rolling phase checkpoint below are pure optimizations:
        // a storage failure (a full disk, an injected fault) costs their
        // benefit, never the simulation itself.
        try {
            snap::SnapshotCache cache(opts_.produceCacheDir,
                                      opts_.produceCacheMaxBytes);
            const std::string file = produceCacheFile(
                sys_->configHash(), workload_.info().code, size_);
            writeCheckpoint(cache.pathFor(file));
            cache.evictToBudget(file);
        } catch (const snap::SnapError&) {
        }
    }
    if (!opts_.phaseCheckpointPath.empty() && phasesDone_ < phaseCount()) {
        try {
            writeCheckpoint(opts_.phaseCheckpointPath);
        } catch (const snap::SnapError&) {
        }
    }

    if (!opts_.checkpointOut.empty() && !checkpointWritten_) {
        const bool tickHit = opts_.checkpointAtTick != 0 &&
                             sys_->queue().curTick() >= opts_.checkpointAtTick;
        const bool phaseHit =
            opts_.checkpointAtPhase >= 0 &&
            static_cast<std::size_t>(opts_.checkpointAtPhase) == phase;
        if (tickHit || phaseHit) {
            writeCheckpoint(opts_.checkpointOut);
            checkpointWritten_ = true;
        }
    }
}

WorkloadRunResult WorkloadRun::run()
{
    bool restored = false;
    if (!opts_.restoreFrom.empty())
        restored = tryRestore(opts_.restoreFrom,
                              /*required=*/!opts_.restoreOptional);
    if (!restored && !opts_.produceCacheDir.empty()) {
        snap::SnapshotCache cache(opts_.produceCacheDir,
                                  opts_.produceCacheMaxBytes);
        const std::string file = produceCacheFile(
            sys_->configHash(), workload_.info().code, size_);
        // touch() refreshes the entry's shared LRU stamp on a hit, so
        // entries hot across tenants survive eviction.
        if (cache.touch(file) &&
            tryRestore(cache.pathFor(file), /*required=*/false))
            produceTicksSaved_ = restoredAt_;
    }
    if (opts_.beforeFirstPhase)
        opts_.beforeFirstPhase(*sys_);

    for (std::size_t phase = phasesDone_; phase < phaseCount(); ++phase) {
        runPhase(phase);
        afterPhase(phase);
    }

    WorkloadRunResult result;
    result.code = workload_.info().code;
    result.size = size_;
    result.mode = mode_;
    result.metrics = sys_->metrics();
    if (CoherenceChecker* checker = sys_->checker(); checker != nullptr) {
        checker->finalize(sys_->queue().curTick());
        result.violations = checker->violations();
    }
    {
        const auto quiesced = sys_->checkCoherenceInvariants();
        result.violations.insert(result.violations.end(), quiesced.begin(),
                                 quiesced.end());
    }
    result.footprintBytes = footprint_;
    result.produceDoneAt = produceDoneAt_;
    result.kernelDoneAt = kernelDoneAt_;
    result.restoredAt = restoredAt_;
    result.simulatedTicks = result.metrics.ticks - restoredAt_;
    result.fromCheckpoint = fromCheckpoint_;
    for (const std::string& name : sys_->stats().counterNames())
        result.statCounters.emplace(name, sys_->stats().counter(name));

    if (result.metrics.checkFailures != 0)
        throw OracleError(
            workload_.info().code + " (" + std::string(to_string(size_)) +
            ", " + to_string(mode_) + "): " +
            std::to_string(result.metrics.checkFailures) +
            " value mismatches — functional bug, results untrustworthy");
    if (!result.violations.empty())
        throw OracleError(workload_.info().code +
                          ": coherence invariant violated: " +
                          result.violations.front());
    return result;
}

WorkloadRunResult runWorkload(const Workload& workload, InputSize size,
                              CoherenceMode mode, const SystemConfig& config)
{
    WorkloadRun run(workload, size, mode, config);
    return run.run();
}

ComparisonResult compareModes(const Workload& workload, InputSize size,
                              const SystemConfig& config)
{
    ComparisonResult result;
    result.ccsm = runWorkload(workload, size, CoherenceMode::kCcsm, config);
    result.directStore =
        runWorkload(workload, size, CoherenceMode::kDirectStore, config);
    return result;
}

} // namespace dscoh
