#include "workloads/runner.h"

#include <stdexcept>

namespace dscoh {

WorkloadRunResult runWorkload(const Workload& workload, InputSize size,
                              CoherenceMode mode, const SystemConfig& config)
{
    SystemConfig cfg = config;
    cfg.mode = mode;
    System sys(cfg);

    // Allocate the benchmark's arrays the way the (translated) program
    // would: kernel-referenced arrays move to the DS region under DS mode.
    Workload::ArrayMap mem;
    std::uint64_t footprint = 0;
    for (const ArraySpec& spec : workload.arrays(size)) {
        mem[spec.name] = sys.allocateArray(spec.bytes, spec.gpuShared);
        footprint += spec.bytes;
    }

    const CpuProgram produce = workload.cpuProduce(size, mem);
    const std::vector<KernelDesc> kernels = workload.kernels(size, mem);

    // Chain: produce -> kernel 0 -> kernel 1 -> ...
    Tick produceDoneAt = 0;
    std::vector<Tick> kernelDoneAt;
    std::size_t next = 0;
    std::function<void()> launchNext = [&]() {
        if (next >= kernels.size())
            return;
        const KernelDesc& k = kernels[next++];
        sys.launchKernel(k, [&] {
            kernelDoneAt.push_back(sys.queue().curTick());
            launchNext();
        });
    };
    sys.runCpuProgram(produce, [&] {
        produceDoneAt = sys.queue().curTick();
        launchNext();
    });
    sys.simulate();

    WorkloadRunResult result;
    result.code = workload.info().code;
    result.size = size;
    result.mode = mode;
    result.metrics = sys.metrics();
    result.violations = sys.checkCoherenceInvariants();
    result.footprintBytes = footprint;
    result.produceDoneAt = produceDoneAt;
    result.kernelDoneAt = std::move(kernelDoneAt);
    for (const std::string& name : sys.stats().counterNames())
        result.statCounters.emplace(name, sys.stats().counter(name));

    if (result.metrics.checkFailures != 0)
        throw std::runtime_error(
            workload.info().code + " (" + std::string(to_string(size)) + ", " +
            to_string(mode) + "): " +
            std::to_string(result.metrics.checkFailures) +
            " value mismatches — functional bug, results untrustworthy");
    if (!result.violations.empty())
        throw std::runtime_error(workload.info().code +
                                 ": coherence invariant violated: " +
                                 result.violations.front());
    return result;
}

ComparisonResult compareModes(const Workload& workload, InputSize size,
                              const SystemConfig& config)
{
    ComparisonResult result;
    result.ccsm = runWorkload(workload, size, CoherenceMode::kCcsm, config);
    result.directStore =
        runWorkload(workload, size, CoherenceMode::kDirectStore, config);
    return result;
}

} // namespace dscoh
