// Parboil (ST) and Pannotia (GC, FW, MS, SP) workload models.
// Elements are 4 bytes (floats / int node ids), matching the real codes.
#include <algorithm>

#include "workloads/pattern_helpers.h"
#include "workloads/workload.h"

namespace dscoh {
namespace {

using patterns::csrTraverse;
using patterns::kElem;
using patterns::produceArray;

constexpr std::uint32_t kTpb = 256;

template <typename T>
T pick(InputSize s, T small, T big)
{
    return s == InputSize::kSmall ? small : big;
}

std::uint32_t blocksFor(std::uint64_t threadsWanted,
                        std::uint32_t maxBlocks = 512)
{
    const std::uint64_t blocks = (threadsWanted + kTpb - 1) / kTpb;
    return static_cast<std::uint32_t>(
        std::clamp<std::uint64_t>(blocks, 1, maxBlocks));
}

// ---------------------------------------------------------------------------
// ST — Parboil 3D stencil, 128x128x32 / 164x164x32 floats (2 MB / 3.4 MB
// per grid). The input exceeds what survives in the 2 MB GPU L2 alongside
// the output, so pushed lines are largely gone before use — the paper sees
// no miss-rate difference and no speedup for ST.
// ---------------------------------------------------------------------------
class Stencil final : public Workload {
public:
    WorkloadInfo info() const override
    {
        return {"ST", "3D stencil (Parboil)", "128x128x32", "164x164x32",
                "Parboil", true,
                "2 time steps over an 8-layer z-slab of the full grid (the "
                "full volume is produced); xy-halo in shared memory, "
                "z-neighbour from global memory"};
    }

    std::vector<ArraySpec> arrays(InputSize s) const override
    {
        const std::uint64_t nx = pick<std::uint64_t>(s, 128, 164);
        const std::uint64_t cells = nx * nx * 32;
        return {{"grid_in", cells * kElem, true, true},
                {"grid_out", cells * kElem, true, false}};
    }

    CpuProgram cpuProduce(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint64_t nx = pick<std::uint64_t>(s, 128, 164);
        CpuProgram prog;
        produceArray(prog, mem.at("grid_in"), nx * nx * 32 * kElem, 6);
        return prog;
    }

    std::vector<KernelDesc> kernels(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint32_t nx = pick<std::uint32_t>(s, 128, 164);
        const std::uint64_t plane = static_cast<std::uint64_t>(nx) * nx;
        const std::uint64_t slabCells = plane * 8; // 8 z-layers simulated
        const Addr gridIn = mem.at("grid_in");
        const Addr gridOut = mem.at("grid_out");
        std::vector<KernelDesc> out;
        for (std::uint32_t step = 0; step < 2; ++step) {
            KernelDesc k;
            k.name = "st_step" + std::to_string(step);
            k.blocks = blocksFor(slabCells / 2);
            k.threadsPerBlock = kTpb;
            k.usesSharedMemory = true;
            const std::uint32_t total = k.blocks * kTpb;
            const Addr in = step == 0 ? gridIn : gridOut;
            const Addr dst = step == 0 ? gridOut : gridIn;
            k.body = [=](ThreadBuilder& t, std::uint32_t b, std::uint32_t th) {
                const std::uint32_t tid = b * kTpb + th;
                std::uint32_t done = 0;
                for (std::uint64_t c = tid; c + plane < slabCells && done < 2;
                     c += total, ++done) {
                    const Addr cell = in + c * kElem;
                    if (step == 0)
                        t.ldCheck(cell, producedValue(cell), kElem);
                    else
                        t.ld(cell, kElem);
                    // xy-halo from the scratchpad tile; the z+1 neighbour is
                    // a different block's cell -> L1 miss, usually L2 hit.
                    t.smemSt();
                    t.smemLd();
                    t.ld(in + (c + plane) * kElem, kElem);
                    t.compute(3);
                    t.st(dst + c * kElem, c ^ step, kElem);
                }
            };
            out.push_back(std::move(k));
        }
        return out;
    }
};

// ---------------------------------------------------------------------------
// Shared scaffold for the three Pannotia graph codes: CSR graph produced by
// the CPU, iterative vertex kernels with irregular neighbour lookups. They
// differ in iteration count, compute intensity and per-vertex work, which is
// what separates their Fig. 4 behaviour (GC modest, MS zero, SP modest).
// ---------------------------------------------------------------------------
struct GraphShape {
    std::uint32_t nodes;
    std::uint32_t degree;
};

class PannotiaGraph : public Workload {
public:
    PannotiaGraph(std::string code, std::string name, std::string smallIn,
                  std::string bigIn, GraphShape smallShape, GraphShape bigShape,
                  std::uint32_t iterations, std::uint32_t computePerEdge,
                  std::string scalingNote)
        : code_(std::move(code)), name_(std::move(name)),
          smallIn_(std::move(smallIn)), bigIn_(std::move(bigIn)),
          small_(smallShape), big_(bigShape), iterations_(iterations),
          computePerEdge_(computePerEdge), scalingNote_(std::move(scalingNote))
    {
    }

    WorkloadInfo info() const override
    {
        return {code_, name_, smallIn_, bigIn_, "Pannotia", false,
                scalingNote_};
    }

    std::vector<ArraySpec> arrays(InputSize s) const override
    {
        const GraphShape g = pick(s, small_, big_);
        return {{"offsets", static_cast<std::uint64_t>(g.nodes) * kElem, true,
                 true},
                {"edges",
                 static_cast<std::uint64_t>(g.nodes) * g.degree * kElem, true,
                 true},
                {"values", static_cast<std::uint64_t>(g.nodes) * kElem, true,
                 false}};
    }

    CpuProgram cpuProduce(InputSize s, const ArrayMap& mem) const override
    {
        const GraphShape g = pick(s, small_, big_);
        CpuProgram prog;
        produceArray(prog, mem.at("offsets"),
                     static_cast<std::uint64_t>(g.nodes) * kElem, 5);
        produceArray(prog, mem.at("edges"),
                     static_cast<std::uint64_t>(g.nodes) * g.degree * kElem, 5);
        return prog;
    }

    std::vector<KernelDesc> kernels(InputSize s, const ArrayMap& mem) const override
    {
        const GraphShape g = pick(s, small_, big_);
        const Addr offsets = mem.at("offsets");
        const Addr edges = mem.at("edges");
        const Addr values = mem.at("values");
        std::vector<KernelDesc> out;
        for (std::uint32_t iter = 0; iter < iterations_; ++iter) {
            KernelDesc k;
            k.name = code_ + "_iter" + std::to_string(iter);
            k.blocks = blocksFor(g.nodes);
            k.threadsPerBlock = kTpb;
            const std::uint32_t compute = computePerEdge_;
            k.body = [=, nodes = g.nodes, degree = g.degree](
                         ThreadBuilder& t, std::uint32_t b, std::uint32_t th) {
                const std::uint32_t node = b * kTpb + th;
                csrTraverse(t, offsets, edges, values, nodes, degree, node,
                            compute);
                if (node < nodes)
                    t.st(values + static_cast<Addr>(node) * kElem, node ^ iter,
                         kElem);
            };
            out.push_back(std::move(k));
        }
        return out;
    }

private:
    std::string code_;
    std::string name_;
    std::string smallIn_;
    std::string bigIn_;
    GraphShape small_;
    GraphShape big_;
    std::uint32_t iterations_;
    std::uint32_t computePerEdge_;
    std::string scalingNote_;
};

// ---------------------------------------------------------------------------
// FW — Floyd-Warshall (Pannotia), 256/512-node distance matrix (256 KB /
// 1 MB: fits the GPU L2). k-passes re-read row k (hot) plus the thread's
// own row; the paper's Fig. 4 bottom shows the big-input speedup.
// ---------------------------------------------------------------------------
class FloydWarshall final : public Workload {
public:
    WorkloadInfo info() const override
    {
        return {"FW", "Floyd-Warshall", "256_16384", "512_65536", "Pannotia",
                false,
                "6 k-passes instead of n; each thread relaxes a 32-column "
                "strip of its row per pass"};
    }

    std::vector<ArraySpec> arrays(InputSize s) const override
    {
        const std::uint64_t n = pick<std::uint64_t>(s, 256, 512);
        return {{"dist", n * n * kElem, true, true}};
    }

    CpuProgram cpuProduce(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint64_t n = pick<std::uint64_t>(s, 256, 512);
        CpuProgram prog;
        produceArray(prog, mem.at("dist"), n * n * kElem, 4);
        return prog;
    }

    std::vector<KernelDesc> kernels(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint32_t n = pick<std::uint32_t>(s, 256, 512);
        const Addr dist = mem.at("dist");
        std::vector<KernelDesc> out;
        for (std::uint32_t pass = 0; pass < 6; ++pass) {
            KernelDesc k;
            k.name = "fw_pass" + std::to_string(pass);
            k.blocks = blocksFor(n);
            k.threadsPerBlock = kTpb;
            const std::uint32_t kRow = pass * (n / 6);
            k.body = [=](ThreadBuilder& t, std::uint32_t b, std::uint32_t th) {
                const std::uint32_t row = b * kTpb + th;
                if (row >= n)
                    return;
                t.ld(dist + (static_cast<Addr>(row) * n + kRow) * kElem, kElem);
                for (std::uint32_t j = 0; j < std::min(n, 32u); ++j) {
                    const Addr kj =
                        dist + (static_cast<Addr>(kRow) * n + j) * kElem;
                    const Addr ij =
                        dist + (static_cast<Addr>(row) * n + j) * kElem;
                    t.ld(kj, kElem); // row k: shared by all threads, L2-hot
                    if (pass == 0)
                        t.ldCheck(ij, producedValue(ij), kElem);
                    else
                        t.ld(ij, kElem);
                    t.compute(2);
                    if (j % 8 == 3)
                        t.st(ij, row + j + pass, kElem);
                }
            };
            out.push_back(std::move(k));
        }
        return out;
    }
};

} // namespace

std::unique_ptr<Workload> makeStencil() { return std::make_unique<Stencil>(); }

std::unique_ptr<Workload> makeGraphColoring()
{
    // power: ~4k nodes; delaunay_n15: 32768 nodes.
    return std::make_unique<PannotiaGraph>(
        "GC", "Graph coloring", "power", "delaunay-n15",
        GraphShape{4096, 6}, GraphShape{32768, 6}, 3, 2,
        "synthetic CSR graphs with the input graphs' node counts (power ~4k, "
        "delaunay-n15 32k), degree 6, 3 coloring rounds");
}

std::unique_ptr<Workload> makeMis()
{
    // Maximal independent set: many rounds, heavier per-edge work -> the
    // produce-phase benefit is amortized away (zero speedup in the paper).
    return std::make_unique<PannotiaGraph>(
        "MS", "Maximal independent set", "power", "delaunay-n13",
        GraphShape{4096, 6}, GraphShape{8192, 6}, 8, 12,
        "synthetic CSR graphs (power ~4k, delaunay-n13 8k), degree 6, 8 "
        "selection rounds");
}

std::unique_ptr<Workload> makeSssp()
{
    return std::make_unique<PannotiaGraph>(
        "SP", "Single-source shortest paths", "power", "delaunay-n13",
        GraphShape{4096, 6}, GraphShape{8192, 6}, 2, 2,
        "synthetic CSR graphs (power ~4k, delaunay-n13 8k), degree 6, 2 "
        "relaxation rounds");
}

std::unique_ptr<Workload> makeFloydWarshall()
{
    return std::make_unique<FloydWarshall>();
}

} // namespace dscoh
