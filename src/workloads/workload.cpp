#include "workloads/workload.h"

#include <stdexcept>

namespace dscoh {

const char* to_string(InputSize s)
{
    return s == InputSize::kSmall ? "small" : "big";
}

const WorkloadRegistry& WorkloadRegistry::instance()
{
    static WorkloadRegistry registry;
    return registry;
}

WorkloadRegistry::WorkloadRegistry()
{
    // Table II order.
    add(makeBackprop());
    add(makeBfs());
    add(makeGaussian());
    add(makeHotspot());
    add(makeKmeans());
    add(makeLavaMd());
    add(makeLud());
    add(makeNearestNeighbor());
    add(makeNeedle());
    add(makePathfinder());
    add(makeSrad());
    add(makeStencil());
    add(makeGraphColoring());
    add(makeFloydWarshall());
    add(makeMis());
    add(makeSssp());
    add(makeBlackScholes());
    add(makeVectorAdd());
    add(makeBitonicSort());
    add(makeMatrixMul());
    add(makeMatrixTranspose());
    add(makeCholesky());
}

void WorkloadRegistry::add(std::unique_ptr<Workload> w)
{
    const std::string code = w->info().code;
    order_.push_back(code);
    byCode_.emplace(code, std::move(w));
}

std::vector<std::string> WorkloadRegistry::codes() const { return order_; }

const Workload& WorkloadRegistry::get(const std::string& code) const
{
    const auto it = byCode_.find(code);
    if (it == byCode_.end())
        throw std::out_of_range("unknown workload code: " + code);
    return *it->second;
}

} // namespace dscoh
