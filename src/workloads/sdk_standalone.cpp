// NVIDIA SDK (BL, VA) and standalone (BS, MM, MT, CH) workload models.
// Elements are 4 bytes (floats / int keys), matching the real codes.
#include <algorithm>

#include "workloads/pattern_helpers.h"
#include "workloads/workload.h"

namespace dscoh {
namespace {

using patterns::kElem;
using patterns::produceArray;

constexpr std::uint32_t kTpb = 256;

template <typename T>
T pick(InputSize s, T small, T big)
{
    return s == InputSize::kSmall ? small : big;
}

std::uint32_t blocksFor(std::uint64_t threadsWanted,
                        std::uint32_t maxBlocks = 512)
{
    const std::uint64_t blocks = (threadsWanted + kTpb - 1) / kTpb;
    return static_cast<std::uint32_t>(
        std::clamp<std::uint64_t>(blocks, 1, maxBlocks));
}

// ---------------------------------------------------------------------------
// BL — Black-Scholes, 5000 / 10000 options. Three CPU-produced input arrays
// (price, strike, expiry), two GPU-written outputs, one streaming pass with
// heavy per-option math: the classic >10% direct-store case.
// ---------------------------------------------------------------------------
class BlackScholes final : public Workload {
public:
    WorkloadInfo info() const override
    {
        return {"BL", "Black-Scholes", "5000", "10000", "NVIDIA SDK", false,
                "one pricing pass, 20 ALU cycles per option"};
    }

    std::vector<ArraySpec> arrays(InputSize s) const override
    {
        const std::uint64_t n = pick<std::uint64_t>(s, 5000, 10000);
        return {{"price", n * kElem, true, true},
                {"strike", n * kElem, true, true},
                {"expiry", n * kElem, true, true},
                {"call", n * kElem, true, false},
                {"put", n * kElem, true, false}};
    }

    CpuProgram cpuProduce(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint64_t n = pick<std::uint64_t>(s, 5000, 10000);
        CpuProgram prog;
        produceArray(prog, mem.at("price"), n * kElem, 0);
        produceArray(prog, mem.at("strike"), n * kElem, 0);
        produceArray(prog, mem.at("expiry"), n * kElem, 0);
        return prog;
    }

    std::vector<KernelDesc> kernels(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint32_t n = pick<std::uint32_t>(s, 5000, 10000);
        const Addr price = mem.at("price");
        const Addr strike = mem.at("strike");
        const Addr expiry = mem.at("expiry");
        const Addr call = mem.at("call");
        const Addr put = mem.at("put");
        KernelDesc k;
        k.name = "bl_price";
        k.blocks = blocksFor(n);
        k.threadsPerBlock = kTpb;
        k.body = [=](ThreadBuilder& t, std::uint32_t b, std::uint32_t th) {
            const std::uint32_t opt = b * kTpb + th;
            if (opt >= n)
                return;
            const Addr o = static_cast<Addr>(opt) * kElem;
            t.ldCheck(price + o, producedValue(price + o), kElem);
            t.ldCheck(strike + o, producedValue(strike + o), kElem);
            t.ldCheck(expiry + o, producedValue(expiry + o), kElem);
            t.compute(20);
            t.st(call + o, opt * 2, kElem);
            t.st(put + o, opt * 2 + 1, kElem);
        };
        return {k};
    }
};

// ---------------------------------------------------------------------------
// VA — vectorAdd, 50000 / 200000 elements. c[i] = a[i] + b[i]: the purest
// streaming producer-consumer benchmark. The big input (2.4 MB across the
// three arrays) overflows the 2 MB L2, shrinking the benefit exactly as
// Fig. 4 bottom shows.
// ---------------------------------------------------------------------------
class VectorAdd final : public Workload {
public:
    WorkloadInfo info() const override
    {
        return {"VA", "vectorAdd", "50000", "200000", "NVIDIA SDK", false,
                "unscaled: one element per thread"};
    }

    std::vector<ArraySpec> arrays(InputSize s) const override
    {
        const std::uint64_t n = pick<std::uint64_t>(s, 50000, 200000);
        return {{"a", n * kElem, true, true},
                {"b", n * kElem, true, true},
                {"c", n * kElem, true, false}};
    }

    CpuProgram cpuProduce(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint64_t n = pick<std::uint64_t>(s, 50000, 200000);
        CpuProgram prog;
        produceArray(prog, mem.at("a"), n * kElem, 0);
        produceArray(prog, mem.at("b"), n * kElem, 0);
        return prog;
    }

    std::vector<KernelDesc> kernels(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint32_t n = pick<std::uint32_t>(s, 50000, 200000);
        const Addr a = mem.at("a");
        const Addr b = mem.at("b");
        const Addr c = mem.at("c");
        KernelDesc k;
        k.name = "va_add";
        k.blocks = blocksFor(n, 1024);
        k.threadsPerBlock = kTpb;
        const std::uint32_t total = k.blocks * kTpb;
        k.body = [=](ThreadBuilder& t, std::uint32_t blk, std::uint32_t th) {
            for (std::uint32_t i = blk * kTpb + th; i < n; i += total) {
                const Addr o = static_cast<Addr>(i) * kElem;
                t.ldCheck(a + o, producedValue(a + o), kElem);
                t.ldCheck(b + o, producedValue(b + o), kElem);
                t.compute(1);
                t.st(c + o, i, kElem);
            }
        };
        return {k};
    }
};

// ---------------------------------------------------------------------------
// BS — Bitonic sort, 262144 / 524288 int keys (1 MB / 2 MB). Many passes
// over the same array: accesses dwarf misses (the paper's zero-miss-rate
// row) and the one-pass push benefit is diluted into a small speedup.
// ---------------------------------------------------------------------------
class BitonicSort final : public Workload {
public:
    WorkloadInfo info() const override
    {
        return {"BS", "Bitonic sort", "262144", "524288", "[24]", false,
                "10 merge passes instead of log^2(n)/2 ~ 171"};
    }

    std::vector<ArraySpec> arrays(InputSize s) const override
    {
        const std::uint64_t n = pick<std::uint64_t>(s, 262144, 524288);
        return {{"keys", n * kElem, true, true}};
    }

    CpuProgram cpuProduce(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint64_t n = pick<std::uint64_t>(s, 262144, 524288);
        CpuProgram prog;
        produceArray(prog, mem.at("keys"), n * kElem, 6);
        return prog;
    }

    std::vector<KernelDesc> kernels(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint32_t n = pick<std::uint32_t>(s, 262144, 524288);
        const Addr keys = mem.at("keys");
        std::vector<KernelDesc> out;
        for (std::uint32_t pass = 0; pass < 10; ++pass) {
            KernelDesc k;
            k.name = "bs_pass" + std::to_string(pass);
            k.blocks = blocksFor(n / 8, 1024);
            k.threadsPerBlock = kTpb;
            const std::uint32_t total = k.blocks * kTpb;
            const std::uint32_t stride = 1u << (pass % 8);
            k.body = [=](ThreadBuilder& t, std::uint32_t b, std::uint32_t th) {
                const std::uint32_t tid = b * kTpb + th;
                std::uint32_t done = 0;
                for (std::uint64_t i = tid; i + stride < n && done < 4;
                     i += total, ++done) {
                    const Addr lo = keys + i * kElem;
                    const Addr hi = keys + (i + stride) * kElem;
                    // No checked reads even on pass 0: neighbouring threads
                    // legitimately overwrite each other's keys.
                    t.ld(lo, kElem);
                    t.ld(hi, kElem);
                    t.compute(1);
                    t.st(lo, i ^ pass, kElem);
                    t.st(hi, i + pass, kElem);
                }
            };
            out.push_back(std::move(k));
        }
        return out;
    }
};

// ---------------------------------------------------------------------------
// MM — Matrix multiplication, 256x256 / 900x900 floats. Warp-uniform A-row
// loads and coalesced B-column loads with strong L2 reuse; the big input
// (9.7 MB total) blows out the L2, collapsing the speedup (Fig. 4 bottom:
// MM -> 0).
// ---------------------------------------------------------------------------
class MatrixMul final : public Workload {
public:
    WorkloadInfo info() const override
    {
        return {"MM", "Matrix multiplication", "256x256", "900x900", "[25]",
                false,
                "inner product sampled at 16 k-steps rotated across blocks "
                "(full B coverage); up to 32k output elements computed"};
    }

    std::vector<ArraySpec> arrays(InputSize s) const override
    {
        const std::uint64_t n = pick<std::uint64_t>(s, 256, 900);
        return {{"A", n * n * kElem, true, true},
                {"B", n * n * kElem, true, true},
                {"C", n * n * kElem, true, false}};
    }

    CpuProgram cpuProduce(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint64_t n = pick<std::uint64_t>(s, 256, 900);
        CpuProgram prog;
        produceArray(prog, mem.at("A"), n * n * kElem, 0);
        produceArray(prog, mem.at("B"), n * n * kElem, 0);
        return prog;
    }

    std::vector<KernelDesc> kernels(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint32_t n = pick<std::uint32_t>(s, 256, 900);
        const Addr a = mem.at("A");
        const Addr b = mem.at("B");
        const Addr c = mem.at("C");
        const std::uint64_t outputs =
            std::min<std::uint64_t>(static_cast<std::uint64_t>(n) * n, 32768);
        const std::uint32_t kSteps = std::min(n, 16u);
        KernelDesc k;
        k.name = "mm_gemm";
        k.blocks = blocksFor(outputs, 512);
        k.threadsPerBlock = kTpb;
        k.body = [=](ThreadBuilder& t, std::uint32_t blk, std::uint32_t th) {
            const std::uint64_t out = static_cast<std::uint64_t>(blk) * kTpb + th;
            if (out >= outputs)
                return;
            const std::uint32_t row = static_cast<std::uint32_t>(out / n);
            const std::uint32_t col = static_cast<std::uint32_t>(out % n);
            // Different blocks sample different k-strips so the whole of B
            // is read, as a tiled GEMM would.
            const std::uint32_t kStart = (blk * kSteps) % n;
            for (std::uint32_t i = 0; i < kSteps; ++i) {
                const std::uint32_t kk = (kStart + i) % n;
                t.ld(a + (static_cast<Addr>(row) * n + kk) * kElem, kElem);
                t.ld(b + (static_cast<Addr>(kk) * n + col) * kElem, kElem);
                t.compute(1);
            }
            t.st(c + out * kElem, out, kElem);
        };
        return {k};
    }
};

// ---------------------------------------------------------------------------
// MT — Matrix transpose, 32x32 / 1600x1600 floats. Coalesced reads, strided
// writes, single pass. Big input modelled on a 1088x1088 working tile
// (4.7 MB per array — the full 10 MB matrix would take minutes to produce
// element by element) — still >2x the GPU L2, which is what collapses the
// big-input speedup.
// ---------------------------------------------------------------------------
class MatrixTranspose final : public Workload {
public:
    WorkloadInfo info() const override
    {
        return {"MT", "Matrix transpose", "32x32", "1600x1600", "[25]", false,
                "big input simulated on a 1088x1088 working tile (4.7 MB per "
                "array, still >2x the GPU L2)"};
    }

    static std::uint32_t dim(InputSize s)
    {
        return s == InputSize::kSmall ? 32 : 1088;
    }

    std::vector<ArraySpec> arrays(InputSize s) const override
    {
        const std::uint64_t n = dim(s);
        return {{"in", n * n * kElem, true, true},
                {"out", n * n * kElem, true, false}};
    }

    CpuProgram cpuProduce(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint64_t n = dim(s);
        CpuProgram prog;
        produceArray(prog, mem.at("in"), n * n * kElem, 0);
        return prog;
    }

    std::vector<KernelDesc> kernels(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint32_t n = dim(s);
        const Addr in = mem.at("in");
        const Addr outArr = mem.at("out");
        const std::uint64_t cells = static_cast<std::uint64_t>(n) * n;
        KernelDesc k;
        k.name = "mt_transpose";
        k.blocks = blocksFor(cells / 4, 1024);
        k.threadsPerBlock = kTpb;
        const std::uint32_t total = k.blocks * kTpb;
        k.body = [=](ThreadBuilder& t, std::uint32_t b, std::uint32_t th) {
            const std::uint32_t tid = b * kTpb + th;
            std::uint32_t done = 0;
            for (std::uint64_t i = tid; i < cells && done < 4;
                 i += total, ++done) {
                const Addr src = in + i * kElem;
                t.ldCheck(src, producedValue(src), kElem);
                const std::uint64_t r = i / n;
                const std::uint64_t col = i % n;
                t.st(outArr + (col * n + r) * kElem, i, kElem);
            }
        };
        return {k};
    }
};

// ---------------------------------------------------------------------------
// CH — Cholesky decomposition, 150x150 / 600x600 floats. Column-panel
// passes with a hot pivot column; modest speedups at both sizes.
// ---------------------------------------------------------------------------
class Cholesky final : public Workload {
public:
    WorkloadInfo info() const override
    {
        return {"CH", "Cholesky decomposition", "150x150", "600x600", "[26]",
                false,
                "6 panel passes instead of n; 32-element row strips per "
                "thread"};
    }

    std::vector<ArraySpec> arrays(InputSize s) const override
    {
        const std::uint64_t n = pick<std::uint64_t>(s, 150, 600);
        return {{"matrix", n * n * kElem, true, true}};
    }

    CpuProgram cpuProduce(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint64_t n = pick<std::uint64_t>(s, 150, 600);
        CpuProgram prog;
        produceArray(prog, mem.at("matrix"), n * n * kElem, 5);
        return prog;
    }

    std::vector<KernelDesc> kernels(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint32_t n = pick<std::uint32_t>(s, 150, 600);
        const Addr matrix = mem.at("matrix");
        std::vector<KernelDesc> out;
        for (std::uint32_t pass = 0; pass < 6; ++pass) {
            KernelDesc k;
            k.name = "ch_panel" + std::to_string(pass);
            k.blocks = blocksFor(n);
            k.threadsPerBlock = kTpb;
            const std::uint32_t pivotCol = pass * (n / 6);
            k.body = [=](ThreadBuilder& t, std::uint32_t b, std::uint32_t th) {
                const std::uint32_t row = b * kTpb + th;
                if (row >= n || row < pivotCol)
                    return;
                // Pivot column element: hot across threads.
                t.ld(matrix + (static_cast<Addr>(pivotCol) * n + pivotCol) *
                                  kElem,
                     kElem);
                for (std::uint32_t j = 0; j < std::min(n - pivotCol, 32u); ++j) {
                    const Addr cell =
                        matrix +
                        (static_cast<Addr>(row) * n + pivotCol + j) * kElem;
                    if (pass == 0)
                        t.ldCheck(cell, producedValue(cell), kElem);
                    else
                        t.ld(cell, kElem);
                    t.compute(3);
                    if (j % 8 == 5)
                        t.st(cell, row * j + pass, kElem);
                }
            };
            out.push_back(std::move(k));
        }
        return out;
    }
};

} // namespace

std::unique_ptr<Workload> makeBlackScholes()
{
    return std::make_unique<BlackScholes>();
}
std::unique_ptr<Workload> makeVectorAdd() { return std::make_unique<VectorAdd>(); }
std::unique_ptr<Workload> makeBitonicSort()
{
    return std::make_unique<BitonicSort>();
}
std::unique_ptr<Workload> makeMatrixMul() { return std::make_unique<MatrixMul>(); }
std::unique_ptr<Workload> makeMatrixTranspose()
{
    return std::make_unique<MatrixTranspose>();
}
std::unique_ptr<Workload> makeCholesky() { return std::make_unique<Cholesky>(); }

} // namespace dscoh
