// Runs a workload on a System and extracts the paper's metrics.
//
// The phase structure mirrors the benchmarks after memory-copy elimination
// (§IV-B): the CPU produce phase runs first, then the kernels launch back to
// back, then (implicitly) the host would inspect a few results — all timed
// as one run, exactly like the paper's "total ticks".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/system.h"
#include "workloads/workload.h"

namespace dscoh {

struct WorkloadRunResult {
    std::string code;
    InputSize size = InputSize::kSmall;
    CoherenceMode mode = CoherenceMode::kCcsm;
    RunMetrics metrics;
    std::vector<std::string> violations; ///< coherence-invariant breaches
    std::uint64_t footprintBytes = 0;
    /// Full snapshot of the run's StatRegistry counters (name -> value),
    /// taken after the simulation quiesced. Ends up in results.json so
    /// downstream analysis gets every counter, not just RunMetrics.
    std::map<std::string, std::uint64_t> statCounters;
    /// Phase breakdown: tick at which the CPU produce phase finished, and
    /// the completion tick of each kernel (for the ablation narratives).
    Tick produceDoneAt = 0;
    std::vector<Tick> kernelDoneAt;
};

/// Runs @p workload at @p size under @p mode on a fresh System built from
/// @p config (mode field is overridden). Throws std::runtime_error on
/// functional failures (value mismatches) so benches cannot silently report
/// numbers from a broken run.
WorkloadRunResult runWorkload(const Workload& workload, InputSize size,
                              CoherenceMode mode,
                              const SystemConfig& config = SystemConfig{});

/// Convenience pair-runner for speedup computations.
struct ComparisonResult {
    WorkloadRunResult ccsm;
    WorkloadRunResult directStore;
    double speedup() const
    {
        return directStore.metrics.ticks == 0
                   ? 0.0
                   : static_cast<double>(ccsm.metrics.ticks) /
                         static_cast<double>(directStore.metrics.ticks);
    }
};

ComparisonResult compareModes(const Workload& workload, InputSize size,
                              const SystemConfig& config = SystemConfig{});

} // namespace dscoh
