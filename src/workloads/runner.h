// Runs a workload on a System and extracts the paper's metrics.
//
// The phase structure mirrors the benchmarks after memory-copy elimination
// (§IV-B): the CPU produce phase runs first, then the kernels launch back to
// back, then (implicitly) the host would inspect a few results — all timed
// as one run, exactly like the paper's "total ticks".
//
// Every phase boundary is a *safe point*: the event queue is drained
// completely before the next phase is scheduled, so the entire machine state
// is plain data there and can be checkpointed (src/snap). Restoring a
// checkpoint and running the remaining phases is byte-identical to the
// uninterrupted run — the queue's event-identity state (clock, insertion
// sequence, tie-break RNG) travels with the snapshot.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/system.h"
#include "workloads/workload.h"

namespace dscoh {

struct WorkloadRunResult {
    std::string code;
    InputSize size = InputSize::kSmall;
    CoherenceMode mode = CoherenceMode::kCcsm;
    RunMetrics metrics;
    std::vector<std::string> violations; ///< coherence-invariant breaches
    std::uint64_t footprintBytes = 0;
    /// Full snapshot of the run's StatRegistry counters (name -> value),
    /// taken after the simulation quiesced. Ends up in results.json so
    /// downstream analysis gets every counter, not just RunMetrics.
    std::map<std::string, std::uint64_t> statCounters;
    /// Phase breakdown: tick at which the CPU produce phase finished, and
    /// the completion tick of each kernel (for the ablation narratives).
    Tick produceDoneAt = 0;
    std::vector<Tick> kernelDoneAt;

    // --- provenance (NOT serialized into results JSON: a restored run's
    // results stay bit-identical to an uninterrupted one) ---
    /// Tick the run resumed from (0 = ran from scratch).
    Tick restoredAt = 0;
    /// Ticks actually simulated by this process (metrics.ticks - restoredAt).
    Tick simulatedTicks = 0;
    /// The run started from a checkpoint or produce-cache snapshot.
    bool fromCheckpoint = false;
};

/// Options controlling checkpoint/restore and hang detection for one run.
/// Defaults reproduce the plain uninstrumented run.
struct WorkloadRunOptions {
    /// Restore this snapshot (written by a previous run of the same
    /// workload/size/mode/config) and simulate only the remaining phases.
    std::string restoreFrom;
    /// Missing/corrupt/mismatched restoreFrom falls back to a fresh run
    /// instead of throwing (how sweeps treat leftover job checkpoints).
    bool restoreOptional = false;

    /// Write a checkpoint to this path when the trigger below fires.
    std::string checkpointOut;
    /// Trigger: first safe point (phase boundary) at or after this tick.
    /// 0 = no tick trigger.
    Tick checkpointAtTick = 0;
    /// Trigger: completion of this phase (0 = produce, k = kernel k-1).
    /// -1 = no phase trigger.
    int checkpointAtPhase = -1;

    /// Rolling checkpoint: (re)written at EVERY phase boundary, so a killed
    /// job resumes from its last completed phase (ExperimentEngine
    /// --resume). Empty = off.
    std::string phaseCheckpointPath;

    /// Fork-after-produce: directory of produce-phase snapshots keyed by
    /// (config hash, workload, size). A hit skips the produce phase
    /// entirely; a miss runs it and populates the cache. Empty = off.
    /// The directory is a snap::SnapshotCache — shared across processes,
    /// with hits refreshing the entry's LRU stamp.
    std::string produceCacheDir;
    /// Byte budget for that cache (0 = unbounded): after each populate,
    /// oldest-stamp entries are evicted until the directory fits.
    std::uint64_t produceCacheMaxBytes = 0;

    /// No-progress watchdog: abort (std::runtime_error) when this many
    /// ticks pass without a single event executing while work is still
    /// queued, instead of spinning forever on a protocol hang. 0 = off.
    Tick maxIdleTicks = 0;

    /// Cooperative cancellation: checked between run slices (every
    /// maxIdleTicks, or a fixed stride when the watchdog is off); when the
    /// pointee becomes true the run throws CancelledError at the next
    /// check. Null = not cancellable (the historical fast path).
    const std::atomic<bool>* cancelFlag = nullptr;

    /// Attach the live CoherenceChecker oracle for the whole run. Any
    /// violation it records surfaces in WorkloadRunResult::violations and
    /// makes run() throw OracleError, exactly like an end-state invariant
    /// breach. Changes simulated behavior not at all, but costs shadow
    /// bookkeeping per access — off by default.
    bool oracle = false;

    /// Invoked once inside run(), after any restore but before the first
    /// phase is scheduled. Restore requires an empty event queue, so
    /// drivers that schedule events up front (epoch samplers) must do it
    /// here rather than before run().
    std::function<void(System&)> beforeFirstPhase;
};

/// One workload execution, phase by phase, with optional checkpoint /
/// restore / watchdog. runWorkload() below is the plain-run shorthand.
class WorkloadRun {
public:
    WorkloadRun(const Workload& workload, InputSize size, CoherenceMode mode,
                const SystemConfig& config = SystemConfig{},
                WorkloadRunOptions options = WorkloadRunOptions{});
    ~WorkloadRun();

    WorkloadRun(const WorkloadRun&) = delete;
    WorkloadRun& operator=(const WorkloadRun&) = delete;

    /// Produce + every kernel: the number of safe points in the run.
    std::size_t phaseCount() const { return 1 + kernels_.size(); }

    /// Runs every (remaining) phase to completion and returns the result.
    /// Throws std::runtime_error on functional failures (value mismatches)
    /// or a watchdog-detected hang, snap::SnapError on checkpoint misuse.
    WorkloadRunResult run();

    /// The underlying system (for tracing/stat access between phases).
    System& system() { return *sys_; }

    /// Mutable options (e.g. to install beforeFirstPhase after seeing the
    /// constructed System). Only meaningful before run().
    WorkloadRunOptions& options() { return opts_; }

    /// Produce ticks skipped via the produce-snapshot cache (0 on a cache
    /// miss or when the cache is off). Valid after run().
    Tick produceTicksSaved() const { return produceTicksSaved_; }

    /// The produce-cache snapshot filename for a given key (exposed so
    /// sweeps can report / prune the cache).
    static std::string produceCachePath(const std::string& dir,
                                        std::uint64_t configHash,
                                        const std::string& code,
                                        InputSize size);
    /// The bare cache-entry name produceCachePath() appends to the dir
    /// (the key format of the shared snap::SnapshotCache).
    static std::string produceCacheFile(std::uint64_t configHash,
                                        const std::string& code,
                                        InputSize size);

private:
    void build();
    void runPhase(std::size_t phase);
    void drain();
    void afterPhase(std::size_t phase);
    void writeCheckpoint(const std::string& path) const;
    /// Restores @p path; returns false when it is unusable (corrupt /
    /// wrong shape) and @p required is false.
    bool tryRestore(const std::string& path, bool required);

    const Workload& workload_;
    InputSize size_;
    CoherenceMode mode_;
    WorkloadRunOptions opts_;
    SystemConfig cfg_;

    std::unique_ptr<System> sys_;
    Workload::ArrayMap mem_;
    std::uint64_t footprint_ = 0;
    CpuProgram produce_;
    std::vector<KernelDesc> kernels_;

    std::size_t phasesDone_ = 0; ///< next phase to run
    Tick produceDoneAt_ = 0;
    std::vector<Tick> kernelDoneAt_;
    Tick restoredAt_ = 0;
    bool fromCheckpoint_ = false;
    bool checkpointWritten_ = false;
    Tick produceTicksSaved_ = 0;
};

/// Runs @p workload at @p size under @p mode on a fresh System built from
/// @p config (mode field is overridden). Throws std::runtime_error on
/// functional failures (value mismatches) so benches cannot silently report
/// numbers from a broken run.
WorkloadRunResult runWorkload(const Workload& workload, InputSize size,
                              CoherenceMode mode,
                              const SystemConfig& config = SystemConfig{});

/// Convenience pair-runner for speedup computations.
struct ComparisonResult {
    WorkloadRunResult ccsm;
    WorkloadRunResult directStore;
    double speedup() const
    {
        return directStore.metrics.ticks == 0
                   ? 0.0
                   : static_cast<double>(ccsm.metrics.ticks) /
                         static_cast<double>(directStore.metrics.ticks);
    }
};

ComparisonResult compareModes(const Workload& workload, InputSize size,
                              const SystemConfig& config = SystemConfig{});

} // namespace dscoh
