// Workload model framework for the paper's 22 benchmarks (Table II).
//
// The authors ran CUDA programs (Rodinia, Parboil, Pannotia, SDK + four
// standalone codes) through gem5-gpu. We cannot ship CUDA binaries; each
// benchmark is modelled behaviourally instead: its arrays (with Table II
// input sizes), the CPU produce phase (the stores the host performs before
// launching kernels), and its kernels' per-thread access patterns, compute
// intensity and shared-memory usage. Iteration counts are scaled down
// (documented per workload via info().scalingNote) so simulations finish in
// seconds while footprints — which drive the cache behaviour the paper
// measures — stay true to Table II.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cpu/program.h"
#include "gpu/kernel.h"
#include "sim/types.h"

namespace dscoh {

enum class InputSize { kSmall, kBig };

const char* to_string(InputSize s);

/// One row of Table II plus our scaling documentation.
struct WorkloadInfo {
    std::string code;     ///< "BP"
    std::string fullName; ///< "Backpropagation"
    std::string smallInput;
    std::string bigInput;
    std::string suite; ///< "Rodinia", "Parboil", "Pannotia", "NVIDIA SDK", ...
    bool usesSharedMemory = false;
    std::string scalingNote; ///< what was scaled down vs. the real program
};

struct ArraySpec {
    std::string name;
    std::uint64_t bytes = 0;
    /// Referenced by kernels: the translator would move it into the DS
    /// region (so it is homed on the GPU under kDirectStore).
    bool gpuShared = true;
    /// The CPU writes it before the first kernel launch.
    bool cpuProduced = true;
};

class Workload {
public:
    using ArrayMap = std::map<std::string, Addr>;

    virtual ~Workload() = default;

    virtual WorkloadInfo info() const = 0;
    virtual std::vector<ArraySpec> arrays(InputSize size) const = 0;

    /// The host-side produce phase (runs before the kernels).
    virtual CpuProgram cpuProduce(InputSize size, const ArrayMap& mem) const = 0;

    /// The kernel sequence, launched back to back.
    virtual std::vector<KernelDesc> kernels(InputSize size,
                                            const ArrayMap& mem) const = 0;
};

/// Canonical produced value for the 8-byte word at virtual address @p va —
/// both the CPU produce phase and GPU-side checks derive expectations from
/// this, giving end-to-end functional verification in every run.
constexpr std::uint64_t producedValue(Addr va)
{
    std::uint64_t x = va;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    return x;
}

/// Registry of all Table II workloads, in the paper's order.
class WorkloadRegistry {
public:
    static const WorkloadRegistry& instance();

    std::vector<std::string> codes() const;
    const Workload& get(const std::string& code) const;
    bool has(const std::string& code) const
    {
        return byCode_.count(code) != 0;
    }
    std::size_t size() const { return order_.size(); }

private:
    WorkloadRegistry();
    void add(std::unique_ptr<Workload> w);

    std::vector<std::string> order_;
    std::map<std::string, std::unique_ptr<Workload>> byCode_;
};

// Factories, grouped by suite (defined across the workload .cpp files).
std::unique_ptr<Workload> makeBackprop();        // BP, Rodinia
std::unique_ptr<Workload> makeBfs();             // BF, Rodinia
std::unique_ptr<Workload> makeGaussian();        // GA, Rodinia
std::unique_ptr<Workload> makeHotspot();         // HT, Rodinia
std::unique_ptr<Workload> makeKmeans();          // KM, Rodinia
std::unique_ptr<Workload> makeLavaMd();          // LV, Rodinia
std::unique_ptr<Workload> makeLud();             // LU, Rodinia
std::unique_ptr<Workload> makeNearestNeighbor(); // NN, Rodinia
std::unique_ptr<Workload> makeNeedle();          // NW, Rodinia
std::unique_ptr<Workload> makePathfinder();      // PT, Rodinia
std::unique_ptr<Workload> makeSrad();            // SR, Rodinia
std::unique_ptr<Workload> makeStencil();         // ST, Parboil
std::unique_ptr<Workload> makeGraphColoring();   // GC, Pannotia
std::unique_ptr<Workload> makeFloydWarshall();   // FW, Pannotia
std::unique_ptr<Workload> makeMis();             // MS, Pannotia
std::unique_ptr<Workload> makeSssp();            // SP, Pannotia
std::unique_ptr<Workload> makeBlackScholes();    // BL, NVIDIA SDK
std::unique_ptr<Workload> makeVectorAdd();       // VA, NVIDIA SDK
std::unique_ptr<Workload> makeBitonicSort();     // BS, standalone
std::unique_ptr<Workload> makeMatrixMul();       // MM, standalone
std::unique_ptr<Workload> makeMatrixTranspose(); // MT, standalone
std::unique_ptr<Workload> makeCholesky();        // CH, standalone

} // namespace dscoh
