// Rodinia workload models (Table II: BP, BF, GA, HT, KM, LV, LU, NN, NW,
// PT, SR). Each model reproduces the benchmark's memory structure — array
// footprints at the paper's input sizes with 4-byte elements, CPU-produce ->
// GPU-consume phases, shared-memory staging where Table II says so — with
// iteration counts scaled down (see each info().scalingNote).
#include <algorithm>

#include "workloads/pattern_helpers.h"
#include "workloads/workload.h"

namespace dscoh {
namespace {

using patterns::csrTraverse;
using patterns::gridStrideWrite;
using patterns::kElem;
using patterns::produceArray;
using patterns::stencil2d;

constexpr std::uint32_t kTpb = 256;

template <typename T>
T pick(InputSize s, T small, T big)
{
    return s == InputSize::kSmall ? small : big;
}

std::uint32_t blocksFor(std::uint64_t threadsWanted,
                        std::uint32_t maxBlocks = 512)
{
    const std::uint64_t blocks = (threadsWanted + kTpb - 1) / kTpb;
    return static_cast<std::uint32_t>(
        std::clamp<std::uint64_t>(blocks, 1, maxBlocks));
}

// ---------------------------------------------------------------------------
// BP — Backpropagation. Input layer n (1536 / 10000), hidden layer 16 (the
// Rodinia default).
// CPU produces the input vector and the n x 64 weight matrix (input-major,
// so warp accesses are coalesced, as in the real kernel); the forward kernel
// stages inputs in shared memory and walks weight rows; the weight-adjust
// kernel re-reads and updates the weights.
// ---------------------------------------------------------------------------
class Backprop final : public Workload {
public:
    WorkloadInfo info() const override
    {
        return {"BP", "Backpropagation", "1536", "10000", "Rodinia", true,
                "hidden layer 16 (Rodinia default); single forward+adjust "
                "round instead of epochs"};
    }

    std::vector<ArraySpec> arrays(InputSize s) const override
    {
        const std::uint64_t n = pick<std::uint64_t>(s, 1536, 10000);
        return {{"input", n * kElem, true, true},
                {"weights", n * 16 * kElem, true, true},
                {"hidden", 16 * kElem, true, false},
                {"delta", n * kElem, true, false}};
    }

    CpuProgram cpuProduce(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint64_t n = pick<std::uint64_t>(s, 1536, 10000);
        CpuProgram prog;
        produceArray(prog, mem.at("input"), n * kElem, 6);
        produceArray(prog, mem.at("weights"), n * 16 * kElem, 6);
        return prog;
    }

    std::vector<KernelDesc> kernels(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint32_t n = pick<std::uint32_t>(s, 1536, 10000);
        const Addr input = mem.at("input");
        const Addr weights = mem.at("weights");
        const Addr hidden = mem.at("hidden");
        const Addr delta = mem.at("delta");

        KernelDesc forward;
        forward.name = "bp_layerforward";
        forward.blocks = blocksFor(n);
        forward.threadsPerBlock = kTpb;
        forward.usesSharedMemory = true;
        forward.body = [=](ThreadBuilder& t, std::uint32_t b, std::uint32_t th) {
            const std::uint32_t tid = b * kTpb + th;
            if (tid >= n)
                return;
            const Addr inVa = input + static_cast<Addr>(tid) * kElem;
            t.ldCheck(inVa, producedValue(inVa), kElem);
            t.smemSt(); // stage the input tile
            for (std::uint32_t h = 0; h < 16; ++h) {
                // Input-major weight layout: lane-consecutive tids read
                // consecutive elements (coalesced).
                const Addr w = weights + (static_cast<Addr>(h) * n + tid) * kElem;
                t.ldCheck(w, producedValue(w), kElem);
                t.smemLd();
                t.compute(2);
            }
            if (tid < 16)
                t.st(hidden + static_cast<Addr>(tid) * kElem, tid, kElem);
        };

        KernelDesc adjust;
        adjust.name = "bp_adjust_weights";
        adjust.blocks = blocksFor(n);
        adjust.threadsPerBlock = kTpb;
        adjust.usesSharedMemory = true;
        adjust.body = [=](ThreadBuilder& t, std::uint32_t b, std::uint32_t th) {
            const std::uint32_t tid = b * kTpb + th;
            if (tid >= n)
                return;
            t.st(delta + static_cast<Addr>(tid) * kElem, tid + 1, kElem);
            for (std::uint32_t h = 0; h < 16; h += 2) {
                const Addr w = weights + (static_cast<Addr>(h) * n + tid) * kElem;
                t.ld(w, kElem);
                t.smemLd();
                t.compute(2);
                t.st(w, tid ^ h, kElem);
            }
        };
        return {forward, adjust};
    }
};

// ---------------------------------------------------------------------------
// BF — Breadth-first search. CSR graph with 4096 / 6000 nodes, average
// degree 8. CPU produces the graph; three frontier levels traverse it.
// ---------------------------------------------------------------------------
class Bfs final : public Workload {
public:
    WorkloadInfo info() const override
    {
        return {"BF", "Breadth-first search", "4096", "6000", "Rodinia", false,
                "average degree fixed at 8; 3 frontier levels instead of "
                "graph diameter"};
    }

    static constexpr std::uint32_t kDegree = 8;

    std::vector<ArraySpec> arrays(InputSize s) const override
    {
        const std::uint64_t n = pick<std::uint64_t>(s, 4096, 6000);
        return {{"offsets", n * kElem, true, true},
                {"edges", n * kDegree * kElem, true, true},
                {"cost", n * kElem, true, false}};
    }

    CpuProgram cpuProduce(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint64_t n = pick<std::uint64_t>(s, 4096, 6000);
        CpuProgram prog;
        produceArray(prog, mem.at("offsets"), n * kElem, 4);
        produceArray(prog, mem.at("edges"), n * kDegree * kElem, 4);
        return prog;
    }

    std::vector<KernelDesc> kernels(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint32_t n = pick<std::uint32_t>(s, 4096, 6000);
        std::vector<KernelDesc> out;
        for (std::uint32_t level = 0; level < 3; ++level) {
            KernelDesc k;
            k.name = "bfs_level" + std::to_string(level);
            k.blocks = blocksFor(n);
            k.threadsPerBlock = kTpb;
            k.body = [=, offsets = mem.at("offsets"), edges = mem.at("edges"),
                      cost = mem.at("cost")](ThreadBuilder& t, std::uint32_t b,
                                             std::uint32_t th) {
                const std::uint32_t node = b * kTpb + th;
                csrTraverse(t, offsets, edges, cost, n, kDegree, node, 1);
                if (node < n)
                    t.st(cost + static_cast<Addr>(node) * kElem, level, kElem);
            };
            out.push_back(std::move(k));
        }
        return out;
    }
};

// ---------------------------------------------------------------------------
// GA — Gaussian elimination, 256x256 / 700x700 floats. Row-reduction passes
// where every thread re-reads the (hot, L2-resident) pivot row: enormous
// access counts against few misses, which is why the paper sees no
// miss-rate or speedup change for GA.
// ---------------------------------------------------------------------------
class Gaussian final : public Workload {
public:
    WorkloadInfo info() const override
    {
        return {"GA", "Gaussian elimination", "256x256", "700x700", "Rodinia",
                true, "8 reduction passes instead of n; pivot-row walk capped "
                      "at 32 elements per thread per pass"};
    }

    std::vector<ArraySpec> arrays(InputSize s) const override
    {
        const std::uint64_t n = pick<std::uint64_t>(s, 256, 700);
        return {{"matrix", n * n * kElem, true, true}};
    }

    CpuProgram cpuProduce(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint64_t n = pick<std::uint64_t>(s, 256, 700);
        CpuProgram prog;
        produceArray(prog, mem.at("matrix"), n * n * kElem, 8);
        return prog;
    }

    std::vector<KernelDesc> kernels(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint32_t n = pick<std::uint32_t>(s, 256, 700);
        const Addr matrix = mem.at("matrix");
        std::vector<KernelDesc> out;
        for (std::uint32_t pass = 0; pass < 8; ++pass) {
            KernelDesc k;
            k.name = "ga_fan" + std::to_string(pass);
            k.blocks = blocksFor(n);
            k.threadsPerBlock = kTpb;
            k.usesSharedMemory = true;
            const std::uint32_t pivot = pass * (n / 8);
            k.body = [=](ThreadBuilder& t, std::uint32_t b, std::uint32_t th) {
                const std::uint32_t row = b * kTpb + th;
                if (row >= n || row == pivot)
                    return;
                // Pivot row: the same addresses for every thread -> L2 hits.
                for (std::uint32_t j = 0; j < std::min(n, 32u); ++j) {
                    t.ld(matrix + (static_cast<Addr>(pivot) * n + j) * kElem,
                         kElem);
                    t.smemSt();
                }
                // Own row segment: one visit per pass.
                for (std::uint32_t j = 0; j < std::min(n, 32u); ++j) {
                    const Addr cell =
                        matrix + (static_cast<Addr>(row) * n + j) * kElem;
                    if (pass == 0)
                        t.ldCheck(cell, producedValue(cell), kElem);
                    else
                        t.ld(cell, kElem);
                    t.smemLd();
                    t.compute(2);
                    if (j % 4 == 0)
                        t.st(cell, row ^ j ^ pass, kElem);
                }
            };
            out.push_back(std::move(k));
        }
        return out;
    }
};

// ---------------------------------------------------------------------------
// HT — Hotspot, 64x64 / 512x512 thermal stencil over temp+power grids,
// staged through shared memory; 4 time steps.
// ---------------------------------------------------------------------------
class Hotspot final : public Workload {
public:
    WorkloadInfo info() const override
    {
        return {"HT", "Hotspot", "64x64", "512x512", "Rodinia", true,
                "4 time steps instead of 60; 5-point stencil tile staged in "
                "shared memory, updated in place"};
    }

    std::vector<ArraySpec> arrays(InputSize s) const override
    {
        const std::uint64_t n = pick<std::uint64_t>(s, 64, 512);
        return {{"temp", n * n * kElem, true, true},
                {"power", n * n * kElem, true, true}};
    }

    CpuProgram cpuProduce(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint64_t n = pick<std::uint64_t>(s, 64, 512);
        CpuProgram prog;
        produceArray(prog, mem.at("temp"), n * n * kElem, 1);
        produceArray(prog, mem.at("power"), n * n * kElem, 1);
        return prog;
    }

    std::vector<KernelDesc> kernels(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint32_t n = pick<std::uint32_t>(s, 64, 512);
        const Addr temp = mem.at("temp");
        const Addr power = mem.at("power");
        std::vector<KernelDesc> out;
        for (std::uint32_t step = 0; step < 4; ++step) {
            KernelDesc k;
            k.name = "hotspot_step" + std::to_string(step);
            const std::uint64_t cells = static_cast<std::uint64_t>(n) * n;
            k.blocks = blocksFor(cells / 4);
            k.threadsPerBlock = kTpb;
            k.usesSharedMemory = true;
            const std::uint32_t total = k.blocks * kTpb;
            // The tile update is computed in shared memory and written back
            // in place (one temperature grid, as the pyramid kernel's
            // per-launch output).
            k.body = [=](ThreadBuilder& t, std::uint32_t b, std::uint32_t th) {
                const std::uint32_t tid = b * kTpb + th;
                stencil2d(t, temp, temp, n, n, tid, total, 12, true, 4);
                // Power grid: one checked read per owned cell on step 0.
                for (std::uint64_t c = tid, done = 0; c < cells && done < 4;
                     c += total, ++done) {
                    const Addr p = power + c * kElem;
                    if (step == 0)
                        t.ldCheck(p, producedValue(p), kElem);
                    else
                        t.ld(p, kElem);
                }
            };
            out.push_back(std::move(k));
        }
        return out;
    }
};

// ---------------------------------------------------------------------------
// KM — K-means, 2000 / 5000 points x 34 features, 8 clusters, 4 iterations.
// Centroids live in shared memory; features are re-read every iteration, so
// the produce-phase benefit is amortized away (zero speedup in the paper).
// ---------------------------------------------------------------------------
class Kmeans final : public Workload {
public:
    WorkloadInfo info() const override
    {
        return {"KM", "K-means", "2000, 34 feat", "5000, 34 feat.", "Rodinia",
                true, "8 clusters, 4 iterations; every 2nd feature sampled in "
                      "the distance loop"};
    }

    std::vector<ArraySpec> arrays(InputSize s) const override
    {
        const std::uint64_t n = pick<std::uint64_t>(s, 2000, 5000);
        return {{"features", n * 34 * kElem, true, true},
                {"membership", n * kElem, true, false},
                {"centroids", 8 * 34 * kElem, true, true}};
    }

    CpuProgram cpuProduce(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint64_t n = pick<std::uint64_t>(s, 2000, 5000);
        CpuProgram prog;
        produceArray(prog, mem.at("features"), n * 34 * kElem, 8);
        produceArray(prog, mem.at("centroids"), 8 * 34 * kElem, 2);
        return prog;
    }

    std::vector<KernelDesc> kernels(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint32_t n = pick<std::uint32_t>(s, 2000, 5000);
        const Addr features = mem.at("features");
        const Addr membership = mem.at("membership");
        std::vector<KernelDesc> out;
        for (std::uint32_t iter = 0; iter < 4; ++iter) {
            KernelDesc k;
            k.name = "kmeans_iter" + std::to_string(iter);
            k.blocks = blocksFor(n);
            k.threadsPerBlock = kTpb;
            k.usesSharedMemory = true;
            k.body = [=](ThreadBuilder& t, std::uint32_t b, std::uint32_t th) {
                const std::uint32_t point = b * kTpb + th;
                if (point >= n)
                    return;
                for (std::uint32_t f = 0; f < 34; f += 2) {
                    const Addr va =
                        features + (static_cast<Addr>(point) * 34 + f) * kElem;
                    if (iter == 0)
                        t.ldCheck(va, producedValue(va), kElem);
                    else
                        t.ld(va, kElem);
                    t.smemLd(); // centroid tile in the scratchpad
                    t.compute(6);
                }
                t.st(membership + static_cast<Addr>(point) * kElem, iter,
                     kElem);
            };
            out.push_back(std::move(k));
        }
        return out;
    }
};

// ---------------------------------------------------------------------------
// LV — LavaMD, 2 / 4 boxes per dimension, 100 particles per box, 16 B per
// particle record (x, y, z, charge). Tiny footprint, neighbour interactions
// in shared memory: compute-bound, zero speedup.
// ---------------------------------------------------------------------------
class LavaMd final : public Workload {
public:
    WorkloadInfo info() const override
    {
        return {"LV", "LavaMD", "2", "4", "Rodinia", true,
                "100 particles/box, 16 B records; 10 neighbour interactions "
                "per particle staged in shared memory"};
    }

    static constexpr std::uint32_t kRecord = 16;

    std::vector<ArraySpec> arrays(InputSize s) const override
    {
        const std::uint64_t boxes1d = pick<std::uint64_t>(s, 2, 4);
        const std::uint64_t particles = boxes1d * boxes1d * boxes1d * 100;
        return {{"positions", particles * kRecord, true, true},
                {"forces", particles * kRecord, true, false}};
    }

    CpuProgram cpuProduce(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint64_t boxes1d = pick<std::uint64_t>(s, 2, 4);
        CpuProgram prog;
        produceArray(prog, mem.at("positions"),
                     boxes1d * boxes1d * boxes1d * 100 * kRecord, 6);
        return prog;
    }

    std::vector<KernelDesc> kernels(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint32_t boxes1d = pick<std::uint32_t>(s, 2, 4);
        const std::uint32_t particles = boxes1d * boxes1d * boxes1d * 100;
        const Addr pos = mem.at("positions");
        const Addr forces = mem.at("forces");
        KernelDesc k;
        k.name = "lavamd_interactions";
        k.blocks = blocksFor(particles);
        k.threadsPerBlock = kTpb;
        k.usesSharedMemory = true;
        k.body = [=](ThreadBuilder& t, std::uint32_t b, std::uint32_t th) {
            const std::uint32_t p = b * kTpb + th;
            if (p >= particles)
                return;
            for (std::uint32_t w = 0; w < 4; ++w) {
                const Addr va = pos + static_cast<Addr>(p) * kRecord + w * kElem;
                t.ldCheck(va, producedValue(va), kElem);
            }
            for (std::uint32_t nbr = 0; nbr < 10; ++nbr) {
                t.smemLd();
                t.compute(24);
            }
            for (std::uint32_t w = 0; w < 4; ++w)
                t.st(forces + static_cast<Addr>(p) * kRecord + w * kElem,
                     p ^ w, kElem);
        };
        return {k};
    }
};

// ---------------------------------------------------------------------------
// LU — LU decomposition, 256x256 / 512x512 floats (256 KB / 1 MB: both fit
// the GPU L2, so the pushed matrix stays resident). Diagonal-block reuse
// gives huge access counts (near-zero miss rate).
// ---------------------------------------------------------------------------
class Lud final : public Workload {
public:
    WorkloadInfo info() const override
    {
        return {"LU", "LU decomposition", "256x256", "512x512", "Rodinia",
                true, "6 block passes instead of n/16; perimeter walk capped "
                      "at 32 elements per thread"};
    }

    std::vector<ArraySpec> arrays(InputSize s) const override
    {
        const std::uint64_t n = pick<std::uint64_t>(s, 256, 512);
        return {{"matrix", n * n * kElem, true, true}};
    }

    CpuProgram cpuProduce(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint64_t n = pick<std::uint64_t>(s, 256, 512);
        CpuProgram prog;
        produceArray(prog, mem.at("matrix"), n * n * kElem, 6);
        return prog;
    }

    std::vector<KernelDesc> kernels(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint32_t n = pick<std::uint32_t>(s, 256, 512);
        const Addr matrix = mem.at("matrix");
        std::vector<KernelDesc> out;
        for (std::uint32_t pass = 0; pass < 6; ++pass) {
            KernelDesc k;
            k.name = "lud_pass" + std::to_string(pass);
            k.blocks = blocksFor(n);
            k.threadsPerBlock = kTpb;
            k.usesSharedMemory = true;
            const std::uint32_t diag = pass * (n / 6);
            k.body = [=](ThreadBuilder& t, std::uint32_t b, std::uint32_t th) {
                const std::uint32_t row = b * kTpb + th;
                if (row >= n)
                    return;
                // Diagonal block: shared across all threads -> hot in L2.
                for (std::uint32_t j = 0; j < 16; ++j) {
                    t.ld(matrix +
                             (static_cast<Addr>(diag) * n + diag + j) * kElem,
                         kElem);
                    t.smemSt();
                }
                // Own perimeter strip: one visit per pass.
                for (std::uint32_t j = 0; j < std::min(n, 32u); ++j) {
                    const Addr cell =
                        matrix + (static_cast<Addr>(row) * n + diag + j) * kElem;
                    if (pass == 0)
                        t.ldCheck(cell, producedValue(cell), kElem);
                    else
                        t.ld(cell, kElem);
                    t.smemLd();
                    t.compute(2);
                    if (j % 4 == 1)
                        t.st(cell, row + j, kElem);
                }
            };
            out.push_back(std::move(k));
        }
        return out;
    }
};

// ---------------------------------------------------------------------------
// NN — Nearest neighbor, 10691 / 42764 records of 64 B. One streaming pass
// computing a distance per record: the pure producer-consumer pattern,
// the paper's best case (>10% small-input speedup).
// ---------------------------------------------------------------------------
class NearestNeighbor final : public Workload {
public:
    WorkloadInfo info() const override
    {
        return {"NN", "Nearest neighbor", "10691", "42764", "Rodinia", false,
                "64 B records, single pass, distance per record"};
    }

    static constexpr std::uint32_t kRecord = 64;

    std::vector<ArraySpec> arrays(InputSize s) const override
    {
        const std::uint64_t n = pick<std::uint64_t>(s, 10691, 42764);
        return {{"records", n * kRecord, true, true},
                {"distances", n * kElem, true, false}};
    }

    CpuProgram cpuProduce(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint64_t n = pick<std::uint64_t>(s, 10691, 42764);
        CpuProgram prog;
        produceArray(prog, mem.at("records"), n * kRecord, 0);
        return prog;
    }

    std::vector<KernelDesc> kernels(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint32_t n = pick<std::uint32_t>(s, 10691, 42764);
        const Addr records = mem.at("records");
        const Addr distances = mem.at("distances");
        KernelDesc k;
        k.name = "nn_distances";
        k.blocks = blocksFor(n);
        k.threadsPerBlock = kTpb;
        k.body = [=](ThreadBuilder& t, std::uint32_t b, std::uint32_t th) {
            const std::uint32_t rec = b * kTpb + th;
            if (rec >= n)
                return;
            // Latitude/longitude + a few fields from each record.
            for (std::uint32_t w = 0; w < 8; ++w) {
                const Addr va =
                    records + static_cast<Addr>(rec) * kRecord + w * kElem;
                t.ldCheck(va, producedValue(va), kElem);
                t.compute(1);
            }
            t.st(distances + static_cast<Addr>(rec) * kElem, rec, kElem);
        };
        return {k};
    }
};

// ---------------------------------------------------------------------------
// NW — Needleman-Wunsch, 160x160 / 320x320 int DP matrix + reference matrix,
// processed in 4 wavefront passes through shared-memory tiles.
// ---------------------------------------------------------------------------
class Needle final : public Workload {
public:
    WorkloadInfo info() const override
    {
        return {"NW", "Needleman-Wunsch", "160x160", "320x320", "Rodinia",
                true, "4 wavefront passes over quadrant strips instead of "
                      "2n-1 anti-diagonals"};
    }

    std::vector<ArraySpec> arrays(InputSize s) const override
    {
        const std::uint64_t n = pick<std::uint64_t>(s, 160, 320);
        return {{"score", n * n * kElem, true, true},
                {"reference", n * n * kElem, true, true}};
    }

    CpuProgram cpuProduce(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint64_t n = pick<std::uint64_t>(s, 160, 320);
        CpuProgram prog;
        produceArray(prog, mem.at("score"), n * n * kElem, 4);
        produceArray(prog, mem.at("reference"), n * n * kElem, 4);
        return prog;
    }

    std::vector<KernelDesc> kernels(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint32_t n = pick<std::uint32_t>(s, 160, 320);
        const Addr score = mem.at("score");
        const Addr reference = mem.at("reference");
        const std::uint64_t cells = static_cast<std::uint64_t>(n) * n;
        std::vector<KernelDesc> out;
        for (std::uint32_t wave = 0; wave < 4; ++wave) {
            KernelDesc k;
            k.name = "nw_wave" + std::to_string(wave);
            k.blocks = blocksFor(cells / 16);
            k.threadsPerBlock = kTpb;
            k.usesSharedMemory = true;
            const std::uint32_t total = k.blocks * kTpb;
            const std::uint64_t begin = wave * (cells / 4);
            const std::uint64_t end = begin + cells / 4;
            k.body = [=](ThreadBuilder& t, std::uint32_t b, std::uint32_t th) {
                const std::uint32_t tid = b * kTpb + th;
                std::uint32_t done = 0;
                for (std::uint64_t c = begin + tid; c < end && done < 4;
                     c += total, ++done) {
                    const Addr ref = reference + c * kElem;
                    const Addr sc = score + c * kElem;
                    t.ldCheck(ref, producedValue(ref), kElem);
                    if (wave == 0)
                        t.ldCheck(sc, producedValue(sc), kElem);
                    else
                        t.ld(sc, kElem);
                    t.smemSt();
                    t.smemLd();
                    t.compute(3);
                    t.st(sc, c ^ wave, kElem);
                }
            };
            out.push_back(std::move(k));
        }
        return out;
    }
};

// ---------------------------------------------------------------------------
// PT — Pathfinder, 2500 / 5000 columns x 50 rows. The wall is generated on
// the GPU (the paper: "the CPU does not store any data that will later be
// used by GPU"), so direct store has nothing to push: zero speedup.
// ---------------------------------------------------------------------------
class Pathfinder final : public Workload {
public:
    WorkloadInfo info() const override
    {
        return {"PT", "Pathfinder", "2500", "5000", "Rodinia", true,
                "50 rows; wall initialized by a GPU kernel (no CPU-produced "
                "data, per the paper's PT discussion); 3 row sweeps"};
    }

    static constexpr std::uint32_t kRows = 50;

    std::vector<ArraySpec> arrays(InputSize s) const override
    {
        const std::uint64_t cols = pick<std::uint64_t>(s, 2500, 5000);
        return {{"wall", cols * kRows * kElem, true, false},
                {"result", cols * kElem, true, false}};
    }

    CpuProgram cpuProduce(InputSize, const ArrayMap&) const override
    {
        // Host-side setup without any stores to GPU-consumed data.
        CpuProgram prog;
        prog.push_back(cpuCompute(5000));
        return prog;
    }

    std::vector<KernelDesc> kernels(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint32_t cols = pick<std::uint32_t>(s, 2500, 5000);
        const Addr wall = mem.at("wall");
        const Addr resultArr = mem.at("result");
        std::vector<KernelDesc> out;

        KernelDesc init;
        init.name = "pt_init_wall";
        init.blocks = blocksFor(cols);
        init.threadsPerBlock = kTpb;
        init.usesSharedMemory = true;
        const std::uint32_t initTotal = init.blocks * kTpb;
        init.body = [=](ThreadBuilder& t, std::uint32_t b, std::uint32_t th) {
            const std::uint32_t tid = b * kTpb + th;
            gridStrideWrite(t, wall,
                            static_cast<std::uint64_t>(cols) * kRows * kElem,
                            tid, initTotal, 1, kRows);
        };
        out.push_back(std::move(init));

        for (std::uint32_t sweep = 0; sweep < 3; ++sweep) {
            KernelDesc k;
            k.name = "pt_sweep" + std::to_string(sweep);
            k.blocks = blocksFor(cols);
            k.threadsPerBlock = kTpb;
            k.usesSharedMemory = true;
            k.body = [=](ThreadBuilder& t, std::uint32_t b, std::uint32_t th) {
                const std::uint32_t col = b * kTpb + th;
                if (col >= cols)
                    return;
                for (std::uint32_t r = sweep * 16; r < sweep * 16 + 16; ++r) {
                    t.ld(wall + (static_cast<Addr>(r % kRows) * cols + col) *
                                    kElem,
                         kElem);
                    t.smemSt();
                    t.smemLd();
                    t.compute(2);
                }
                t.st(resultArr + static_cast<Addr>(col) * kElem, col ^ sweep,
                     kElem);
            };
            out.push_back(std::move(k));
        }
        return out;
    }
};

// ---------------------------------------------------------------------------
// SR — SRAD, 256x256 / 512x512 image + coefficient array, 6 iterations of
// the two stencil kernels through shared memory. With 4-byte floats both
// inputs fit the GPU L2, so only the first pass differs between schemes.
// ---------------------------------------------------------------------------
class Srad final : public Workload {
public:
    WorkloadInfo info() const override
    {
        return {"SR", "SRAD", "256x256", "512x512", "Rodinia", true,
                "6 iterations of srad1+srad2; stencils staged in shared "
                "memory, 4 cells per thread"};
    }

    std::vector<ArraySpec> arrays(InputSize s) const override
    {
        const std::uint64_t n = pick<std::uint64_t>(s, 256, 512);
        return {{"image", n * n * kElem, true, true},
                {"coeff", n * n * kElem, true, false}};
    }

    CpuProgram cpuProduce(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint64_t n = pick<std::uint64_t>(s, 256, 512);
        CpuProgram prog;
        produceArray(prog, mem.at("image"), n * n * kElem, 10);
        return prog;
    }

    std::vector<KernelDesc> kernels(InputSize s, const ArrayMap& mem) const override
    {
        const std::uint32_t n = pick<std::uint32_t>(s, 256, 512);
        const Addr image = mem.at("image");
        const Addr coeff = mem.at("coeff");
        std::vector<KernelDesc> out;
        for (std::uint32_t iter = 0; iter < 6; ++iter) {
            KernelDesc k1;
            k1.name = "srad1_iter" + std::to_string(iter);
            const std::uint64_t cells = static_cast<std::uint64_t>(n) * n;
            k1.blocks = blocksFor(cells / 4);
            k1.threadsPerBlock = kTpb;
            k1.usesSharedMemory = true;
            const std::uint32_t total = k1.blocks * kTpb;
            k1.body = [=](ThreadBuilder& t, std::uint32_t b, std::uint32_t th) {
                const std::uint32_t tid = b * kTpb + th;
                stencil2d(t, image, coeff, n, n, tid, total, 8, true, 4);
            };
            out.push_back(std::move(k1));

            KernelDesc k2;
            k2.name = "srad2_iter" + std::to_string(iter);
            k2.blocks = blocksFor(cells / 4);
            k2.threadsPerBlock = kTpb;
            k2.usesSharedMemory = true;
            k2.body = [=](ThreadBuilder& t, std::uint32_t b, std::uint32_t th) {
                const std::uint32_t tid = b * kTpb + th;
                stencil2d(t, coeff, image, n, n, tid, total, 8, true, 4);
            };
            out.push_back(std::move(k2));
        }
        return out;
    }
};

} // namespace

std::unique_ptr<Workload> makeBackprop() { return std::make_unique<Backprop>(); }
std::unique_ptr<Workload> makeBfs() { return std::make_unique<Bfs>(); }
std::unique_ptr<Workload> makeGaussian() { return std::make_unique<Gaussian>(); }
std::unique_ptr<Workload> makeHotspot() { return std::make_unique<Hotspot>(); }
std::unique_ptr<Workload> makeKmeans() { return std::make_unique<Kmeans>(); }
std::unique_ptr<Workload> makeLavaMd() { return std::make_unique<LavaMd>(); }
std::unique_ptr<Workload> makeLud() { return std::make_unique<Lud>(); }
std::unique_ptr<Workload> makeNearestNeighbor()
{
    return std::make_unique<NearestNeighbor>();
}
std::unique_ptr<Workload> makeNeedle() { return std::make_unique<Needle>(); }
std::unique_ptr<Workload> makePathfinder()
{
    return std::make_unique<Pathfinder>();
}
std::unique_ptr<Workload> makeSrad() { return std::make_unique<Srad>(); }

} // namespace dscoh
