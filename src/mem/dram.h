// Bank-aware DRAM timing model (Table I: 2 GB, 1 channel, 2 ranks, 8 banks
// @ 1 GHz). Open-page row-buffer policy with FCFS per-bank queues and a
// shared data bus. Latencies are expressed in simulator ticks (CPU cycles at
// 2 GHz, i.e. 2 ticks per DRAM cycle).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/backing_store.h"
#include "sim/object_pool.h"
#include "sim/sim_object.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace dscoh {

struct DramTiming {
    // All in ticks. Defaults approximate DDR3-2133-ish timings at 1 GHz
    // (14 DRAM cycles each = 28 ticks).
    Tick tRcd = 28;  ///< row activate to column access
    Tick tCas = 28;  ///< column access to first data
    Tick tRp = 28;   ///< precharge
    Tick tBurst = 8; ///< data transfer of one 128 B line on the bus
    std::uint32_t ranks = 2;
    std::uint32_t banksPerRank = 8;
    std::uint32_t rowBytes = 2048; ///< row-buffer size per bank
};

/// DRAM access completion callback: invoked at the tick the data is available
/// (reads) or globally visible (writes).
using DramCallback = std::function<void()>;

/// Abstract memory channel interface: what the coherence side needs from
/// memory. Implemented by a single Dram channel and by DramPool.
class MemoryInterface {
public:
    virtual ~MemoryInterface() = default;
    virtual void read(Addr addr, DramCallback done) = 0;
    virtual void write(Addr addr, const DataBlock& data,
                       DramCallback done = nullptr) = 0;
    virtual void writeMasked(Addr addr, const DataBlock& data,
                             const ByteMask& mask,
                             DramCallback done = nullptr) = 0;
};

class Dram final : public SimObject, public MemoryInterface {
public:
    Dram(std::string name, SimContext& ctx, BackingStore& store,
         const DramTiming& timing = DramTiming{});

    /// Queues a line read. @p done fires when data is ready; read the bytes
    /// from the backing store at that point.
    void read(Addr addr, DramCallback done) override;

    /// Queues a full-line write of @p data.
    void write(Addr addr, const DataBlock& data,
               DramCallback done = nullptr) override;

    /// Queues a masked (partial-line) write.
    void writeMasked(Addr addr, const DataBlock& data, const ByteMask& mask,
                     DramCallback done = nullptr) override;

    void regStats(StatRegistry& registry) override;

    std::uint32_t bankCount() const
    {
        return timing_.ranks * timing_.banksPerRank;
    }

    /// Bank/bus timing state can legitimately reach into the future at a
    /// safe point (the last access reserves the bus past its completion
    /// event), so it is serialized rather than asserted empty.
    void snapSave(snap::SnapWriter& w) const override;
    void snapRestore(snap::SnapReader& r) override;

private:
    struct Bank {
        Tick readyAt = 0;   ///< when the bank can accept the next access
        bool rowOpen = false;
        std::uint64_t openRow = 0;
    };

    /// A queued write's payload (line data + mask + completion callback is
    /// far too big for an inline event capture), parked in a pooled slot so
    /// the completion event captures only the slot pointer.
    struct PendingWrite {
        Addr addr = 0;
        DataBlock data;
        ByteMask mask;
        DramCallback done;
    };

    std::uint32_t bankOf(Addr addr) const;
    std::uint64_t rowOf(Addr addr) const;

    /// Computes this access's completion tick and updates bank/bus state.
    Tick scheduleAccess(Addr addr);

    BackingStore& store_;
    DramTiming timing_;
    std::vector<Bank> banks_;
    Tick busFreeAt_ = 0;
    ObjectPool<PendingWrite> writePool_;

    Counter reads_;
    Counter writes_;
    Counter rowHits_;
    Counter rowMisses_;
    Histogram latency_{32, 32};
};

} // namespace dscoh
