// A pool of independent DRAM channels with line-interleaved routing.
//
// Table I specifies one channel; the pool exists for the bandwidth
//-sensitivity ablation (bench/ablation_channels): several of the paper's
// effects are DRAM-bandwidth-bound, and adding channels shows which part of
// direct store's win is latency and which is bandwidth relief.
#pragma once

#include <memory>
#include <stdexcept>
#include <vector>

#include "mem/dram.h"

namespace dscoh {

class DramPool final : public MemoryInterface {
public:
    DramPool(const std::string& name, SimContext& ctx, BackingStore& store,
             const DramTiming& timing, std::uint32_t channels)
    {
        if (channels == 0 || (channels & (channels - 1)) != 0)
            throw std::invalid_argument("channel count must be a power of two");
        for (std::uint32_t c = 0; c < channels; ++c)
            channels_.push_back(std::make_unique<Dram>(
                name + ".ch" + std::to_string(c), ctx, store, timing));
    }

    std::uint32_t channels() const
    {
        return static_cast<std::uint32_t>(channels_.size());
    }

    /// The channel owning @p addr (line-interleaved above the GPU-slice
    /// bits so slices spread evenly over channels).
    Dram& channelOf(Addr addr)
    {
        const std::size_t c = static_cast<std::size_t>(
            lineNumber(addr) & (channels_.size() - 1));
        return *channels_[c];
    }

    void read(Addr addr, DramCallback done) override
    {
        channelOf(addr).read(addr, std::move(done));
    }
    void write(Addr addr, const DataBlock& data,
               DramCallback done = nullptr) override
    {
        channelOf(addr).write(addr, data, std::move(done));
    }
    void writeMasked(Addr addr, const DataBlock& data, const ByteMask& mask,
                     DramCallback done = nullptr) override
    {
        channelOf(addr).writeMasked(addr, data, mask, std::move(done));
    }

    void regStats(StatRegistry& registry)
    {
        for (auto& ch : channels_)
            ch->regStats(registry);
    }

    void snapSave(snap::SnapWriter& w) const
    {
        for (const auto& ch : channels_)
            ch->snapSave(w);
    }
    void snapRestore(snap::SnapReader& r)
    {
        for (auto& ch : channels_)
            ch->snapRestore(r);
    }

    /// Direct channel access for tests.
    Dram& channel(std::size_t i) { return *channels_.at(i); }

private:
    std::vector<std::unique_ptr<Dram>> channels_;
};

} // namespace dscoh
