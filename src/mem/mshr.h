// Miss Status Holding Registers: track outstanding line-granularity misses
// and merge secondary requests into the primary one.
#pragma once

#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/types.h"

namespace dscoh {

template <typename TargetT>
class MshrFile {
public:
    struct Entry {
        Addr base = 0;
        Tick allocatedAt = 0; ///< set by the owner; spans MSHR occupancy
        std::vector<TargetT> targets;
    };

    explicit MshrFile(std::size_t capacity) : capacity_(capacity) {}

    bool full() const { return entries_.size() >= capacity_; }
    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }

    /// Entry for @p addr's line, or nullptr if no miss is outstanding.
    Entry* find(Addr addr)
    {
        const auto it = entries_.find(lineAlign(addr));
        return it == entries_.end() ? nullptr : &it->second;
    }

    /// Allocates an entry for @p addr's line. Precondition: !full() and no
    /// existing entry for the line.
    Entry& allocate(Addr addr)
    {
        assert(!full());
        const Addr base = lineAlign(addr);
        auto [it, inserted] = entries_.try_emplace(base);
        assert(inserted && "line already has an outstanding miss");
        it->second.base = base;
        return it->second;
    }

    /// Removes the entry and returns its merged targets.
    std::vector<TargetT> release(Addr addr)
    {
        const auto it = entries_.find(lineAlign(addr));
        assert(it != entries_.end());
        std::vector<TargetT> targets = std::move(it->second.targets);
        entries_.erase(it);
        return targets;
    }

private:
    std::size_t capacity_;
    std::unordered_map<Addr, Entry> entries_;
};

} // namespace dscoh
