// Generic set-associative cache array with pluggable replacement and real
// data storage. Controllers own the protocol; the array owns geometry,
// lookup, and victim selection.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "mem/data_block.h"
#include "mem/replacement.h"
#include "sim/types.h"
#include "snap/snapshot.h"

namespace dscoh {

struct CacheGeometry {
    std::uint64_t sizeBytes = 0;
    std::uint32_t ways = 1;
    /// Line-number bits consumed *below* the set index. GPU L2 slices are
    /// interleaved on the low line-number bits, so a slice's set index starts
    /// above those bits.
    std::uint32_t setShift = 0;
    ReplacementKind replacement = ReplacementKind::kLru;
    std::uint64_t replacementSeed = 1;

    std::uint32_t sets() const
    {
        const std::uint64_t lines = sizeBytes / kLineSize;
        if (lines == 0 || lines % ways != 0)
            throw std::invalid_argument("cache size not divisible into ways");
        return static_cast<std::uint32_t>(lines / ways);
    }
};

template <typename MetaT>
class CacheArray {
public:
    struct Line {
        Addr base = 0; ///< line-aligned physical address
        bool valid = false;
        MetaT meta{};
        DataBlock data;
    };

    explicit CacheArray(const CacheGeometry& geom)
        : geom_(geom),
          sets_(geom.sets()),
          lines_(static_cast<std::size_t>(sets_) * geom.ways),
          policy_(ReplacementPolicy::create(geom.replacement, sets_, geom.ways,
                                            geom.replacementSeed))
    {
        if ((sets_ & (sets_ - 1)) != 0)
            throw std::invalid_argument("set count must be a power of two");
    }

    std::uint32_t sets() const { return sets_; }
    std::uint32_t ways() const { return geom_.ways; }
    std::uint64_t sizeBytes() const { return geom_.sizeBytes; }

    std::uint32_t setIndex(Addr a) const
    {
        return static_cast<std::uint32_t>((lineNumber(a) >> geom_.setShift) &
                                          (sets_ - 1));
    }

    /// Finds the valid line holding @p a, or nullptr. Does not touch LRU.
    Line* find(Addr a)
    {
        const Addr base = lineAlign(a);
        const std::uint32_t set = setIndex(a);
        for (std::uint32_t w = 0; w < geom_.ways; ++w) {
            Line& line = at(set, w);
            if (line.valid && line.base == base)
                return &line;
        }
        return nullptr;
    }

    const Line* find(Addr a) const
    {
        return const_cast<CacheArray*>(this)->find(a);
    }

    /// Marks a hit on the line holding @p a for the replacement policy.
    void touch(Addr a)
    {
        const Addr base = lineAlign(a);
        const std::uint32_t set = setIndex(a);
        for (std::uint32_t w = 0; w < geom_.ways; ++w) {
            if (at(set, w).valid && at(set, w).base == base) {
                policy_->touch(set, w);
                return;
            }
        }
    }

    /// Returns an invalid way in @p a's set, or nullptr if the set is full.
    Line* findFreeWay(Addr a)
    {
        const std::uint32_t set = setIndex(a);
        for (std::uint32_t w = 0; w < geom_.ways; ++w)
            if (!at(set, w).valid)
                return &at(set, w);
        return nullptr;
    }

    /// Selects a victim among valid lines in @p a's set for which
    /// @p evictable returns true. Returns nullptr when nothing is evictable
    /// (every way pinned by an in-flight transaction).
    Line* selectVictim(Addr a, const std::function<bool(const Line&)>& evictable)
    {
        const std::uint32_t set = setIndex(a);
        std::vector<bool> candidates(geom_.ways, false);
        bool any = false;
        for (std::uint32_t w = 0; w < geom_.ways; ++w) {
            Line& line = at(set, w);
            if (line.valid && evictable(line)) {
                candidates[w] = true;
                any = true;
            }
        }
        if (!any)
            return nullptr;
        return &at(set, policy_->victim(set, candidates));
    }

    /// Installs @p a into the given (invalid) way and returns the line.
    Line& install(Line& way, Addr a)
    {
        assert(!way.valid);
        way.base = lineAlign(a);
        way.valid = true;
        way.meta = MetaT{};
        const std::uint32_t set = setIndex(a);
        policy_->fill(set, wayOf(set, way));
        return way;
    }

    void invalidate(Line& line)
    {
        line.valid = false;
        line.meta = MetaT{};
    }

    /// Iterates over every valid line (for invariant checks and flushes).
    void forEachValid(const std::function<void(Line&)>& fn)
    {
        for (auto& line : lines_)
            if (line.valid)
                fn(line);
    }

    /// Counts valid lines in @p a's set matching @p pred.
    std::uint32_t countInSet(Addr a, const std::function<bool(const Line&)>& pred) const
    {
        const std::uint32_t set =
            const_cast<CacheArray*>(this)->setIndex(a);
        std::uint32_t n = 0;
        for (std::uint32_t w = 0; w < geom_.ways; ++w) {
            const Line& line =
                lines_[static_cast<std::size_t>(set) * geom_.ways + w];
            if (line.valid && pred(line))
                ++n;
        }
        return n;
    }

    /// Number of valid lines (for occupancy stats).
    std::size_t validLines() const
    {
        std::size_t n = 0;
        for (const auto& line : lines_)
            n += line.valid ? 1 : 0;
        return n;
    }

    /// Serializes every way in index order (tag, data, caller-encoded meta)
    /// plus the replacement-policy state. Geometry is config-derived;
    /// restore runs on an identically configured array.
    void snapSave(snap::SnapWriter& w,
                  const std::function<void(snap::SnapWriter&, const MetaT&)>&
                      metaSave) const
    {
        for (const Line& line : lines_) {
            w.u8(line.valid ? 1 : 0);
            if (!line.valid)
                continue;
            w.u64(line.base);
            metaSave(w, line.meta);
            w.bytes(line.data.data(), kLineSize);
        }
        policy_->snapSave(w);
    }

    void snapRestore(snap::SnapReader& r,
                     const std::function<void(snap::SnapReader&, MetaT&)>&
                         metaRestore)
    {
        for (Line& line : lines_) {
            line.valid = r.u8() != 0;
            line.meta = MetaT{};
            if (!line.valid) {
                line.base = 0;
                continue;
            }
            line.base = r.u64();
            metaRestore(r, line.meta);
            r.bytes(line.data.data(), kLineSize);
        }
        policy_->snapRestore(r);
    }

private:
    Line& at(std::uint32_t set, std::uint32_t way)
    {
        return lines_[static_cast<std::size_t>(set) * geom_.ways + way];
    }

    std::uint32_t wayOf(std::uint32_t set, const Line& line) const
    {
        const auto idx = static_cast<std::size_t>(&line - lines_.data());
        return static_cast<std::uint32_t>(idx - static_cast<std::size_t>(set) * geom_.ways);
    }

    CacheGeometry geom_;
    std::uint32_t sets_;
    std::vector<Line> lines_;
    std::unique_ptr<ReplacementPolicy> policy_;
};

} // namespace dscoh
