// Cache replacement policies.
//
// A policy owns its own per-set/per-way state; the CacheArray informs it of
// touches and fills and asks it for a victim among the candidate ways (a mask
// excludes ways that are pinned by in-flight transactions).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "sim/types.h"
#include "snap/snapshot.h"

namespace dscoh {

enum class ReplacementKind { kLru, kTreePlru, kRandom };

/// Parses "lru" / "tree-plru" / "random"; throws std::invalid_argument.
ReplacementKind replacementKindFromString(const std::string& s);
std::string to_string(ReplacementKind k);

class ReplacementPolicy {
public:
    ReplacementPolicy(std::uint32_t sets, std::uint32_t ways)
        : sets_(sets), ways_(ways)
    {
    }
    virtual ~ReplacementPolicy() = default;

    ReplacementPolicy(const ReplacementPolicy&) = delete;
    ReplacementPolicy& operator=(const ReplacementPolicy&) = delete;

    virtual void touch(std::uint32_t set, std::uint32_t way) = 0;
    virtual void fill(std::uint32_t set, std::uint32_t way) { touch(set, way); }

    /// Chooses a victim way among those with candidates[way] == true.
    /// Precondition: at least one candidate.
    virtual std::uint32_t victim(std::uint32_t set,
                                 const std::vector<bool>& candidates) = 0;

    std::uint32_t sets() const { return sets_; }
    std::uint32_t ways() const { return ways_; }

    /// Victim choice is part of deterministic machine state (LRU stamps,
    /// PLRU bits, the random policy's RNG), so it checkpoints with the
    /// cache array that owns the policy.
    virtual void snapSave(snap::SnapWriter& w) const
    {
        static_cast<void>(w);
    }
    virtual void snapRestore(snap::SnapReader& r) { static_cast<void>(r); }

    static std::unique_ptr<ReplacementPolicy> create(ReplacementKind kind,
                                                     std::uint32_t sets,
                                                     std::uint32_t ways,
                                                     std::uint64_t seed = 1);

protected:
    std::uint32_t sets_;
    std::uint32_t ways_;
};

/// True LRU via a monotone timestamp per way.
class LruPolicy final : public ReplacementPolicy {
public:
    LruPolicy(std::uint32_t sets, std::uint32_t ways)
        : ReplacementPolicy(sets, ways), stamp_(static_cast<std::size_t>(sets) * ways, 0)
    {
    }

    void touch(std::uint32_t set, std::uint32_t way) override
    {
        stamp_[index(set, way)] = ++clock_;
    }

    std::uint32_t victim(std::uint32_t set,
                         const std::vector<bool>& candidates) override;

    void snapSave(snap::SnapWriter& w) const override;
    void snapRestore(snap::SnapReader& r) override;

private:
    std::size_t index(std::uint32_t set, std::uint32_t way) const
    {
        return static_cast<std::size_t>(set) * ways_ + way;
    }
    std::vector<std::uint64_t> stamp_;
    std::uint64_t clock_ = 0;
};

/// Tree pseudo-LRU. Ways must be a power of two; falls back to scanning when
/// the PLRU-chosen way is not a candidate.
class TreePlruPolicy final : public ReplacementPolicy {
public:
    TreePlruPolicy(std::uint32_t sets, std::uint32_t ways);

    void touch(std::uint32_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint32_t set,
                         const std::vector<bool>& candidates) override;

    void snapSave(snap::SnapWriter& w) const override;
    void snapRestore(snap::SnapReader& r) override;

private:
    // One bit per internal tree node, (ways - 1) nodes per set.
    std::vector<bool> bits_;
    std::uint32_t nodesPerSet_;
};

/// Uniform random victim among candidates (deterministic given the seed).
class RandomPolicy final : public ReplacementPolicy {
public:
    RandomPolicy(std::uint32_t sets, std::uint32_t ways, std::uint64_t seed)
        : ReplacementPolicy(sets, ways), rng_(seed)
    {
    }

    void touch(std::uint32_t, std::uint32_t) override {}
    std::uint32_t victim(std::uint32_t set,
                         const std::vector<bool>& candidates) override;

    void snapSave(snap::SnapWriter& w) const override;
    void snapRestore(snap::SnapReader& r) override;

private:
    Rng rng_;
};

} // namespace dscoh
