// Address interleaving helpers: maps a physical line address to the GPU L2
// slice that owns it. Slices own disjoint address sets, so a line has exactly
// one possible GPU-side coherent cache.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "sim/types.h"

namespace dscoh {

class SliceInterleave {
public:
    explicit SliceInterleave(std::uint32_t slices) : slices_(slices)
    {
        if (slices == 0 || (slices & (slices - 1)) != 0)
            throw std::invalid_argument("slice count must be a power of two");
        std::uint32_t bits = 0;
        for (std::uint32_t s = slices; s > 1; s >>= 1)
            ++bits;
        bits_ = bits;
    }

    std::uint32_t slices() const { return slices_; }
    /// Line-number bits consumed by the slice index (feeds CacheGeometry::setShift).
    std::uint32_t bits() const { return bits_; }

    std::uint32_t sliceOf(Addr addr) const
    {
        return static_cast<std::uint32_t>(lineNumber(addr) & (slices_ - 1));
    }

private:
    std::uint32_t slices_;
    std::uint32_t bits_ = 0;
};

} // namespace dscoh
