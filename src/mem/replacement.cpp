#include "mem/replacement.h"

#include <cassert>
#include <stdexcept>

namespace dscoh {

ReplacementKind replacementKindFromString(const std::string& s)
{
    if (s == "lru")
        return ReplacementKind::kLru;
    if (s == "tree-plru")
        return ReplacementKind::kTreePlru;
    if (s == "random")
        return ReplacementKind::kRandom;
    throw std::invalid_argument("unknown replacement policy: " + s);
}

std::string to_string(ReplacementKind k)
{
    switch (k) {
    case ReplacementKind::kLru:
        return "lru";
    case ReplacementKind::kTreePlru:
        return "tree-plru";
    case ReplacementKind::kRandom:
        return "random";
    }
    return "?";
}

std::unique_ptr<ReplacementPolicy> ReplacementPolicy::create(ReplacementKind kind,
                                                             std::uint32_t sets,
                                                             std::uint32_t ways,
                                                             std::uint64_t seed)
{
    switch (kind) {
    case ReplacementKind::kLru:
        return std::make_unique<LruPolicy>(sets, ways);
    case ReplacementKind::kTreePlru:
        return std::make_unique<TreePlruPolicy>(sets, ways);
    case ReplacementKind::kRandom:
        return std::make_unique<RandomPolicy>(sets, ways, seed);
    }
    throw std::invalid_argument("unknown replacement kind");
}

std::uint32_t LruPolicy::victim(std::uint32_t set, const std::vector<bool>& candidates)
{
    assert(candidates.size() == ways_);
    std::uint32_t best = ways_;
    std::uint64_t bestStamp = ~0ull;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!candidates[w])
            continue;
        if (stamp_[index(set, w)] <= bestStamp) {
            // "<=" + forward scan -> highest-index oldest way; any fixed rule
            // works, we just need determinism.
            if (stamp_[index(set, w)] < bestStamp || best == ways_) {
                best = w;
                bestStamp = stamp_[index(set, w)];
            }
        }
    }
    assert(best < ways_ && "victim() requires at least one candidate");
    return best;
}

TreePlruPolicy::TreePlruPolicy(std::uint32_t sets, std::uint32_t ways)
    : ReplacementPolicy(sets, ways), nodesPerSet_(ways - 1)
{
    if (ways < 2 || (ways & (ways - 1)) != 0)
        throw std::invalid_argument("tree-plru requires power-of-two ways >= 2");
    bits_.resize(static_cast<std::size_t>(sets) * nodesPerSet_, false);
}

void TreePlruPolicy::touch(std::uint32_t set, std::uint32_t way)
{
    // Walk from root to leaf; at each node, point the bit *away* from the
    // touched way.
    const std::size_t base = static_cast<std::size_t>(set) * nodesPerSet_;
    std::uint32_t node = 0;
    std::uint32_t lo = 0;
    std::uint32_t hi = ways_;
    while (hi - lo > 1) {
        const std::uint32_t mid = lo + (hi - lo) / 2;
        const bool right = way >= mid;
        bits_[base + node] = !right; // bit points at the LRU half
        node = 2 * node + (right ? 2 : 1);
        (right ? lo : hi) = mid;
    }
}

std::uint32_t TreePlruPolicy::victim(std::uint32_t set,
                                     const std::vector<bool>& candidates)
{
    assert(candidates.size() == ways_);
    const std::size_t base = static_cast<std::size_t>(set) * nodesPerSet_;
    std::uint32_t node = 0;
    std::uint32_t lo = 0;
    std::uint32_t hi = ways_;
    while (hi - lo > 1) {
        const std::uint32_t mid = lo + (hi - lo) / 2;
        const bool right = bits_[base + node];
        node = 2 * node + (right ? 2 : 1);
        (right ? lo : hi) = mid;
    }
    if (candidates[lo])
        return lo;
    // PLRU choice is pinned: fall back to the first candidate way.
    for (std::uint32_t w = 0; w < ways_; ++w)
        if (candidates[w])
            return w;
    assert(false && "victim() requires at least one candidate");
    return 0;
}

void LruPolicy::snapSave(snap::SnapWriter& w) const
{
    w.u64(clock_);
    for (const std::uint64_t s : stamp_)
        w.u64(s);
}

void LruPolicy::snapRestore(snap::SnapReader& r)
{
    clock_ = r.u64();
    for (auto& s : stamp_)
        s = r.u64();
}

void TreePlruPolicy::snapSave(snap::SnapWriter& w) const
{
    for (std::size_t i = 0; i < bits_.size(); i += 8) {
        std::uint8_t packed = 0;
        for (std::size_t b = 0; b < 8 && i + b < bits_.size(); ++b)
            packed |= static_cast<std::uint8_t>((bits_[i + b] ? 1u : 0u) << b);
        w.u8(packed);
    }
}

void TreePlruPolicy::snapRestore(snap::SnapReader& r)
{
    for (std::size_t i = 0; i < bits_.size(); i += 8) {
        const std::uint8_t packed = r.u8();
        for (std::size_t b = 0; b < 8 && i + b < bits_.size(); ++b)
            bits_[i + b] = ((packed >> b) & 1u) != 0;
    }
}

void RandomPolicy::snapSave(snap::SnapWriter& w) const
{
    for (const std::uint64_t word : rng_.state())
        w.u64(word);
}

void RandomPolicy::snapRestore(snap::SnapReader& r)
{
    std::array<std::uint64_t, 4> s;
    for (auto& word : s)
        word = r.u64();
    rng_.setState(s);
}

std::uint32_t RandomPolicy::victim(std::uint32_t set, const std::vector<bool>& candidates)
{
    static_cast<void>(set);
    assert(candidates.size() == ways_);
    std::uint32_t n = 0;
    for (std::uint32_t w = 0; w < ways_; ++w)
        n += candidates[w] ? 1u : 0u;
    assert(n > 0 && "victim() requires at least one candidate");
    std::uint64_t pick = rng_.below(n);
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!candidates[w])
            continue;
        if (pick == 0)
            return w;
        --pick;
    }
    return 0;
}

} // namespace dscoh
