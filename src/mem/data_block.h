// A cache line's worth of real data bytes.
//
// The simulator is functional as well as timing-accurate: caches and messages
// carry actual bytes so the test suite can verify that the GPU observes
// exactly the values the CPU produced, under either coherence scheme.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <cstring>

#include "sim/types.h"

namespace dscoh {

class DataBlock {
public:
    DataBlock() { bytes_.fill(0); }

    /// Writes @p size bytes of @p value (little-endian) at @p offset.
    void write(std::uint32_t offset, std::uint64_t value, std::uint32_t size)
    {
        assert(offset + size <= kLineSize);
        assert(size <= 8);
        std::memcpy(bytes_.data() + offset, &value, size);
    }

    /// Reads @p size bytes at @p offset as a little-endian integer.
    std::uint64_t read(std::uint32_t offset, std::uint32_t size) const
    {
        assert(offset + size <= kLineSize);
        assert(size <= 8);
        std::uint64_t value = 0;
        std::memcpy(&value, bytes_.data() + offset, size);
        return value;
    }

    /// Copies a byte range from another block (used for partial-line merges).
    void merge(const DataBlock& src, std::uint32_t offset, std::uint32_t size)
    {
        assert(offset + size <= kLineSize);
        std::memcpy(bytes_.data() + offset, src.bytes_.data() + offset, size);
    }

    void copyFrom(const DataBlock& src) { bytes_ = src.bytes_; }

    bool operator==(const DataBlock& other) const { return bytes_ == other.bytes_; }

    const std::uint8_t* data() const { return bytes_.data(); }
    std::uint8_t* data() { return bytes_.data(); }

private:
    std::array<std::uint8_t, kLineSize> bytes_;
};

/// Byte-validity mask for a line under construction (write-combining buffers
/// and partial-line direct stores). One bit per byte.
class ByteMask {
public:
    void set(std::uint32_t offset, std::uint32_t size)
    {
        assert(offset + size <= kLineSize);
        for (std::uint32_t i = 0; i < size; ++i)
            bits_[(offset + i) >> 6] |= (1ull << ((offset + i) & 63));
    }

    bool full() const
    {
        for (const auto w : bits_)
            if (w != ~0ull)
                return false;
        return true;
    }

    bool empty() const
    {
        for (const auto w : bits_)
            if (w != 0)
                return false;
        return true;
    }

    bool test(std::uint32_t offset) const
    {
        assert(offset < kLineSize);
        return (bits_[offset >> 6] & (1ull << (offset & 63))) != 0;
    }

    std::uint32_t count() const
    {
        std::uint32_t n = 0;
        for (const auto w : bits_)
            n += static_cast<std::uint32_t>(__builtin_popcountll(w));
        return n;
    }

    void clear() { bits_ = {}; }

    /// Ors another mask's bits into this one (mirror/validity tracking).
    void merge(const ByteMask& other)
    {
        for (std::size_t i = 0; i < bits_.size(); ++i)
            bits_[i] |= other.bits_[i];
    }

    /// Merges masked bytes of @p src into @p dst.
    void apply(DataBlock& dst, const DataBlock& src) const
    {
        for (std::uint32_t i = 0; i < kLineSize; ++i)
            if (test(i))
                dst.data()[i] = src.data()[i];
    }

    /// Raw word access for serialization.
    static constexpr std::size_t kWords = kLineSize / 64;
    std::uint64_t word(std::size_t i) const { return bits_[i]; }
    void setWord(std::size_t i, std::uint64_t v) { bits_[i] = v; }

private:
    std::array<std::uint64_t, kLineSize / 64> bits_{};
};

} // namespace dscoh
