// Sparse functional memory backing the whole simulated physical address
// space. DRAM reads/writes go through here, so data values survive cache
// evictions and the functional-correctness tests can compare end states.
#pragma once

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "mem/data_block.h"
#include "sim/types.h"
#include "snap/snapshot.h"

namespace dscoh {

class BackingStore {
public:
    explicit BackingStore(std::uint64_t capacityBytes)
        : capacity_(capacityBytes)
    {
    }

    std::uint64_t capacity() const { return capacity_; }
    bool contains(Addr a) const { return a < capacity_; }

    /// Reads the line containing @p addr (zero-filled if never written).
    const DataBlock& readLine(Addr addr) const
    {
        static const DataBlock kZero;
        const auto it = lines_.find(lineAlign(addr));
        return it == lines_.end() ? kZero : it->second;
    }

    /// Writable reference to the line containing @p addr.
    DataBlock& line(Addr addr) { return lines_[lineAlign(addr)]; }

    void writeLine(Addr addr, const DataBlock& data) { lines_[lineAlign(addr)] = data; }

    /// Merges only masked bytes into the stored line (partial DRAM write).
    void writeMasked(Addr addr, const DataBlock& data, const ByteMask& mask)
    {
        mask.apply(lines_[lineAlign(addr)], data);
    }

    std::size_t touchedLines() const { return lines_.size(); }

    /// Serializes the sparse memory image in address order (iteration order
    /// of the hash map is not deterministic; the file must be).
    void snapSave(snap::SnapWriter& w) const
    {
        std::vector<Addr> bases;
        bases.reserve(lines_.size());
        for (const auto& [base, data] : lines_)
            bases.push_back(base);
        std::sort(bases.begin(), bases.end());
        w.u64(bases.size());
        for (const Addr base : bases) {
            w.u64(base);
            w.bytes(lines_.at(base).data(), kLineSize);
        }
    }

    void snapRestore(snap::SnapReader& r)
    {
        lines_.clear();
        const std::uint64_t n = r.u64();
        for (std::uint64_t i = 0; i < n; ++i) {
            const Addr base = r.u64();
            r.bytes(lines_[base].data(), kLineSize);
        }
    }

    /// Byte equality of the full memory image, treating never-written lines
    /// as zero (so a line explicitly written with zeros equals an untouched
    /// one). Used by the restore-determinism tests.
    bool sameImage(const BackingStore& other) const
    {
        static const DataBlock kZero;
        for (const auto& [base, data] : lines_)
            if (!(other.readLine(base) == data))
                return false;
        for (const auto& [base, data] : other.lines_)
            if (lines_.find(base) == lines_.end() && !(data == kZero))
                return false;
        return true;
    }

private:
    std::uint64_t capacity_;
    std::unordered_map<Addr, DataBlock> lines_;
};

} // namespace dscoh
