// Sparse functional memory backing the whole simulated physical address
// space. DRAM reads/writes go through here, so data values survive cache
// evictions and the functional-correctness tests can compare end states.
#pragma once

#include <unordered_map>

#include "mem/data_block.h"
#include "sim/types.h"

namespace dscoh {

class BackingStore {
public:
    explicit BackingStore(std::uint64_t capacityBytes)
        : capacity_(capacityBytes)
    {
    }

    std::uint64_t capacity() const { return capacity_; }
    bool contains(Addr a) const { return a < capacity_; }

    /// Reads the line containing @p addr (zero-filled if never written).
    const DataBlock& readLine(Addr addr) const
    {
        static const DataBlock kZero;
        const auto it = lines_.find(lineAlign(addr));
        return it == lines_.end() ? kZero : it->second;
    }

    /// Writable reference to the line containing @p addr.
    DataBlock& line(Addr addr) { return lines_[lineAlign(addr)]; }

    void writeLine(Addr addr, const DataBlock& data) { lines_[lineAlign(addr)] = data; }

    /// Merges only masked bytes into the stored line (partial DRAM write).
    void writeMasked(Addr addr, const DataBlock& data, const ByteMask& mask)
    {
        mask.apply(lines_[lineAlign(addr)], data);
    }

    std::size_t touchedLines() const { return lines_.size(); }

private:
    std::uint64_t capacity_;
    std::unordered_map<Addr, DataBlock> lines_;
};

} // namespace dscoh
