#include "mem/dram.h"

#include <algorithm>
#include <utility>

namespace dscoh {

Dram::Dram(std::string name, SimContext& ctx, BackingStore& store,
           const DramTiming& timing)
    : SimObject(std::move(name), ctx), store_(store), timing_(timing),
      banks_(timing.ranks * timing.banksPerRank)
{
}

std::uint32_t Dram::bankOf(Addr addr) const
{
    // Interleave banks on line-number low bits so sequential streams hit all
    // banks, the usual XOR-free mapping for open-page DRAM.
    return static_cast<std::uint32_t>(lineNumber(addr) % bankCount());
}

std::uint64_t Dram::rowOf(Addr addr) const
{
    return addr / (static_cast<std::uint64_t>(timing_.rowBytes) * bankCount());
}

Tick Dram::scheduleAccess(Addr addr)
{
    Bank& bank = banks_[bankOf(addr)];
    const std::uint64_t row = rowOf(addr);

    Tick start = std::max(curTick(), bank.readyAt);
    Tick access = 0;
    if (bank.rowOpen && bank.openRow == row) {
        rowHits_.inc();
        access = timing_.tCas;
    } else if (bank.rowOpen) {
        rowMisses_.inc();
        access = timing_.tRp + timing_.tRcd + timing_.tCas;
    } else {
        rowMisses_.inc();
        access = timing_.tRcd + timing_.tCas;
    }
    bank.rowOpen = true;
    bank.openRow = row;

    // Data transfer serializes on the shared bus after the column access.
    Tick dataStart = std::max(start + access, busFreeAt_);
    Tick done = dataStart + timing_.tBurst;
    busFreeAt_ = done;
    // Column accesses pipeline within an open row: the bank is only tied up
    // for the activate/precharge window (row miss) or one burst slot (row
    // hit), not for the full access latency.
    bank.readyAt = start + (access == timing_.tCas
                                ? timing_.tBurst
                                : access - timing_.tCas);

    latency_.sample(done - curTick());
    return done;
}

void Dram::read(Addr addr, DramCallback done)
{
    reads_.inc();
    const Tick when = scheduleAccess(addr);
    if (TraceSession* t = tracing(TraceCat::kDram))
        t->span(TraceCat::kDram, name(), "read", curTick(), when, addr);
    queue().scheduleInline(when, [cb = std::move(done)] { cb(); },
                           EventPriority::kController);
}

void Dram::write(Addr addr, const DataBlock& data, DramCallback done)
{
    writes_.inc();
    const Tick when = scheduleAccess(addr);
    if (TraceSession* t = tracing(TraceCat::kDram))
        t->span(TraceCat::kDram, name(), "write", curTick(), when, addr);
    // Functionally the write is applied at completion time. The line data
    // parks in a pooled slot; the event captures only the pointer.
    PendingWrite* p = writePool_.acquire();
    p->addr = addr;
    p->data = data;
    p->done = std::move(done);
    queue().scheduleInline(when,
                           [this, p] {
                               store_.writeLine(p->addr, p->data);
                               DramCallback cb = std::move(p->done);
                               p->done = nullptr;
                               writePool_.release(p);
                               if (cb)
                                   cb();
                           },
                           EventPriority::kController);
}

void Dram::writeMasked(Addr addr, const DataBlock& data, const ByteMask& mask,
                       DramCallback done)
{
    writes_.inc();
    const Tick when = scheduleAccess(addr);
    if (TraceSession* t = tracing(TraceCat::kDram))
        t->span(TraceCat::kDram, name(), "write", curTick(), when, addr);
    PendingWrite* p = writePool_.acquire();
    p->addr = addr;
    p->data = data;
    p->mask = mask;
    p->done = std::move(done);
    queue().scheduleInline(when,
                           [this, p] {
                               store_.writeMasked(p->addr, p->data, p->mask);
                               DramCallback cb = std::move(p->done);
                               p->done = nullptr;
                               writePool_.release(p);
                               if (cb)
                                   cb();
                           },
                           EventPriority::kController);
}

void Dram::regStats(StatRegistry& registry)
{
    registry.registerCounter(statName("reads"), &reads_);
    registry.registerCounter(statName("writes"), &writes_);
    registry.registerCounter(statName("row_hits"), &rowHits_);
    registry.registerCounter(statName("row_misses"), &rowMisses_);
    registry.registerHistogram(statName("latency"), &latency_);
}

void Dram::snapSave(snap::SnapWriter& w) const
{
    w.u64(busFreeAt_);
    w.u64(banks_.size());
    for (const Bank& bank : banks_) {
        w.u64(bank.readyAt);
        w.u8(bank.rowOpen ? 1 : 0);
        w.u64(bank.openRow);
    }
}

void Dram::snapRestore(snap::SnapReader& r)
{
    busFreeAt_ = r.u64();
    const std::uint64_t n = r.u64();
    if (n != banks_.size())
        throw snap::SnapError(name() + ": bank count mismatch");
    for (Bank& bank : banks_) {
        bank.readyAt = r.u64();
        bank.rowOpen = r.u8() != 0;
        bank.openRow = r.u64();
    }
}

} // namespace dscoh
