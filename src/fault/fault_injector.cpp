#include "fault/fault_injector.h"

#include <utility>

namespace dscoh {

FaultInjector::FaultInjector(std::string name, SimContext& ctx,
                             const FaultConfig& cfg, std::uint64_t seedSalt)
    : SimObject(std::move(name), ctx), cfg_(cfg)
{
    std::uint64_t sm = cfg_.seed;
    for (std::uint64_t i = 0; i <= seedSalt; ++i)
        splitmix64(sm);
    rng_.reseed(sm);
}

FaultDecision FaultInjector::decide(NodeId src, NodeId dst, Tick now)
{
    FaultDecision d;
    if (linkDownNow(now) && linkMatches(src, dst)) {
        d.drop = true;
        d.linkDown = true;
        linkDownDrops_.inc();
        return d;
    }
    if (!cfg_.anyProbabilistic() || !windowActive(now) || !matches(src, dst))
        return d;
    if (cfg_.dropPpm != 0 && draw() < cfg_.dropPpm) {
        d.drop = true;
        drops_.inc();
        return d;
    }
    if (cfg_.dupPpm != 0 && draw() < cfg_.dupPpm) {
        d.duplicate = true;
        duplicates_.inc();
    }
    if (cfg_.corruptPpm != 0 && draw() < cfg_.corruptPpm) {
        d.corrupt = true;
        corruptions_.inc();
    }
    if (cfg_.delayPpm != 0 && draw() < cfg_.delayPpm) {
        d.extraDelay = 1 + rng_.below(cfg_.delayTicks == 0 ? 1 : cfg_.delayTicks);
        delays_.inc();
    }
    return d;
}

void FaultInjector::corruptPayload(Message& msg)
{
    const auto i = static_cast<std::uint32_t>(rng_.below(kLineSize));
    msg.data.data()[i] ^= 0xa5;
}

void FaultInjector::regStats(StatRegistry& registry)
{
    registry.registerCounter(statName("drops"), &drops_);
    registry.registerCounter(statName("link_down_drops"), &linkDownDrops_);
    registry.registerCounter(statName("duplicates"), &duplicates_);
    registry.registerCounter(statName("corruptions"), &corruptions_);
    registry.registerCounter(statName("delays"), &delays_);
}

void FaultInjector::snapSave(snap::SnapWriter& w) const
{
    for (const std::uint64_t word : rng_.state())
        w.u64(word);
}

void FaultInjector::snapRestore(snap::SnapReader& r)
{
    std::array<std::uint64_t, 4> s;
    for (auto& word : s)
        word = r.u64();
    rng_.setState(s);
}

} // namespace dscoh
