// Deterministic, seeded fault injector for one Network.
//
// Network::send consults the attached injector (one pointer test when none
// is attached — the TraceSession/CoherenceChecker discipline) and the
// injector decides, from its private RNG stream, whether the message is
// dropped, duplicated, corrupted or delayed. Decisions depend only on the
// configuration, the seed and the sequence of send() calls, so a run with
// faults is exactly as reproducible as one without; the RNG state is
// snapshot/restorable so a restored run replays the same fault schedule an
// uninterrupted run would have seen.
#pragma once

#include "fault/fault_config.h"
#include "net/message.h"
#include "sim/rng.h"
#include "sim/sim_object.h"

namespace dscoh {

/// What send() should do with one message. At most one of drop/duplicate
/// applies per message; corrupt and delay compose with duplicate (both
/// copies are corrupted/delayed alike — the duplicate is a wire-level echo).
struct FaultDecision {
    bool drop = false;
    bool linkDown = false; ///< the drop came from the link-down window
    bool duplicate = false;
    bool corrupt = false;
    Tick extraDelay = 0;
};

class FaultInjector final : public SimObject {
public:
    /// @p seedSalt decorrelates the streams of injectors built from the
    /// same FaultConfig on different networks.
    FaultInjector(std::string name, SimContext& ctx, const FaultConfig& cfg,
                  std::uint64_t seedSalt = 0);

    const FaultConfig& config() const { return cfg_; }

    /// Draws this message's fate. Consumes RNG words only for fault classes
    /// that are configured on, so the stream is a pure function of the
    /// configuration and the send sequence.
    FaultDecision decide(NodeId src, NodeId dst, Tick now);

    /// True while the link-down window covers @p now (the direct-store
    /// path's "network marked down" probe).
    bool linkDownNow(Tick now) const
    {
        return cfg_.linkDownConfigured() && now >= cfg_.linkDownFrom &&
               now < cfg_.linkDownUntil;
    }

    /// Stamps msg.checksum so corruption is detectable downstream.
    void stampChecksum(Message& msg) const
    {
        msg.checksum = messageChecksum(msg);
    }

    /// Flips one payload byte, leaving the checksum stale.
    void corruptPayload(Message& msg);

    void regStats(StatRegistry& registry) override;

    /// The RNG stream position is timing state: a restored run must replay
    /// the same fault schedule. Counters live in the stats section.
    void snapSave(snap::SnapWriter& w) const override;
    void snapRestore(snap::SnapReader& r) override;

    std::uint64_t drops() const { return drops_.value(); }
    std::uint64_t linkDownDrops() const { return linkDownDrops_.value(); }
    std::uint64_t duplicates() const { return duplicates_.value(); }
    std::uint64_t corruptions() const { return corruptions_.value(); }
    std::uint64_t delays() const { return delays_.value(); }

private:
    bool windowActive(Tick now) const
    {
        return cfg_.windowEnd == 0 ||
               (now >= cfg_.windowStart && now < cfg_.windowEnd);
    }
    bool matches(NodeId src, NodeId dst) const
    {
        return (cfg_.srcFilter == kInvalidNode || src == cfg_.srcFilter) &&
               (cfg_.dstFilter == kInvalidNode || dst == cfg_.dstFilter);
    }
    bool linkMatches(NodeId src, NodeId dst) const
    {
        return (cfg_.linkDownSrc == kInvalidNode ||
                src == cfg_.linkDownSrc) &&
               (cfg_.linkDownDst == kInvalidNode || dst == cfg_.linkDownDst);
    }
    std::uint32_t draw() { return static_cast<std::uint32_t>(rng_.below(1'000'000)); }

    FaultConfig cfg_;
    Rng rng_;

    Counter drops_;
    Counter linkDownDrops_;
    Counter duplicates_;
    Counter corruptions_;
    Counter delays_;
};

} // namespace dscoh
