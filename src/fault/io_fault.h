// Deterministic storage-fault injection for the durable-write path.
//
// IoFaultInjector is the storage-layer sibling of FaultInjector: a seeded
// private RNG stream draws one decision per operation, so a (config, call
// sequence) pair replays the exact same fault schedule on every run — the
// chaos harness and the unit tests rely on that.
//
// Unlike the network injector (per-System, woven into Network::send), IO
// faults are PROCESS-LEVEL: one injector, installed by a tool at startup,
// consulted by every hardened write primitive (snap::atomicWriteFile,
// snap::durableAppendLine) through ioFaultInjector(). When nothing is
// installed the check is a single relaxed atomic load of a null pointer —
// zero cost on the hot path, byte-identical behaviour to a build without
// the layer.
//
// Crash faults (torn write, crash before/after rename) model SIGKILL at
// the narrowest window: by default they terminate the process immediately
// via _Exit(kIoFaultCrashExit) so no destructor, flush, or atexit handler
// can tidy up — exactly like the kill. Tests install a crash handler that
// throws instead, so the same schedule is exercisable in-process.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "fault/io_fault_config.h"
#include "sim/rng.h"

namespace dscoh::fault {

/// Exit code of an injected crash (distinct from every sim/errors.h code
/// and from shell signal codes, so the chaos harness can tell an injected
/// death from a real one).
inline constexpr int kIoFaultCrashExit = 86;

class IoFaultInjector {
public:
    explicit IoFaultInjector(const IoFaultConfig& cfg);

    struct WriteDecision {
        enum class Kind {
            kNone,
            kShortWrite, ///< write keepBytes, then fail the call (EIO-like)
            kTornCrash,  ///< write keepBytes, then die mid-write
            kEnospc,     ///< fail the call, non-retryable
            kEio,        ///< fail the call, retryable
        };
        Kind kind = Kind::kNone;
        std::size_t keepBytes = 0; ///< prefix that lands (short/torn only)
    };
    /// One decision for a write of @p bytes to @p path. Thread-safe.
    WriteDecision onWrite(const std::string& path, std::size_t bytes);

    /// True when this fsync must fail. Thread-safe.
    bool onFsync(const std::string& path);

    enum class RenameDecision { kNone, kCrashBefore, kCrashAfter };
    /// One decision for a temp+rename publication of @p path. Thread-safe.
    RenameDecision onRename(const std::string& path);

    struct Stats {
        std::uint64_t ops = 0; ///< injector calls on eligible paths
        std::uint64_t shortWrites = 0;
        std::uint64_t tornWrites = 0;
        std::uint64_t enospc = 0;
        std::uint64_t eio = 0;
        std::uint64_t fsyncFails = 0;
        std::uint64_t crashesBefore = 0;
        std::uint64_t crashesAfter = 0;
        std::uint64_t injected() const
        {
            return shortWrites + tornWrites + enospc + eio + fsyncFails +
                   crashesBefore + crashesAfter;
        }
    };
    Stats stats() const;

    const IoFaultConfig& config() const { return cfg_; }

private:
    /// Counts the op, applies the path filter / op window / fault cap, and
    /// draws one ppm event. Caller holds mu_.
    bool drawLocked(const std::string& path, std::uint32_t ppm);
    bool eligibleLocked(const std::string& path);

    IoFaultConfig cfg_;
    mutable std::mutex mu_;
    Rng rng_;
    Stats stats_;
};

/// The process-level injector, or nullptr when storage faults are off.
/// The null check is the entire cost of the layer when disabled.
IoFaultInjector* ioFaultInjector();

/// Installs a process-level injector built from @p cfg (replacing any
/// previous one). A disabled config uninstalls. NOT thread-safe against
/// concurrent durable writes — install at startup or in quiesced tests.
void installIoFaults(const IoFaultConfig& cfg);
void clearIoFaults();

/// Terminates the process the way an injected crash fault demands (default
/// _Exit(kIoFaultCrashExit)), or runs the registered crash handler.
/// Handlers that throw make the crash observable in-process for tests; a
/// handler that returns falls through to _Exit.
void ioFaultCrash(const std::string& where);
void setIoFaultCrashHandler(std::function<void(const std::string&)> handler);

/// Parses a compact "key=value[,key=value...]" spec (the --iofault CLI
/// flag): short-write-ppm, torn-write-ppm, enospc-ppm, eio-ppm,
/// fsync-fail-ppm, crash-before-rename-ppm, crash-after-rename-ppm,
/// torn-offset-pct, op-start, op-end, max-faults, path, seed.
bool parseIoFaultSpec(const std::string& spec, IoFaultConfig* out,
                      std::string* error);

/// Deterministic inverse of parseIoFaultSpec (debugging / logging).
std::string renderIoFaultSpec(const IoFaultConfig& cfg);

} // namespace dscoh::fault
