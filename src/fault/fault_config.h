// Fault-model configuration: what the injector may do to messages in
// flight, with what probability, when, and to whom.
//
// Probabilities are integer parts-per-million so the configuration hashes
// and serializes exactly (no floating point in configHashOf). All fields
// default to "no faults": a default FaultConfig is inert and costs nothing
// (System attaches no injector).
#pragma once

#include <cstdint>

#include "sim/types.h"

namespace dscoh {

// Bits of SystemConfig::faultNets selecting which networks the injector
// attaches to. Unsafe faults (drop / duplicate / corrupt / link-down) are
// honoured only on the dedicated direct-store network — the coherence vnets
// have no retransmit story — so on every other network the injector
// degrades to delay-only.
inline constexpr std::uint32_t kFaultNetRequest = 1u << 0;
inline constexpr std::uint32_t kFaultNetForward = 1u << 1;
inline constexpr std::uint32_t kFaultNetResponse = 1u << 2;
inline constexpr std::uint32_t kFaultNetDs = 1u << 3;
inline constexpr std::uint32_t kFaultNetGpu = 1u << 4;

struct FaultConfig {
    // Per-message fault probabilities, parts per million (1'000'000 = every
    // message). Evaluated independently in the fixed order drop, duplicate,
    // corrupt, delay; a dropped message draws nothing further.
    std::uint32_t dropPpm = 0;
    std::uint32_t dupPpm = 0;
    std::uint32_t corruptPpm = 0;
    std::uint32_t delayPpm = 0;
    /// Maximum extra delivery delay when a delay fault fires (uniform in
    /// [1, delayTicks]). This bounds a message's extra lifetime on the
    /// wire, which the CPU's fallback drain window relies on (see
    /// PROTOCOL.md "Delivery hardening").
    Tick delayTicks = 200;

    /// Probabilistic faults fire only in [windowStart, windowEnd), or at
    /// any tick when windowEnd == 0.
    Tick windowStart = 0;
    Tick windowEnd = 0;

    /// Per-(src,dst) targeting: kInvalidNode matches any node.
    NodeId srcFilter = kInvalidNode;
    NodeId dstFilter = kInvalidNode;

    /// Single-link-down outage: every send on the matching (src,dst) pair
    /// during [linkDownFrom, linkDownUntil) is dropped deterministically.
    /// kInvalidNode endpoints match any node (whole network down). Both
    /// ticks zero = no outage.
    Tick linkDownFrom = 0;
    Tick linkDownUntil = 0;
    NodeId linkDownSrc = kInvalidNode;
    NodeId linkDownDst = kInvalidNode;

    /// Seed of the injector's private RNG stream (salted per network).
    std::uint64_t seed = 1;

    bool anyProbabilistic() const
    {
        return dropPpm != 0 || dupPpm != 0 || corruptPpm != 0 ||
               delayPpm != 0;
    }
    bool linkDownConfigured() const { return linkDownUntil != 0; }
    /// True when this configuration can ever perturb a message.
    bool enabled() const { return anyProbabilistic() || linkDownConfigured(); }
    /// True when a fault class the DS protocol must recover from is on.
    bool anyUnsafe() const
    {
        return dropPpm != 0 || dupPpm != 0 || corruptPpm != 0 ||
               linkDownConfigured();
    }
};

} // namespace dscoh
