#include "fault/io_fault.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <stdexcept>

namespace dscoh::fault {

namespace {

std::unique_ptr<IoFaultInjector> g_injector;
std::atomic<IoFaultInjector*> g_injectorPtr{nullptr};
std::function<void(const std::string&)> g_crashHandler;

} // namespace

IoFaultInjector::IoFaultInjector(const IoFaultConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed)
{
    if (cfg_.tornOffsetPct > 100)
        cfg_.tornOffsetPct = 100;
}

bool IoFaultInjector::eligibleLocked(const std::string& path)
{
    if (!cfg_.pathFilter.empty() &&
        path.find(cfg_.pathFilter) == std::string::npos)
        return false;
    const std::uint64_t op = stats_.ops++;
    if (op < cfg_.opStart)
        return false;
    if (cfg_.opEnd != 0 && op >= cfg_.opEnd)
        return false;
    if (cfg_.maxFaults != 0 && stats_.injected() >= cfg_.maxFaults)
        return false;
    return true;
}

bool IoFaultInjector::drawLocked(const std::string&, std::uint32_t ppm)
{
    // One RNG draw per configured fault class, in fixed order, so the
    // schedule is a pure function of (seed, eligible-op sequence).
    if (ppm == 0)
        return false;
    return rng_.below(1'000'000) < ppm;
}

IoFaultInjector::WriteDecision
IoFaultInjector::onWrite(const std::string& path, std::size_t bytes)
{
    const std::lock_guard<std::mutex> lock(mu_);
    WriteDecision d;
    if (!eligibleLocked(path))
        return d;
    const std::size_t keep =
        bytes * std::min<std::uint32_t>(cfg_.tornOffsetPct, 100) / 100;
    if (drawLocked(path, cfg_.enospcPpm)) {
        ++stats_.enospc;
        d.kind = WriteDecision::Kind::kEnospc;
        return d;
    }
    if (drawLocked(path, cfg_.eioPpm)) {
        ++stats_.eio;
        d.kind = WriteDecision::Kind::kEio;
        return d;
    }
    if (drawLocked(path, cfg_.tornWritePpm)) {
        ++stats_.tornWrites;
        d.kind = WriteDecision::Kind::kTornCrash;
        d.keepBytes = keep;
        return d;
    }
    if (drawLocked(path, cfg_.shortWritePpm)) {
        ++stats_.shortWrites;
        d.kind = WriteDecision::Kind::kShortWrite;
        d.keepBytes = keep;
        return d;
    }
    return d;
}

bool IoFaultInjector::onFsync(const std::string& path)
{
    const std::lock_guard<std::mutex> lock(mu_);
    if (!eligibleLocked(path))
        return false;
    if (drawLocked(path, cfg_.fsyncFailPpm)) {
        ++stats_.fsyncFails;
        return true;
    }
    return false;
}

IoFaultInjector::RenameDecision
IoFaultInjector::onRename(const std::string& path)
{
    const std::lock_guard<std::mutex> lock(mu_);
    if (!eligibleLocked(path))
        return RenameDecision::kNone;
    if (drawLocked(path, cfg_.crashBeforeRenamePpm)) {
        ++stats_.crashesBefore;
        return RenameDecision::kCrashBefore;
    }
    if (drawLocked(path, cfg_.crashAfterRenamePpm)) {
        ++stats_.crashesAfter;
        return RenameDecision::kCrashAfter;
    }
    return RenameDecision::kNone;
}

IoFaultInjector::Stats IoFaultInjector::stats() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

IoFaultInjector* ioFaultInjector()
{
    return g_injectorPtr.load(std::memory_order_relaxed);
}

void installIoFaults(const IoFaultConfig& cfg)
{
    if (!cfg.enabled()) {
        clearIoFaults();
        return;
    }
    g_injectorPtr.store(nullptr, std::memory_order_relaxed);
    g_injector = std::make_unique<IoFaultInjector>(cfg);
    g_injectorPtr.store(g_injector.get(), std::memory_order_release);
}

void clearIoFaults()
{
    g_injectorPtr.store(nullptr, std::memory_order_relaxed);
    g_injector.reset();
}

void ioFaultCrash(const std::string& where)
{
    if (g_crashHandler) {
        g_crashHandler(where); // tests throw out of here
        return;                // a returning handler still dies below
    }
    // No flush, no destructors, no atexit — the whole point is to model
    // SIGKILL at the narrowest window.
    std::_Exit(kIoFaultCrashExit);
}

void setIoFaultCrashHandler(std::function<void(const std::string&)> handler)
{
    g_crashHandler = std::move(handler);
}

bool parseIoFaultSpec(const std::string& spec, IoFaultConfig* out,
                      std::string* error)
{
    IoFaultConfig cfg;
    std::istringstream is(spec);
    std::string item;
    while (std::getline(is, item, ',')) {
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos) {
            *error = "iofault spec item '" + item + "' is not key=value";
            return false;
        }
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        if (key == "path") {
            cfg.pathFilter = value;
            continue;
        }
        std::uint64_t n = 0;
        try {
            std::size_t used = 0;
            n = std::stoull(value, &used);
            if (used != value.size())
                throw std::invalid_argument(value);
        } catch (const std::exception&) {
            *error = "iofault spec: '" + key + "' needs an unsigned number, "
                     "got '" + value + "'";
            return false;
        }
        const auto ppm = [&](std::uint32_t IoFaultConfig::* member) {
            cfg.*member = static_cast<std::uint32_t>(n);
        };
        if (key == "short-write-ppm")
            ppm(&IoFaultConfig::shortWritePpm);
        else if (key == "torn-write-ppm")
            ppm(&IoFaultConfig::tornWritePpm);
        else if (key == "enospc-ppm")
            ppm(&IoFaultConfig::enospcPpm);
        else if (key == "eio-ppm")
            ppm(&IoFaultConfig::eioPpm);
        else if (key == "fsync-fail-ppm")
            ppm(&IoFaultConfig::fsyncFailPpm);
        else if (key == "crash-before-rename-ppm")
            ppm(&IoFaultConfig::crashBeforeRenamePpm);
        else if (key == "crash-after-rename-ppm")
            ppm(&IoFaultConfig::crashAfterRenamePpm);
        else if (key == "torn-offset-pct")
            ppm(&IoFaultConfig::tornOffsetPct);
        else if (key == "op-start")
            cfg.opStart = n;
        else if (key == "op-end")
            cfg.opEnd = n;
        else if (key == "max-faults")
            cfg.maxFaults = n;
        else if (key == "seed")
            cfg.seed = n;
        else {
            *error = "iofault spec: unknown key '" + key + "'";
            return false;
        }
    }
    *out = cfg;
    return true;
}

std::string renderIoFaultSpec(const IoFaultConfig& cfg)
{
    std::ostringstream os;
    const char* sep = "";
    const auto field = [&](const char* key, std::uint64_t v,
                           std::uint64_t dflt) {
        if (v == dflt)
            return;
        os << sep << key << "=" << v;
        sep = ",";
    };
    field("short-write-ppm", cfg.shortWritePpm, 0);
    field("torn-write-ppm", cfg.tornWritePpm, 0);
    field("enospc-ppm", cfg.enospcPpm, 0);
    field("eio-ppm", cfg.eioPpm, 0);
    field("fsync-fail-ppm", cfg.fsyncFailPpm, 0);
    field("crash-before-rename-ppm", cfg.crashBeforeRenamePpm, 0);
    field("crash-after-rename-ppm", cfg.crashAfterRenamePpm, 0);
    field("torn-offset-pct", cfg.tornOffsetPct, 50);
    field("op-start", cfg.opStart, 0);
    field("op-end", cfg.opEnd, 0);
    field("max-faults", cfg.maxFaults, 0);
    field("seed", cfg.seed, 1);
    if (!cfg.pathFilter.empty()) {
        os << sep << "path=" << cfg.pathFilter;
        sep = ",";
    }
    return os.str();
}

} // namespace dscoh::fault
