// Storage-fault-model configuration: what the IO injector may do to the
// durable-write path, with what probability and when.
//
// This is the storage-layer sibling of FaultConfig (network faults):
// probabilities are integer parts-per-million so the configuration hashes
// and serializes exactly, every field defaults to "no faults", and a
// default IoFaultConfig is inert — nothing consults the injector unless it
// is installed, and installation is gated on enabled().
//
// The fault vocabulary covers the failure modes the hardened write paths
// (snap::atomicWriteFile, snap::durableAppendLine, the service WAL) must
// survive:
//   - short write:  only a prefix of one write(2) lands, call fails
//   - torn write:   a prefix lands and the PROCESS DIES mid-write (the
//                   kill-at-the-worst-moment case; a torn WAL record)
//   - ENOSPC:       disk full — non-retryable, callers must degrade
//   - EIO:          transient device error — retryable
//   - fsync fail:   the durability barrier itself fails
//   - crash before/after rename: process death in the narrowest windows of
//                   a temp+rename publication
#pragma once

#include <cstdint>
#include <string>

namespace dscoh::fault {

struct IoFaultConfig {
    // Per-operation fault probabilities, parts per million (1'000'000 =
    // every operation). Write operations draw in the fixed order ENOSPC,
    // EIO, torn, short; a fired fault draws nothing further.
    std::uint32_t shortWritePpm = 0;
    std::uint32_t tornWritePpm = 0;
    std::uint32_t enospcPpm = 0;
    std::uint32_t eioPpm = 0;
    std::uint32_t fsyncFailPpm = 0;
    std::uint32_t crashBeforeRenamePpm = 0;
    std::uint32_t crashAfterRenamePpm = 0;

    /// Where a torn/short write tears: percent of the payload that lands
    /// before the cut (clamped to [0, 100]).
    std::uint32_t tornOffsetPct = 50;

    /// Probabilistic faults fire only for operation numbers in
    /// [opStart, opEnd), or always when opEnd == 0. Each injector call on
    /// an eligible path counts as one operation.
    std::uint64_t opStart = 0;
    std::uint64_t opEnd = 0;

    /// Total injected faults cap (0 = unlimited). Bounds how sick one
    /// process incarnation can get, so a chaos restart always makes
    /// progress.
    std::uint64_t maxFaults = 0;

    /// Only paths containing this substring are eligible (empty = all).
    std::string pathFilter;

    /// Seed of the injector's private RNG stream.
    std::uint64_t seed = 1;

    /// True when this configuration can ever perturb an operation.
    bool enabled() const
    {
        return shortWritePpm != 0 || tornWritePpm != 0 || enospcPpm != 0 ||
               eioPpm != 0 || fsyncFailPpm != 0 ||
               crashBeforeRenamePpm != 0 || crashAfterRenamePpm != 0;
    }
};

} // namespace dscoh::fault
