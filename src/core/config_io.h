// Text serialization for SystemConfig: simple "key = value" lines with
// '#' comments, so experiment configurations can live next to their
// results. Keys mirror the field names; dumpConfig() output round-trips
// through applyConfigText().
#pragma once

#include <cstdint>
#include <string>

#include "core/config.h"

namespace dscoh {

/// Applies "key = value" lines from @p text onto @p cfg. On failure writes
/// a "line N: ..." message to @p error and returns false (cfg may be
/// partially updated).
bool applyConfigText(const std::string& text, SystemConfig* cfg,
                     std::string* error);

/// Reads @p path and applies it. File-open failures land in @p error.
bool loadConfigFile(const std::string& path, SystemConfig* cfg,
                    std::string* error);

/// Serializes every supported key (round-trippable).
std::string dumpConfig(const SystemConfig& cfg);

/// Stable FNV-1a hash over every behavior-relevant field of @p cfg
/// (logLevel is cosmetic and excluded). Snapshots embed this value and a
/// restore refuses to proceed when the running config hashes differently,
/// since component geometry and event timing would silently diverge.
std::uint64_t configHashOf(const SystemConfig& cfg);

} // namespace dscoh
