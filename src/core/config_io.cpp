#include "core/config_io.h"

#include <fstream>
#include <functional>
#include <map>
#include <sstream>

namespace dscoh {

namespace {

struct Field {
    std::function<bool(SystemConfig&, const std::string&)> set;
    std::function<std::string(const SystemConfig&)> get;
};

template <typename T>
bool parseNumber(const std::string& value, T* out)
{
    try {
        std::size_t used = 0;
        const std::uint64_t v = std::stoull(value, &used, 0);
        if (used != value.size())
            return false;
        *out = static_cast<T>(v);
        return true;
    } catch (const std::exception&) {
        return false;
    }
}

template <typename T>
Field numField(T SystemConfig::* member)
{
    return Field{
        [member](SystemConfig& cfg, const std::string& value) {
            return parseNumber(value, &(cfg.*member));
        },
        [member](const SystemConfig& cfg) {
            return std::to_string(cfg.*member);
        },
    };
}

template <typename T>
Field faultField(T FaultConfig::* member)
{
    return Field{
        [member](SystemConfig& cfg, const std::string& value) {
            return parseNumber(value, &(cfg.faults.*member));
        },
        [member](const SystemConfig& cfg) {
            return std::to_string(cfg.faults.*member);
        },
    };
}

template <typename T>
Field ioFaultField(T fault::IoFaultConfig::* member)
{
    return Field{
        [member](SystemConfig& cfg, const std::string& value) {
            return parseNumber(value, &(cfg.ioFaults.*member));
        },
        [member](const SystemConfig& cfg) {
            return std::to_string(cfg.ioFaults.*member);
        },
    };
}

const std::map<std::string, Field>& fields()
{
    static const std::map<std::string, Field> table = [] {
        std::map<std::string, Field> f;
        f.emplace("mode", Field{
            [](SystemConfig& cfg, const std::string& v) {
                if (v == "ccsm")
                    cfg.mode = CoherenceMode::kCcsm;
                else if (v == "ds" || v == "directstore")
                    cfg.mode = CoherenceMode::kDirectStore;
                else if (v == "dsonly")
                    cfg.mode = CoherenceMode::kDirectStoreOnly;
                else
                    return false;
                return true;
            },
            [](const SystemConfig& cfg) -> std::string {
                switch (cfg.mode) {
                case CoherenceMode::kCcsm: return "ccsm";
                case CoherenceMode::kDirectStore: return "ds";
                case CoherenceMode::kDirectStoreOnly: return "dsonly";
                }
                return "ccsm";
            }});
        f.emplace("replacement", Field{
            [](SystemConfig& cfg, const std::string& v) {
                try {
                    cfg.replacement = replacementKindFromString(v);
                    return true;
                } catch (const std::exception&) {
                    return false;
                }
            },
            [](const SystemConfig& cfg) { return to_string(cfg.replacement); }});

        f.emplace("cpu-l1d-size", numField(&SystemConfig::cpuL1dSize));
        f.emplace("cpu-l1d-ways", numField(&SystemConfig::cpuL1dWays));
        f.emplace("cpu-l2-size", numField(&SystemConfig::cpuL2Size));
        f.emplace("cpu-l2-ways", numField(&SystemConfig::cpuL2Ways));
        f.emplace("cpu-l1-latency", numField(&SystemConfig::cpuL1Latency));
        f.emplace("cpu-l2-latency", numField(&SystemConfig::cpuL2Latency));
        f.emplace("cpu-snoop-tag-latency",
                  numField(&SystemConfig::cpuSnoopTagLatency));
        f.emplace("cpu-data-supply-latency",
                  numField(&SystemConfig::cpuDataSupplyLatency));
        f.emplace("cpu-data-supply-interval",
                  numField(&SystemConfig::cpuDataSupplyInterval));
        f.emplace("store-buffer-entries",
                  numField(&SystemConfig::storeBufferEntries));
        f.emplace("rsb-entries", numField(&SystemConfig::rsbEntries));

        f.emplace("num-sms", numField(&SystemConfig::numSms));
        f.emplace("lanes-per-sm", numField(&SystemConfig::lanesPerSm));
        f.emplace("gpu-l1-size", numField(&SystemConfig::gpuL1Size));
        f.emplace("gpu-l1-ways", numField(&SystemConfig::gpuL1Ways));
        f.emplace("gpu-l2-size", numField(&SystemConfig::gpuL2Size));
        f.emplace("gpu-l2-ways", numField(&SystemConfig::gpuL2Ways));
        f.emplace("gpu-l2-slices", numField(&SystemConfig::gpuL2Slices));
        f.emplace("gpu-l1-latency", numField(&SystemConfig::gpuL1Latency));
        f.emplace("gpu-smem-latency", numField(&SystemConfig::gpuSmemLatency));
        f.emplace("gpu-l2-tag-latency",
                  numField(&SystemConfig::gpuL2TagLatency));
        f.emplace("gpu-l2-mshrs", numField(&SystemConfig::gpuL2Mshrs));
        f.emplace("gpu-l2-prefetch-depth",
                  numField(&SystemConfig::gpuL2PrefetchDepth));
        f.emplace("max-resident-blocks",
                  numField(&SystemConfig::maxResidentBlocks));
        f.emplace("kernel-launch-latency",
                  numField(&SystemConfig::kernelLaunchLatency));

        f.emplace("mem-bytes", numField(&SystemConfig::memBytes));
        f.emplace("mem-channels", numField(&SystemConfig::memChannels));

        f.emplace("coherence-hop-latency", Field{
            [](SystemConfig& cfg, const std::string& v) {
                return parseNumber(v, &cfg.coherenceNet.hopLatency);
            },
            [](const SystemConfig& cfg) {
                return std::to_string(cfg.coherenceNet.hopLatency);
            }});
        f.emplace("ds-hop-latency", Field{
            [](SystemConfig& cfg, const std::string& v) {
                return parseNumber(v, &cfg.dsNet.hopLatency);
            },
            [](const SystemConfig& cfg) {
                return std::to_string(cfg.dsNet.hopLatency);
            }});
        f.emplace("gpu-hop-latency", Field{
            [](SystemConfig& cfg, const std::string& v) {
                return parseNumber(v, &cfg.gpuNet.hopLatency);
            },
            [](const SystemConfig& cfg) {
                return std::to_string(cfg.gpuNet.hopLatency);
            }});

        f.emplace("fault-drop-ppm", faultField(&FaultConfig::dropPpm));
        f.emplace("fault-dup-ppm", faultField(&FaultConfig::dupPpm));
        f.emplace("fault-corrupt-ppm", faultField(&FaultConfig::corruptPpm));
        f.emplace("fault-delay-ppm", faultField(&FaultConfig::delayPpm));
        f.emplace("fault-delay-ticks", faultField(&FaultConfig::delayTicks));
        f.emplace("fault-window-start", faultField(&FaultConfig::windowStart));
        f.emplace("fault-window-end", faultField(&FaultConfig::windowEnd));
        f.emplace("fault-src", faultField(&FaultConfig::srcFilter));
        f.emplace("fault-dst", faultField(&FaultConfig::dstFilter));
        f.emplace("fault-link-down-from",
                  faultField(&FaultConfig::linkDownFrom));
        f.emplace("fault-link-down-until",
                  faultField(&FaultConfig::linkDownUntil));
        f.emplace("fault-seed", faultField(&FaultConfig::seed));
        f.emplace("fault-nets", numField(&SystemConfig::faultNets));

        f.emplace("iofault-short-write-ppm",
                  ioFaultField(&fault::IoFaultConfig::shortWritePpm));
        f.emplace("iofault-torn-write-ppm",
                  ioFaultField(&fault::IoFaultConfig::tornWritePpm));
        f.emplace("iofault-enospc-ppm",
                  ioFaultField(&fault::IoFaultConfig::enospcPpm));
        f.emplace("iofault-eio-ppm",
                  ioFaultField(&fault::IoFaultConfig::eioPpm));
        f.emplace("iofault-fsync-fail-ppm",
                  ioFaultField(&fault::IoFaultConfig::fsyncFailPpm));
        f.emplace("iofault-crash-before-rename-ppm",
                  ioFaultField(&fault::IoFaultConfig::crashBeforeRenamePpm));
        f.emplace("iofault-crash-after-rename-ppm",
                  ioFaultField(&fault::IoFaultConfig::crashAfterRenamePpm));
        f.emplace("iofault-torn-offset-pct",
                  ioFaultField(&fault::IoFaultConfig::tornOffsetPct));
        f.emplace("iofault-op-start",
                  ioFaultField(&fault::IoFaultConfig::opStart));
        f.emplace("iofault-op-end",
                  ioFaultField(&fault::IoFaultConfig::opEnd));
        f.emplace("iofault-max-faults",
                  ioFaultField(&fault::IoFaultConfig::maxFaults));
        f.emplace("iofault-seed",
                  ioFaultField(&fault::IoFaultConfig::seed));
        f.emplace("iofault-path", Field{
            [](SystemConfig& cfg, const std::string& v) {
                cfg.ioFaults.pathFilter = v;
                return true;
            },
            [](const SystemConfig& cfg) { return cfg.ioFaults.pathFilter; }});
        f.emplace("ds-ack-timeout", numField(&SystemConfig::dsAckTimeout));
        f.emplace("ds-max-retries", numField(&SystemConfig::dsMaxRetries));
        f.emplace("ds-inflight-max", numField(&SystemConfig::dsInFlightMax));

        f.emplace("cpu-cores", numField(&SystemConfig::cpuCores));
        f.emplace("num-gpus", numField(&SystemConfig::numGpus));
        f.emplace("ts-lease-ticks", numField(&SystemConfig::tsLeaseTicks));
        f.emplace("shard-policy", Field{
            [](SystemConfig& cfg, const std::string& v) {
                return parseShardPolicy(v, cfg.shardPolicy);
            },
            [](const SystemConfig& cfg) -> std::string {
                return to_string(cfg.shardPolicy);
            }});
        f.emplace("ds-topology", Field{
            [](SystemConfig& cfg, const std::string& v) {
                return parseDsTopology(v, cfg.dsTopology);
            },
            [](const SystemConfig& cfg) -> std::string {
                return to_string(cfg.dsTopology);
            }});

        f.emplace("ds-min-bytes", numField(&SystemConfig::dsMinBytes));
        f.emplace("agent-mshrs", numField(&SystemConfig::agentMshrs));
        f.emplace("writeback-entries",
                  numField(&SystemConfig::writebackEntries));
        f.emplace("seed", numField(&SystemConfig::seed));
        f.emplace("home-protocol", Field{
            [](SystemConfig& cfg, const std::string& v) {
                if (v == "hammer")
                    cfg.directoryHome = false;
                else if (v == "directory")
                    cfg.directoryHome = true;
                else
                    return false;
                return true;
            },
            [](const SystemConfig& cfg) -> std::string {
                return cfg.directoryHome ? "directory" : "hammer";
            }});
        return f;
    }();
    return table;
}

std::string trim(const std::string& s)
{
    const auto begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    const auto end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

} // namespace

bool applyConfigText(const std::string& text, SystemConfig* cfg,
                     std::string* error)
{
    std::istringstream in(text);
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (const auto hash = line.find('#'); hash != std::string::npos)
            line.resize(hash);
        const std::string trimmed = trim(line);
        if (trimmed.empty())
            continue;
        const auto eq = trimmed.find('=');
        if (eq == std::string::npos) {
            *error = "line " + std::to_string(lineNo) + ": expected key = value";
            return false;
        }
        const std::string key = trim(trimmed.substr(0, eq));
        const std::string value = trim(trimmed.substr(eq + 1));
        const auto it = fields().find(key);
        if (it == fields().end()) {
            *error = "line " + std::to_string(lineNo) + ": unknown key '" +
                     key + "'";
            return false;
        }
        if (!it->second.set(*cfg, value)) {
            *error = "line " + std::to_string(lineNo) + ": bad value '" +
                     value + "' for '" + key + "'";
            return false;
        }
    }
    return true;
}

bool loadConfigFile(const std::string& path, SystemConfig* cfg,
                    std::string* error)
{
    std::ifstream in(path);
    if (!in) {
        *error = "cannot open config file: " + path;
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return applyConfigText(buffer.str(), cfg, error);
}

std::string dumpConfig(const SystemConfig& cfg)
{
    std::ostringstream os;
    os << "# dscoh system configuration (defaults reproduce Table I)\n";
    for (const auto& [key, field] : fields())
        os << key << " = " << field.get(cfg) << "\n";
    return os.str();
}

std::uint64_t configHashOf(const SystemConfig& cfg)
{
    // FNV-1a, folding every behavior-relevant field in declaration order.
    // Hashed directly off the struct (not through the key=value field
    // table) so fields without a text key — injectBug, eventTieBreakSeed,
    // TLB and DRAM sub-structs, snoop/supply latencies — still count.
    std::uint64_t h = 0xcbf29ce484222325ull;
    const auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xffu;
            h *= 0x100000001b3ull;
        }
    };
    mix(static_cast<std::uint64_t>(cfg.mode));
    mix(cfg.cpuCores);
    mix(cfg.cpuL1dSize);
    mix(cfg.cpuL1dWays);
    mix(cfg.cpuL1iSize);
    mix(cfg.cpuL1iWays);
    mix(cfg.cpuL2Size);
    mix(cfg.cpuL2Ways);
    mix(cfg.cpuL1Latency);
    mix(cfg.cpuL2Latency);
    mix(cfg.cpuSnoopTagLatency);
    mix(cfg.cpuDataSupplyLatency);
    mix(cfg.cpuDataSupplyInterval);
    mix(cfg.storeBufferEntries);
    mix(cfg.rsbEntries);
    mix(cfg.tlb.entries);
    mix(cfg.tlb.walkLatency);
    mix(cfg.numSms);
    mix(cfg.lanesPerSm);
    mix(cfg.gpuL1Size);
    mix(cfg.gpuL1Ways);
    mix(cfg.gpuSharedMemBytes);
    mix(cfg.gpuL2Size);
    mix(cfg.gpuL2Ways);
    mix(cfg.gpuL2Slices);
    mix(cfg.gpuL1Latency);
    mix(cfg.gpuSmemLatency);
    mix(cfg.gpuL2TagLatency);
    mix(cfg.gpuSnoopTagLatency);
    mix(cfg.gpuDataSupplyLatency);
    mix(cfg.gpuDataSupplyInterval);
    mix(cfg.gpuL2PrefetchDepth);
    mix(cfg.maxResidentBlocks);
    mix(cfg.maxOutstandingStores);
    mix(cfg.kernelLaunchLatency);
    mix(cfg.memBytes);
    mix(cfg.dram.tRcd);
    mix(cfg.dram.tCas);
    mix(cfg.dram.tRp);
    mix(cfg.dram.tBurst);
    mix(cfg.dram.ranks);
    mix(cfg.dram.banksPerRank);
    mix(cfg.dram.rowBytes);
    mix(cfg.memChannels);
    mix(cfg.coherenceNet.hopLatency);
    mix(cfg.coherenceNet.bytesPerTick);
    mix(cfg.gpuNet.hopLatency);
    mix(cfg.gpuNet.bytesPerTick);
    mix(cfg.dsNet.hopLatency);
    mix(cfg.dsNet.bytesPerTick);
    mix(cfg.dsMinBytes);
    mix(cfg.directoryHome ? 1 : 0);
    mix(cfg.agentMshrs);
    mix(cfg.gpuL2Mshrs);
    mix(cfg.writebackEntries);
    mix(static_cast<std::uint64_t>(cfg.replacement));
    mix(cfg.seed);
    mix(static_cast<std::uint64_t>(cfg.injectBug));
    mix(cfg.eventTieBreakSeed);
    mix(cfg.faults.dropPpm);
    mix(cfg.faults.dupPpm);
    mix(cfg.faults.corruptPpm);
    mix(cfg.faults.delayPpm);
    mix(cfg.faults.delayTicks);
    mix(cfg.faults.windowStart);
    mix(cfg.faults.windowEnd);
    mix(cfg.faults.srcFilter);
    mix(cfg.faults.dstFilter);
    mix(cfg.faults.linkDownFrom);
    mix(cfg.faults.linkDownUntil);
    mix(cfg.faults.linkDownSrc);
    mix(cfg.faults.linkDownDst);
    mix(cfg.faults.seed);
    mix(cfg.faultNets);
    mix(cfg.dsAckTimeout);
    mix(cfg.dsMaxRetries);
    mix(cfg.dsInFlightMax);
    // Multi-GPU knobs are appended only when set off their defaults, each
    // under a distinct tag: every pre-existing config keeps its exact
    // historical hash (snapshots, sweep journals and the produce-snapshot
    // cache all key on it), while any multi-GPU setting changes it.
    if (cfg.numGpus != 1) {
        mix(0x6e756d2d67707573ull); // "num-gpus"
        mix(cfg.numGpus);
    }
    if (cfg.shardPolicy != ShardPolicy::kPage) {
        mix(0x73686172642d706full); // "shard-po"
        mix(static_cast<std::uint64_t>(cfg.shardPolicy));
    }
    if (cfg.dsTopology != DsTopology::kCrossbar) {
        mix(0x64732d746f706f6cull); // "ds-topol"
        mix(static_cast<std::uint64_t>(cfg.dsTopology));
    }
    if (cfg.tsLeaseTicks != 0) {
        mix(0x74732d6c65617365ull); // "ts-lease"
        mix(cfg.tsLeaseTicks);
    }
    // Same append-only discipline for the storage-fault model: a config
    // with io-faults off (the only kind that existed before the model)
    // hashes exactly as before, while any armed model perturbs it.
    if (cfg.ioFaults.enabled()) {
        mix(0x696f2d6661756c74ull); // "io-fault"
        mix(cfg.ioFaults.shortWritePpm);
        mix(cfg.ioFaults.tornWritePpm);
        mix(cfg.ioFaults.enospcPpm);
        mix(cfg.ioFaults.eioPpm);
        mix(cfg.ioFaults.fsyncFailPpm);
        mix(cfg.ioFaults.crashBeforeRenamePpm);
        mix(cfg.ioFaults.crashAfterRenamePpm);
        mix(cfg.ioFaults.tornOffsetPct);
        mix(cfg.ioFaults.opStart);
        mix(cfg.ioFaults.opEnd);
        mix(cfg.ioFaults.maxFaults);
        mix(cfg.ioFaults.seed);
        mix(cfg.ioFaults.pathFilter.size());
        for (const char c : cfg.ioFaults.pathFilter)
            mix(static_cast<std::uint8_t>(c));
    }
    return h;
}

} // namespace dscoh
