#include "core/system.h"

#include <iomanip>
#include <map>
#include <sstream>

#include "core/config_io.h"
#include "snap/serializer.h"

namespace dscoh {

const char* to_string(CoherenceMode m)
{
    switch (m) {
    case CoherenceMode::kCcsm:
        return "CCSM";
    case CoherenceMode::kDirectStore:
        return "DirectStore";
    case CoherenceMode::kDirectStoreOnly:
        return "DirectStoreOnly";
    }
    return "?";
}

void SystemConfig::printTable(std::ostream& os) const
{
    const auto kb = [](std::uint64_t b) { return b / 1024; };
    os << "SYSTEM CONFIGURATION (" << to_string(mode) << ")\n"
       << "CPU\n"
       << "  Cores      " << cpuCores << "\n"
       << "  L1D cache  " << kb(cpuL1dSize) << "KB, " << cpuL1dWays << " ways\n"
       << "  L1I cache  " << kb(cpuL1iSize) << "KB, " << cpuL1iWays << " ways\n"
       << "  L2 cache   " << kb(cpuL2Size) / 1024 << "MB, " << cpuL2Ways
       << " ways\n"
       << "GPU\n"
       << "  SMs        " << numSms << " - " << lanesPerSm
       << " lanes per SM @ 1.4GHz\n"
       << "  L1 cache   " << kb(gpuL1Size) << "KB + " << kb(gpuSharedMemBytes)
       << "KB shared memory, " << gpuL1Ways << " ways\n"
       << "  L2 cache   " << kb(gpuL2Size) / 1024 << "MB, " << gpuL2Ways
       << " ways, " << gpuL2Slices << " slices\n"
       << "MEMORY\n"
       << "  Memory     " << memBytes / (1024 * 1024 * 1024) << "GB, 1 channel, "
       << dram.ranks << " ranks, " << dram.banksPerRank << " banks @ 1GHz\n"
       << "  Line size  " << kLineSize << "B across the whole system\n";
}

TraceSession& System::enableTracing(std::uint32_t catMask)
{
    if (ctx_.trace == nullptr)
        ctx_.trace = std::make_unique<TraceSession>(catMask);
    // Either enable order works: whichever of tracing/profiling comes
    // second completes the flow-event cross-wiring.
    if (ctx_.txnprof != nullptr)
        ctx_.txnprof->attachTrace(ctx_.trace.get());
    return *ctx_.trace;
}

TxnProfiler& System::enableTxnProfiler(const TxnProfiler::Params& params)
{
    if (ctx_.txnprof == nullptr)
        ctx_.txnprof = std::make_unique<TxnProfiler>(params);
    if (ctx_.trace != nullptr)
        ctx_.txnprof->attachTrace(ctx_.trace.get());
    return *ctx_.txnprof;
}

EpochSampler& System::enableEpochSampler(EpochSampler::Params params)
{
    if (sampler_ == nullptr)
        sampler_ = std::make_unique<EpochSampler>(ctx_.queue, stats_,
                                                  std::move(params));
    return *sampler_;
}

CoherenceChecker& System::enableChecker(const CoherenceChecker::Params& params)
{
    if (ctx_.checker != nullptr)
        return *ctx_.checker;
    ctx_.checker = std::make_unique<CoherenceChecker>(params);
    CoherenceChecker& checker = *ctx_.checker;
    checker.setBackingStore(store_.get());
    checker.setHomeProbe([this] {
        std::size_t busy = 0;
        for (const auto& homePtr : homes_)
            busy += homePtr->busyLines();
        return busy;
    });

    const auto addAgent = [&checker](const CacheAgent& agent,
                                     std::string label) {
        CoherenceChecker::AgentView view;
        view.name = std::move(label);
        view.stateOf = [&agent](Addr a) { return agent.stateOf(a); };
        view.dataOf = [&agent](Addr a) { return agent.peekLine(a); };
        view.mshrInFlight = [&agent] { return agent.mshrInFlight(); };
        view.writebackEntries = [&agent] {
            return agent.writebackBufferEntries();
        };
        view.blockedThunks = [&agent] { return agent.blockedRequests(); };
        view.forEachLine = [&agent](const CoherenceChecker::LineFn& fn) {
            agent.forEachLine([&fn](const CacheAgent::Line& line) {
                fn(line.base, line.meta.state, line.data);
            });
            agent.forEachWriteback(fn);
        };
        checker.addAgent(std::move(view));
    };
    addAgent(*cpuAgent_, "cpu");
    for (std::size_t i = 0; i < slices_.size(); ++i)
        addAgent(*slices_[i], sliceCheckerLabel(i));
    return checker;
}

std::string System::sliceCheckerLabel(std::size_t flatIndex) const
{
    const std::size_t g = flatIndex / config_.gpuL2Slices;
    const std::size_t s = flatIndex % config_.gpuL2Slices;
    if (g == 0)
        return "slice" + std::to_string(s);
    return "gpu" + std::to_string(g) + ".slice" + std::to_string(s);
}

System::System(const SystemConfig& config)
    : config_(config), interleave_(config.gpuL2Slices),
      homeMap_(config.numGpus, config.shardPolicy)
{
    // Instance-0 component names are the historical single-GPU strings so
    // every stat key, snapshot section and checker label of a 1-GPU /
    // 1-core config stays byte-identical to the pre-sharding simulator.
    const auto gpuPrefix = [](std::uint32_t g) {
        return g == 0 ? std::string("gpu.")
                      : "gpu" + std::to_string(g) + ".";
    };
    ctx_.log.setThreshold(config_.logLevel);
    if (config_.eventTieBreakSeed != 0)
        ctx_.queue.setTieBreakShuffle(config_.eventTieBreakSeed);
    store_ = std::make_unique<BackingStore>(config_.memBytes);
    space_ = std::make_unique<AddressSpace>(config_.memBytes);
    dram_ = std::make_unique<DramPool>("dram", ctx_, *store_, config_.dram,
                                       config_.memChannels);

    requestNet_ = std::make_unique<Network>("net.request", ctx_,
                                            config_.coherenceNet);
    forwardNet_ = std::make_unique<Network>("net.forward", ctx_,
                                            config_.coherenceNet);
    responseNet_ = std::make_unique<Network>("net.response", ctx_,
                                             config_.coherenceNet);
    dsNet_ = std::make_unique<Network>("net.ds", ctx_, config_.dsNet);
    gpuNet_ = std::make_unique<Network>("net.gpu", ctx_, config_.gpuNet);

    // --- fault injection ---------------------------------------------------
    // One injector per selected network, each on its own salted RNG stream.
    // Unsafe fault classes (drop/dup/corrupt/link-down) only make sense on
    // the dedicated DS network, whose protocol this PR hardens against
    // them; on the coherence and GPU vnets the injector degrades to
    // delay-only (delays never violate the protocols' ordering
    // assumptions: per-(src,dst) FIFO is preserved).
    const auto attachFault = [this](Network& net, std::uint32_t bit,
                                    bool unsafeAllowed, std::uint64_t salt) {
        if ((config_.faultNets & bit) == 0)
            return static_cast<FaultInjector*>(nullptr);
        FaultConfig fc = config_.faults;
        if (!unsafeAllowed) {
            fc.dropPpm = 0;
            fc.dupPpm = 0;
            fc.corruptPpm = 0;
            fc.linkDownFrom = 0;
            fc.linkDownUntil = 0;
        }
        if (!fc.enabled())
            return static_cast<FaultInjector*>(nullptr);
        faults_.push_back(std::make_unique<FaultInjector>(
            net.name() + ".fault", ctx_, fc, salt));
        FaultInjector* inj = faults_.back().get();
        net.attachFaultInjector(inj);
        return inj;
    };
    attachFault(*requestNet_, kFaultNetRequest, false, 0);
    attachFault(*forwardNet_, kFaultNetForward, false, 1);
    attachFault(*responseNet_, kFaultNetResponse, false, 2);
    dsFault_ = attachFault(*dsNet_, kFaultNetDs, true, 3);
    attachFault(*gpuNet_, kFaultNetGpu, false, 4);

    // --- home controllers (one directory shard per GPU) -------------------
    for (std::uint32_t h = 0; h < config_.numGpus; ++h) {
        HomeController::Params homeParams;
        homeParams.self = homeNode(h);
        homeParams.requestNet = requestNet_.get();
        homeParams.forwardNet = forwardNet_.get();
        homeParams.responseNet = responseNet_.get();
        homeParams.dram = dram_.get();
        homeParams.store = store_.get();
        homeParams.directoryMode = config_.directoryHome;
        if (config_.mode == CoherenceMode::kDirectStoreOnly) {
            // SIII-H replacement mode: there is no CPU<->GPU coherence to
            // keep. The CPU only caches private data (which no slice may
            // hold) and the slices partition the shared addresses among
            // themselves, so the home never needs to snoop anyone: every
            // transaction is a plain memory fetch. This is the
            // protocol-simplicity claim made concrete (see
            // bench/ablation_replacement).
            homeParams.peersOf = [](Addr) { return std::vector<NodeId>{}; };
        } else {
            // Hammer broadcast reaches every cache that may hold the line:
            // the CPU agent and the matching slice of every GPU.
            homeParams.peersOf = [this](Addr a) {
                std::vector<NodeId> peers;
                peers.reserve(1 + config_.numGpus);
                peers.push_back(kCpuAgentNode);
                for (std::uint32_t g = 0; g < config_.numGpus; ++g)
                    peers.push_back(sliceNodeOf(a, g));
                return peers;
            };
        }
        // Misrouted requests (a bug in homeFor routing, or a scenario
        // mutation) are reported to the attached checker instead of being
        // silently ordered by the wrong shard.
        homeParams.shardId = h;
        if (config_.numGpus > 1) {
            homeParams.shardOf = [this](Addr a) { return homeMap_.homeOf(a); };
        }
        homes_.push_back(std::make_unique<HomeController>(
            h == 0 ? std::string("home") : "home" + std::to_string(h), ctx_,
            std::move(homeParams)));
    }

    // --- CPU side ---------------------------------------------------------
    CacheAgent::Params cpuL2;
    cpuL2.geometry.sizeBytes = config_.cpuL2Size;
    cpuL2.geometry.ways = config_.cpuL2Ways;
    cpuL2.geometry.replacement = config_.replacement;
    cpuL2.geometry.replacementSeed = config_.seed;
    cpuL2.mshrs = config_.agentMshrs;
    cpuL2.writebackEntries = config_.writebackEntries;
    cpuL2.self = kCpuAgentNode;
    cpuL2.home = homeNode(0);
    cpuL2.homeMap = homeMap_;
    cpuL2.requestNet = requestNet_.get();
    cpuL2.forwardNet = forwardNet_.get();
    cpuL2.responseNet = responseNet_.get();
    cpuL2.snoopTagLatency = config_.cpuSnoopTagLatency;
    cpuL2.dataSupplyLatency = config_.cpuDataSupplyLatency;
    cpuL2.dataSupplyInterval = config_.cpuDataSupplyInterval;
    cpuL2.injectBug = config_.injectBug;

    CpuCacheAgent::L1Params cpuL1;
    cpuL1.geometry.sizeBytes = config_.cpuL1dSize;
    cpuL1.geometry.ways = config_.cpuL1dWays;
    cpuL1.geometry.replacement = config_.replacement;
    cpuL1.geometry.replacementSeed = config_.seed + 1;
    cpuAgent_ = std::make_unique<CpuCacheAgent>("cpu.cache", ctx_, cpuL2,
                                                cpuL1);

    tlb_ = std::make_unique<Tlb>("cpu.tlb", ctx_, *space_, config_.tlb);

    for (std::uint32_t c = 0; c < config_.cpuCores; ++c) {
        CpuCore::Params coreParams;
        coreParams.l1Latency = config_.cpuL1Latency;
        coreParams.l2Latency = config_.cpuL2Latency;
        coreParams.storeBufferEntries = config_.storeBufferEntries;
        coreParams.rsbEntries = config_.rsbEntries;
        coreParams.self = cpuCoreNode(c);
        coreParams.dsNet = dsNet_.get();
        coreParams.sliceOf = [this](Addr a) { return sliceNodeOf(a); };
        coreParams.dsAckTimeout = config_.dsAckTimeout;
        coreParams.dsMaxRetries = config_.dsMaxRetries;
        coreParams.dsInFlightMax = config_.dsInFlightMax;
        // Only kDirectStore retains the baseline coherent path to degrade
        // to; under kDirectStoreOnly the push network is the sole mechanism
        // and the CPU must keep retrying through an outage.
        coreParams.dsFallback = config_.mode == CoherenceMode::kDirectStore;
        // Drain window before a fallback applies: the longest a stale
        // DsPutX copy can still be on the wire (hop + fault delay + slice
        // tag lookup) plus generous slack for port-serialization backlog.
        // Correctness does not hinge on the bound — the slice's merge-only
        // mode keeps even a straggler coherent — it just avoids needless
        // churn.
        coreParams.dsMslTicks = config_.dsNet.hopLatency +
                                config_.faults.delayTicks +
                                config_.gpuL2TagLatency + 2048;
        coreParams.dsVerifyChecksum =
            config_.dsAckTimeout != 0 && dsFault_ != nullptr;
        if (dsFault_ != nullptr) {
            FaultInjector* inj = dsFault_;
            coreParams.dsNetDown = [this, inj] {
                return inj->linkDownNow(ctx_.queue.curTick());
            };
        }
        cpuCores_.push_back(std::make_unique<CpuCore>(
            c == 0 ? std::string("cpu.core") : "cpu.core" + std::to_string(c),
            ctx_, std::move(coreParams), *tlb_, *cpuAgent_));
    }

    // --- GPU side ----------------------------------------------------------
    for (std::uint32_t g = 0; g < config_.numGpus; ++g) {
        for (std::uint32_t s = 0; s < config_.gpuL2Slices; ++s) {
            CacheAgent::Params sliceAgent;
            sliceAgent.geometry.sizeBytes =
                config_.gpuL2Size / config_.gpuL2Slices;
            sliceAgent.geometry.ways = config_.gpuL2Ways;
            sliceAgent.geometry.setShift = interleave_.bits();
            sliceAgent.geometry.replacement = config_.replacement;
            sliceAgent.geometry.replacementSeed =
                config_.seed + 10 + g * config_.gpuL2Slices + s;
            sliceAgent.mshrs = config_.gpuL2Mshrs;
            sliceAgent.writebackEntries = config_.writebackEntries;
            sliceAgent.self = sliceNode(g, s);
            sliceAgent.home = homeNode(0);
            sliceAgent.homeMap = homeMap_;
            sliceAgent.requestNet = requestNet_.get();
            sliceAgent.forwardNet = forwardNet_.get();
            sliceAgent.responseNet = responseNet_.get();
            sliceAgent.snoopTagLatency = config_.gpuSnoopTagLatency;
            sliceAgent.dataSupplyLatency = config_.gpuDataSupplyLatency;
            sliceAgent.dataSupplyInterval = config_.gpuDataSupplyInterval;
            sliceAgent.injectBug = config_.injectBug;

            GpuL2Slice::SliceParams sliceParams;
            sliceParams.tagLatency = config_.gpuL2TagLatency;
            sliceParams.gpuNet = gpuNet_.get();
            sliceParams.dsNet = dsNet_.get();
            sliceParams.dram = dram_.get();
            sliceParams.prefetchDepth = config_.gpuL2PrefetchDepth;
            sliceParams.slices = config_.gpuL2Slices;
            sliceParams.harden = config_.dsAckTimeout != 0;
            sliceParams.mergeOnly =
                sliceParams.harden &&
                config_.mode == CoherenceMode::kDirectStore;
            sliceParams.verifyChecksum =
                sliceParams.harden && dsFault_ != nullptr;
            sliceParams.tsLeaseTicks = config_.tsLeaseTicks;
            sliceParams.myGpu = g;
            sliceParams.firstSliceNode = kFirstSliceNode;
            slices_.push_back(std::make_unique<GpuL2Slice>(
                gpuPrefix(g) + "l2.slice" + std::to_string(s), ctx_,
                sliceAgent, sliceParams));
        }

        for (std::uint32_t i = 0; i < config_.numSms; ++i) {
            StreamingMultiprocessor::Params smParams;
            smParams.lanes = config_.lanesPerSm;
            smParams.maxResidentBlocks = config_.maxResidentBlocks;
            smParams.l1Latency = config_.gpuL1Latency;
            smParams.smemLatency = config_.gpuSmemLatency;
            smParams.maxOutstandingStores = config_.maxOutstandingStores;
            smParams.self = smNode(g, i);
            smParams.gpuNet = gpuNet_.get();
            smParams.sliceOf = [this, g](Addr a) {
                return sliceNodeOf(a, g);
            };
            smParams.l1Geometry.sizeBytes = config_.gpuL1Size;
            smParams.l1Geometry.ways = config_.gpuL1Ways;
            smParams.l1Geometry.replacement = config_.replacement;
            smParams.l1Geometry.replacementSeed =
                config_.seed + 100 + g * config_.numSms + i;
            sms_.push_back(std::make_unique<StreamingMultiprocessor>(
                gpuPrefix(g) + "sm" + std::to_string(i), ctx_,
                std::move(smParams), *space_));
        }

        std::vector<StreamingMultiprocessor*> smPtrs;
        for (std::uint32_t i = 0; i < config_.numSms; ++i)
            smPtrs.push_back(sms_[g * config_.numSms + i].get());
        GpuDevice::Params devParams;
        devParams.launchLatency = config_.kernelLaunchLatency;
        gpuDevices_.push_back(std::make_unique<GpuDevice>(
            gpuPrefix(g) + "device", ctx_, devParams, std::move(smPtrs)));
    }

    // --- wiring -------------------------------------------------------------
    // Every controller connects through a compile-time member binding: the
    // per-message hop is one indirect call, with no std::function in the way.
    for (std::uint32_t h = 0; h < config_.numGpus; ++h) {
        HomeController* homePtr = homes_[h].get();
        requestNet_->connect(
            homeNode(h),
            Network::handlerFor<&HomeController::handleRequest>(homePtr));
        responseNet_->connect(
            homeNode(h),
            Network::handlerFor<&HomeController::handleResponse>(homePtr));
    }
    forwardNet_->connect(
        kCpuAgentNode,
        Network::handlerFor<&CacheAgent::handleForward>(cpuAgent_.get()));
    responseNet_->connect(
        kCpuAgentNode,
        Network::handlerFor<&CacheAgent::handleResponse>(cpuAgent_.get()));
    for (std::uint32_t c = 0; c < config_.cpuCores; ++c) {
        dsNet_->connect(
            cpuCoreNode(c),
            Network::handlerFor<&CpuCore::handleDsMessage>(
                cpuCores_[c].get()));
    }
    for (std::uint32_t g = 0; g < config_.numGpus; ++g) {
        for (std::uint32_t s = 0; s < config_.gpuL2Slices; ++s) {
            GpuL2Slice* slicePtr =
                slices_[g * config_.gpuL2Slices + s].get();
            forwardNet_->connect(
                sliceNode(g, s),
                Network::handlerFor<&GpuL2Slice::handleForward>(slicePtr));
            responseNet_->connect(
                sliceNode(g, s),
                Network::handlerFor<&GpuL2Slice::handleResponse>(slicePtr));
            dsNet_->connect(
                sliceNode(g, s),
                Network::handlerFor<&GpuL2Slice::handleDsMessage>(slicePtr));
            gpuNet_->connect(
                sliceNode(g, s),
                Network::handlerFor<&GpuL2Slice::handleGpuMessage>(slicePtr));
        }
    }
    for (std::size_t i = 0; i < sms_.size(); ++i) {
        gpuNet_->connect(
            smNode(static_cast<std::uint32_t>(i / config_.numSms),
                   static_cast<std::uint32_t>(i % config_.numSms)),
            Network::handlerFor<&StreamingMultiprocessor::handleGpuMessage>(
                sms_[i].get()));
    }

    // --- DS-network topology & timestamp stats ------------------------------
    if (config_.dsTopology == DsTopology::kRing) {
        // Ring order: CPU cores, then each GPU's slices in shard order.
        // Distance-proportional extra hops model the scale-out fabric; a
        // crossbar config never calls setRing and keeps historical timing.
        std::vector<NodeId> ring;
        for (std::uint32_t c = 0; c < config_.cpuCores; ++c)
            ring.push_back(cpuCoreNode(c));
        for (std::uint32_t g = 0; g < config_.numGpus; ++g)
            for (std::uint32_t s = 0; s < config_.gpuL2Slices; ++s)
                ring.push_back(sliceNode(g, s));
        dsNet_->setRing(ring);
    }
    if (config_.tsLeaseTicks != 0)
        dsNet_->enableTsStats();

    // --- statistics ----------------------------------------------------------
    dram_->regStats(stats_);
    requestNet_->regStats(stats_);
    forwardNet_->regStats(stats_);
    responseNet_->regStats(stats_);
    dsNet_->regStats(stats_);
    gpuNet_->regStats(stats_);
    for (auto& faultPtr : faults_)
        faultPtr->regStats(stats_);
    for (auto& homePtr : homes_)
        homePtr->regStats(stats_);
    cpuAgent_->regStats(stats_);
    tlb_->regStats(stats_);
    for (auto& corePtr : cpuCores_)
        corePtr->regStats(stats_);
    for (auto& slicePtr : slices_)
        slicePtr->regStats(stats_);
    for (auto& smPtr : sms_)
        smPtr->regStats(stats_);
    for (auto& devPtr : gpuDevices_)
        devPtr->regStats(stats_);
}

System::~System() = default;

Addr System::allocateArray(std::uint64_t bytes, bool gpuShared)
{
    const bool dsMode = config_.mode == CoherenceMode::kDirectStore ||
                        config_.mode == CoherenceMode::kDirectStoreOnly;
    // Hybrid policy (SIII-H): the programmer may keep small shared data on
    // CCSM and push only the large arrays. Under the replacement mode every
    // shared array must be homed on the GPU (there is no CCSM to fall back
    // to), so the threshold is ignored there.
    const bool aboveThreshold =
        config_.mode == CoherenceMode::kDirectStoreOnly ||
        bytes >= config_.dsMinBytes;
    if (dsMode && gpuShared && aboveThreshold)
        return space_->dsMmap(bytes);
    return space_->heapAlloc(bytes);
}

Addr System::allocateArrayHomed(std::uint64_t bytes, std::uint32_t gpu)
{
    const bool dsMode = config_.mode == CoherenceMode::kDirectStore ||
                        config_.mode == CoherenceMode::kDirectStoreOnly;
    // A single shard means every placement is "homed"; the line policy
    // interleaves below any array granularity, so there is nothing to aim
    // for. Both fall back to ordinary placement.
    if (!dsMode || homeMap_.shards() <= 1 ||
        config_.shardPolicy == ShardPolicy::kLine)
        return allocateArray(bytes, /*gpuShared=*/true);
    const std::uint64_t granule =
        config_.shardPolicy == ShardPolicy::kRange
            ? static_cast<std::uint64_t>(HomeMap::kRangePages) * kPageSize
            : kPageSize;
    // Pad the DS cursor page by page until a mapping would start exactly on
    // a granule homed at @p gpu. Bounded: homes rotate every granule, so at
    // most shards * (granule / page) probe pages are burned. Arrays larger
    // than one granule stripe across the shards from there — the homing
    // aims the first (hottest) granule, exactly like the translator does.
    for (;;) {
        const Addr probe = space_->dsMmap(kPageSize);
        const Addr pa = space_->translate(probe).paddr;
        if (pa % granule == 0 && homeMap_.homeOf(pa) == gpu) {
            if (bytes > kPageSize)
                space_->dsMmapFixed(probe + kPageSize, bytes - kPageSize);
            return probe;
        }
    }
}

void System::runCpuProgram(const CpuProgram& program,
                           std::function<void()> onDone)
{
    cpuCores_[0]->run(program, std::move(onDone));
}

void System::runCpuProgramOn(std::uint32_t core, const CpuProgram& program,
                             std::function<void()> onDone)
{
    cpuCores_.at(core)->run(program, std::move(onDone));
}

void System::launchKernel(const KernelDesc& kernel,
                          std::function<void()> onDone)
{
    gpuDevices_.at(kernel.gpu)->launch(kernel, std::move(onDone));
}

Tick System::simulate()
{
    return ctx_.queue.run();
}

RunMetrics System::metrics() const
{
    RunMetrics m;
    m.ticks = ctx_.queue.curTick();
    for (const auto& slicePtr : slices_) {
        m.gpuL2Accesses += slicePtr->demandAccesses();
        m.gpuL2Misses += slicePtr->demandMisses();
        m.gpuL2Compulsory += slicePtr->compulsoryMisses();
        m.dsFills += slicePtr->dsFills();
        m.dsBypasses += slicePtr->dsBypasses();
    }
    m.gpuL2MissRate = m.gpuL2Accesses == 0
                          ? 0.0
                          : static_cast<double>(m.gpuL2Misses) /
                                static_cast<double>(m.gpuL2Accesses);
    m.coherenceMessages = requestNet_->messagesSent() +
                          forwardNet_->messagesSent() +
                          responseNet_->messagesSent();
    m.coherenceBytes = requestNet_->bytesSent() + forwardNet_->bytesSent() +
                       responseNet_->bytesSent();
    m.dsNetworkMessages = dsNet_->messagesSent();
    for (std::uint32_t c = 0; c < config_.memChannels; ++c) {
        const std::string prefix = "dram.ch" + std::to_string(c);
        m.dramReads += stats_.counter(prefix + ".reads");
        m.dramWrites += stats_.counter(prefix + ".writes");
    }
    for (const auto& corePtr : cpuCores_)
        m.checkFailures += corePtr->checkFailures();
    for (const auto& smPtr : sms_)
        m.checkFailures += smPtr->checkFailures();
    return m;
}

std::uint64_t System::configHash() const
{
    return configHashOf(config_);
}

void System::snapshotSave(
    const std::string& path,
    const std::function<void(snap::SnapWriter&)>& extra) const
{
    snap::SnapWriter w(ctx_.queue.curTick(), configHash());
    const auto section = [&w](const std::string& name, const auto& obj) {
        w.beginSection(name);
        obj.snapSave(w);
        w.endSection();
    };
    section("queue", ctx_.queue);
    section("space", *space_);
    section("store", *store_);
    section("dram", *dram_);
    section("net.request", *requestNet_);
    section("net.forward", *forwardNet_);
    section("net.response", *responseNet_);
    section("net.ds", *dsNet_);
    section("net.gpu", *gpuNet_);
    // Which injectors exist is a pure function of the config, and the
    // config hash gates restore, so the section list stays in lockstep.
    for (const auto& faultPtr : faults_)
        section(faultPtr->name(), *faultPtr);
    for (const auto& homePtr : homes_)
        section(homePtr->name(), *homePtr);
    section("cpu.cache", *cpuAgent_);
    section("cpu.tlb", *tlb_);
    for (const auto& corePtr : cpuCores_)
        section(corePtr->name(), *corePtr);
    for (const auto& slicePtr : slices_)
        section(slicePtr->name(), *slicePtr);
    for (const auto& smPtr : sms_)
        section(smPtr->name(), *smPtr);
    for (const auto& devPtr : gpuDevices_)
        section(devPtr->name(), *devPtr);
    section("stats", stats_);
    if (ctx_.checker != nullptr)
        section("checker", *ctx_.checker);
    // Observability sections are conditional like the checker's: snapshots
    // taken without a profiler/sampler attached stay byte-identical to
    // what they always were.
    if (ctx_.txnprof != nullptr)
        section("obs.txnprof", *ctx_.txnprof);
    if (sampler_ != nullptr)
        section("obs.epochs", *sampler_);
    if (extra) {
        w.beginSection("runner");
        extra(w);
        w.endSection();
    }
    w.writeFile(path);
}

void System::snapshotRestore(
    const std::string& path,
    const std::function<void(snap::SnapReader&)>& extra)
{
    if (ctx_.queue.curTick() != 0)
        throw snap::SnapError(
            "snapshotRestore requires a freshly constructed System "
            "(the event queue already advanced to tick " +
            std::to_string(ctx_.queue.curTick()) + ")");

    snap::SnapReader r(path);
    const std::uint64_t want = configHash();
    if (r.configHash() != want) {
        std::ostringstream os;
        os << path << ": snapshot was taken under a different configuration"
           << std::hex << " (snapshot config hash 0x" << r.configHash()
           << ", this system hashes to 0x" << want
           << ") — restore with the exact config the checkpoint was "
              "written with";
        throw snap::SnapError(os.str());
    }
    if (ctx_.checker != nullptr && !r.hasSection("checker"))
        throw snap::SnapError(
            path + ": a coherence checker is attached but the snapshot "
                   "carries no oracle shadow state; the store mirror would "
                   "be incomplete — snapshot with the checker enabled or "
                   "restore without enableChecker()");
    if (ctx_.txnprof != nullptr && !r.hasSection("obs.txnprof"))
        throw snap::SnapError(
            path + ": a transaction profiler is attached but the snapshot "
                   "carries no profile state; the restored profile would "
                   "miss every pre-checkpoint transaction — snapshot with "
                   "the profiler enabled or restore without "
                   "enableTxnProfiler()");
    if (sampler_ != nullptr && !r.hasSection("obs.epochs"))
        throw snap::SnapError(
            path + ": an epoch sampler is attached but the snapshot "
                   "carries no epoch series; the restored series would "
                   "miss every pre-checkpoint sample — snapshot with the "
                   "sampler enabled or restore without "
                   "enableEpochSampler()");

    const auto section = [&r](const std::string& name, auto& obj) {
        r.openSection(name);
        obj.snapRestore(r);
        r.closeSection();
    };
    section("queue", ctx_.queue);
    section("space", *space_);
    section("store", *store_);
    section("dram", *dram_);
    section("net.request", *requestNet_);
    section("net.forward", *forwardNet_);
    section("net.response", *responseNet_);
    section("net.ds", *dsNet_);
    section("net.gpu", *gpuNet_);
    for (const auto& faultPtr : faults_)
        section(faultPtr->name(), *faultPtr);
    for (const auto& homePtr : homes_)
        section(homePtr->name(), *homePtr);
    section("cpu.cache", *cpuAgent_);
    section("cpu.tlb", *tlb_);
    for (const auto& corePtr : cpuCores_)
        section(corePtr->name(), *corePtr);
    for (const auto& slicePtr : slices_)
        section(slicePtr->name(), *slicePtr);
    for (const auto& smPtr : sms_)
        section(smPtr->name(), *smPtr);
    for (const auto& devPtr : gpuDevices_)
        section(devPtr->name(), *devPtr);
    section("stats", stats_);
    if (ctx_.checker != nullptr)
        section("checker", *ctx_.checker);
    if (ctx_.txnprof != nullptr)
        section("obs.txnprof", *ctx_.txnprof);
    if (sampler_ != nullptr)
        section("obs.epochs", *sampler_);
    if (extra) {
        if (!r.hasSection("runner"))
            throw snap::SnapError(
                path + ": no runner-progress section (this snapshot was "
                       "not written by the workload runner)");
        r.openSection("runner");
        extra(r);
        r.closeSection();
    }
}

std::string System::describeOutstandingWork() const
{
    std::vector<std::string> items;
    for (const auto& homePtr : homes_) {
        if (const std::size_t busy = homePtr->busyLines(); busy > 0)
            items.push_back(homePtr->name() + ": " + std::to_string(busy) +
                            " busy lines");
    }

    const auto probeAgent = [&items](const CacheAgent& agent,
                                     const std::string& label) {
        if (const std::size_t n = agent.mshrInFlight(); n > 0)
            items.push_back(label + ": " + std::to_string(n) +
                            " MSHR entries in flight");
        if (const std::size_t n = agent.writebackBufferEntries(); n > 0)
            items.push_back(label + ": " + std::to_string(n) +
                            " writebacks draining");
        if (const std::size_t n = agent.blockedRequests(); n > 0)
            items.push_back(label + ": " + std::to_string(n) +
                            " requests blocked on resources");
    };
    probeAgent(*cpuAgent_, "cpu.cache");
    for (const auto& slicePtr : slices_)
        probeAgent(*slicePtr, slicePtr->name());

    for (const auto& corePtr : cpuCores_) {
        if (std::string core = corePtr->outstandingWork(); !core.empty())
            items.push_back(corePtr->name() + ": " + core);
    }

    std::string out;
    for (const std::string& item : items) {
        if (!out.empty())
            out += "; ";
        out += item;
    }
    return out;
}

std::vector<std::string> System::checkCoherenceInvariants() const
{
    std::vector<std::string> violations;
    for (const auto& homePtr : homes_) {
        if (!homePtr->quiescent())
            violations.push_back(homePtr->name() +
                                 " controller not quiescent");
    }

    struct Copy {
        std::string agent;
        CohState state;
        const DataBlock* data;
    };
    std::map<Addr, std::vector<Copy>> copies;

    const auto collect = [&copies](const CacheAgent& agent,
                                   const std::string& label) {
        agent.forEachLine([&copies, &label](const CacheAgent::Line& line) {
            copies[line.base].push_back(Copy{label, line.meta.state, &line.data});
        });
    };
    collect(*cpuAgent_, "cpu");
    for (std::size_t i = 0; i < slices_.size(); ++i)
        collect(*slices_[i], sliceCheckerLabel(i));

    for (const auto& [addr, lineCopies] : copies) {
        int owners = 0;
        int exclusives = 0;
        bool anyTransient = false;
        for (const Copy& c : lineCopies) {
            if (!isStable(c.state))
                anyTransient = true;
            if (isOwner(c.state))
                ++owners;
            if (c.state == CohState::kMM || c.state == CohState::kM)
                ++exclusives;
        }
        std::ostringstream where;
        where << std::hex << addr;
        if (anyTransient) {
            violations.push_back("line 0x" + where.str() +
                                 " still transient in a quiesced system");
            continue;
        }
        if (owners > 1)
            violations.push_back("line 0x" + where.str() +
                                 " has multiple owners");
        if (exclusives > 0 && lineCopies.size() > 1)
            violations.push_back("line 0x" + where.str() +
                                 " exclusive with other copies present");
        if (owners == 0) {
            // No owner: every shared copy must match memory.
            const DataBlock& mem = store_->readLine(addr);
            for (const Copy& c : lineCopies) {
                if (!(*c.data == mem))
                    violations.push_back("line 0x" + where.str() + " at " +
                                         c.agent +
                                         " diverges from memory with no owner");
            }
        }
    }
    return violations;
}

} // namespace dscoh
