// Top-level System: builds and wires the entire simulated machine
// (Fig. 2 right: CPU + TLB + caches, GPU SMs + sliced L2, home/DRAM, the
// coherence virtual networks, and — under kDirectStore — the dedicated
// CPU -> GPU-L2 network).
//
// This is the library's primary public entry point: construct a System,
// allocate arrays (allocateArray decides placement by mode, mirroring what
// the source translator does to a program), run CPU programs and launch GPU
// kernels, then read the metrics.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "coherence/home_controller.h"
#include "cpu/cpu_core.h"
#include "fault/fault_injector.h"
#include "gpu/gpu_device.h"
#include "gpu/gpu_l2_slice.h"
#include "mem/dram_pool.h"
#include "mem/interleave.h"
#include "obs/epoch_sampler.h"
#include "vm/address_space.h"

namespace dscoh {

/// Headline metrics of one simulation, as reported in the paper's
/// evaluation (Figs. 4 and 5 and the compulsory-miss discussion).
struct RunMetrics {
    Tick ticks = 0; ///< total execution time ("total ticks", §IV-C)
    std::uint64_t gpuL2Accesses = 0;
    std::uint64_t gpuL2Misses = 0;
    std::uint64_t gpuL2Compulsory = 0;
    double gpuL2MissRate = 0.0;
    std::uint64_t dsFills = 0;
    std::uint64_t dsBypasses = 0;
    std::uint64_t coherenceMessages = 0;
    std::uint64_t coherenceBytes = 0;
    std::uint64_t dsNetworkMessages = 0;
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t checkFailures = 0; ///< functional mismatches (must be 0)
};

class System {
public:
    explicit System(const SystemConfig& config);
    ~System();

    System(const System&) = delete;
    System& operator=(const System&) = delete;

    const SystemConfig& config() const { return config_; }
    SimContext& context() { return ctx_; }
    EventQueue& queue() { return ctx_.queue; }
    /// Per-system log sink: sys.log().enable("coherence") turns on a
    /// component's tracing for this simulation only.
    LogSink& log() { return ctx_.log; }

    /// Attaches a TraceSession recording the categories in @p catMask to
    /// this system's context and returns it. Call before running; the
    /// session lives as long as the System. Without this call, tracing is
    /// off and the hooks cost one pointer test each.
    TraceSession& enableTracing(std::uint32_t catMask = kAllTraceCats);
    /// The attached session, or nullptr when tracing is off.
    TraceSession* trace() { return ctx_.trace.get(); }

    /// Attaches a live CoherenceChecker wired to every coherent agent, the
    /// home controller and the backing store, and returns it. Call before
    /// running. Without this call, checking is off and each hook costs one
    /// pointer test (the exact TraceSession discipline). Query violations
    /// via checker()->violations() after simulate(), and call
    /// checker()->finalize(queue().curTick()) once the queue has drained
    /// for the end-of-run sweep.
    CoherenceChecker& enableChecker(const CoherenceChecker::Params& params = {});
    /// The attached checker, or nullptr when checking is off.
    CoherenceChecker* checker() { return ctx_.checker.get(); }

    /// Attaches a TxnProfiler stamping every coherence transaction with a
    /// span id and per-hop timestamps (latency histograms, critical-path
    /// stage breakdown, per-page counters — see obs/txn_profiler.h). Call
    /// before running; same zero-cost-off discipline as enableTracing.
    /// When a TraceSession recording TraceCat::kTxn is also attached (in
    /// either order), closed spans appear in the Chrome trace as flow
    /// events.
    TxnProfiler& enableTxnProfiler(const TxnProfiler::Params& params = {});
    /// The attached profiler, or nullptr when profiling is off.
    TxnProfiler* txnProfiler() { return ctx_.txnprof.get(); }

    /// Attaches an EpochSampler recording the selected counters every
    /// params.epochTicks into a time series. System ownership makes the
    /// series snapshot-state: it travels in the checkpoint and a restored
    /// run's epoch output is byte-identical to the uninterrupted run's.
    /// Call sampler->start() once the run begins (after any restore) —
    /// WorkloadRunOptions::beforeFirstPhase is the right place.
    EpochSampler& enableEpochSampler(EpochSampler::Params params);
    /// The attached sampler, or nullptr when sampling is off.
    EpochSampler* epochSampler() { return sampler_.get(); }
    AddressSpace& addressSpace() { return *space_; }
    StatRegistry& stats() { return stats_; }

    /// Registers the event engine's own counters ("queue.*": schedule calls,
    /// executed events, peak pending, heap-spilled callbacks) with the stat
    /// registry. Opt-in, same discipline as enableTracing/enableChecker: the
    /// default stat set — and every byte of stats JSON, results.json and
    /// snapshots derived from it — stays exactly what it always was.
    void enableQueueStats() { ctx_.queue.regStats(stats_); }

    /// Allocates a data array the way the (translated) program would:
    /// under kDirectStore, kernel-referenced arrays (@p gpuShared) go into
    /// the reserved DS region via mmap; everything else — and everything
    /// under kCcsm — comes from the ordinary heap.
    Addr allocateArray(std::uint64_t bytes, bool gpuShared);

    /// Allocates a GPU-shared array homed on @p gpu's directory shard: the
    /// DS region cursor is padded until the placement lands every page of
    /// the array on that shard (what the source translator's per-kernel
    /// array homing does). Falls back to plain allocateArray placement when
    /// the system has a single shard or the policy interleaves below array
    /// granularity (kLine).
    Addr allocateArrayHomed(std::uint64_t bytes, std::uint32_t gpu);

    /// Runs @p program on CPU core 0; @p onDone fires when it (and its
    /// trailing implicit fence) completes. Program storage must outlive the
    /// run.
    void runCpuProgram(const CpuProgram& program, std::function<void()> onDone);

    /// Runs @p program on CPU core @p core (multi-core scale-out).
    void runCpuProgramOn(std::uint32_t core, const CpuProgram& program,
                         std::function<void()> onDone);

    /// Launches @p kernel on the GPU its descriptor names (kernel.gpu);
    /// @p onDone fires at grid completion. Kernel storage must outlive the
    /// run.
    void launchKernel(const KernelDesc& kernel, std::function<void()> onDone);

    /// Drains the event queue (runs the simulation to completion) and
    /// returns the final tick.
    Tick simulate();

    RunMetrics metrics() const;

    // Component access for tests, benches and advanced callers. The
    // unqualified singular accessors name instance 0, which is the whole
    // machine in the default 1-GPU / 1-core configuration.
    CpuCore& cpu() { return *cpuCores_[0]; }
    CpuCore& cpuCore(std::size_t c) { return *cpuCores_[c]; }
    std::size_t cpuCoreCount() const { return cpuCores_.size(); }
    CpuCacheAgent& cpuCache() { return *cpuAgent_; }
    GpuDevice& gpu() { return *gpuDevices_[0]; }
    GpuDevice& gpuDevice(std::size_t g) { return *gpuDevices_[g]; }
    std::size_t gpuCount() const { return gpuDevices_.size(); }
    /// Slices are indexed flat: GPU g's slice s is slice(g * slicesPerGpu +
    /// s); sliceCount() spans every GPU.
    GpuL2Slice& slice(std::size_t i) { return *slices_[i]; }
    std::size_t sliceCount() const { return slices_.size(); }
    StreamingMultiprocessor& sm(std::size_t i) { return *sms_[i]; }
    std::size_t smCount() const { return sms_.size(); }
    HomeController& home() { return *homes_[0]; }
    HomeController& homeShard(std::size_t h) { return *homes_[h]; }
    std::size_t homeShardCount() const { return homes_.size(); }
    /// The static interleaving that assigns each address a home GPU/shard.
    const HomeMap& homeMap() const { return homeMap_; }
    BackingStore& backingStore() { return *store_; }
    Network& dsNetwork() { return *dsNet_; }
    /// The DS network's fault injector, or nullptr when faults are off (or
    /// not selected for that network).
    FaultInjector* dsFaultInjector() { return dsFault_; }

    /// The slice where a direct store / uncached read for @p pa lands: the
    /// address's home GPU, then the slice interleave within that GPU.
    NodeId sliceNodeOf(Addr pa) const
    {
        return kFirstSliceNode +
               homeMap_.homeOf(pa) * config_.gpuL2Slices +
               interleave_.sliceOf(pa);
    }

    /// GPU @p g's slice serving @p pa (the SM-side routing).
    NodeId sliceNodeOf(Addr pa, std::uint32_t g) const
    {
        return kFirstSliceNode + g * config_.gpuL2Slices +
               interleave_.sliceOf(pa);
    }

    /// Verifies protocol invariants over the quiesced system (no in-flight
    /// transactions): single owner per line, exclusivity of MM/M, shared
    /// copies matching memory. Returns human-readable violations (empty ==
    /// coherent).
    std::vector<std::string> checkCoherenceInvariants() const;

    /// Names what is still pending across the machine (home busy lines,
    /// agent MSHRs/writebacks/blocked requests, CPU-core buffers). Empty
    /// when nothing is outstanding. The no-progress watchdog appends this
    /// to its deadlock report so the stalled component is named.
    std::string describeOutstandingWork() const;

    /// Hash of this system's configuration (configHashOf) — embedded in
    /// snapshots and used to key the produce-phase snapshot cache.
    std::uint64_t configHash() const;

    /// Writes the complete simulator state to @p path (atomically). Only
    /// valid at a safe point: event queue drained, all transient machinery
    /// (MSHRs, store buffers, in-flight kernels) empty — throws
    /// snap::SnapError naming the busy component otherwise. The workload
    /// runner's phase boundaries are safe points by construction.
    /// @p extra, when set, contributes an additional "runner" section for
    /// driver-level progress (WorkloadRun phase position).
    void snapshotSave(
        const std::string& path,
        const std::function<void(snap::SnapWriter&)>& extra = {}) const;

    /// Restores a snapshot written by snapshotSave() into this System.
    /// Must be called on a freshly constructed instance (nothing run yet)
    /// built from a config with the same configHash() — mismatches throw
    /// snap::SnapError naming both hashes. A system with a checker
    /// attached requires the snapshot to carry the oracle's shadow state.
    /// @p extra, when set, consumes the "runner" section (which must then
    /// be present).
    void snapshotRestore(const std::string& path,
                         const std::function<void(snap::SnapReader&)>& extra = {});

    // Node-id layout (one global space across all networks). With G GPUs,
    // S slices per GPU and C CPU cores: the CPU cache agent is node 0,
    // GPU g's slice s is 1 + g*S + s, directory shard h is 1 + G*S + h
    // (one shard per GPU), CPU core c is 1 + G*S + G + c, and GPU g's
    // SM i follows the cores. At G=1, C=1 this is exactly the historical
    // layout.
    static constexpr NodeId kCpuAgentNode = 0;
    static constexpr NodeId kFirstSliceNode = 1;
    NodeId sliceNode(std::uint32_t g, std::uint32_t s) const
    {
        return kFirstSliceNode + g * config_.gpuL2Slices + s;
    }
    NodeId homeNode(std::uint32_t h = 0) const
    {
        return kFirstSliceNode + config_.numGpus * config_.gpuL2Slices + h;
    }
    NodeId cpuCoreNode(std::uint32_t c = 0) const
    {
        return homeNode(0) + config_.numGpus + c;
    }
    NodeId firstSmNode() const { return cpuCoreNode(0) + config_.cpuCores; }
    NodeId smNode(std::uint32_t g, std::uint32_t i) const
    {
        return firstSmNode() + g * config_.numSms + i;
    }

private:
    /// Checker/invariant label for the slice at flat index @p flatIndex
    /// ("slice<s>" on GPU 0, "gpu<g>.slice<s>" beyond).
    std::string sliceCheckerLabel(std::size_t flatIndex) const;

    SystemConfig config_;
    SimContext ctx_;
    StatRegistry stats_;
    SliceInterleave interleave_;
    HomeMap homeMap_;
    std::unique_ptr<EpochSampler> sampler_;

    std::unique_ptr<BackingStore> store_;
    std::unique_ptr<AddressSpace> space_;
    std::unique_ptr<DramPool> dram_;

    std::unique_ptr<Network> requestNet_;
    std::unique_ptr<Network> forwardNet_;
    std::unique_ptr<Network> responseNet_;
    std::unique_ptr<Network> dsNet_;
    std::unique_ptr<Network> gpuNet_;

    std::vector<std::unique_ptr<FaultInjector>> faults_;
    FaultInjector* dsFault_ = nullptr;

    /// One directory shard per GPU ("home" is shard 0).
    std::vector<std::unique_ptr<HomeController>> homes_;
    std::unique_ptr<CpuCacheAgent> cpuAgent_;
    std::unique_ptr<Tlb> tlb_;
    /// CPU cores share the coherent cpuAgent_ hierarchy ("cpu.core" is
    /// core 0).
    std::vector<std::unique_ptr<CpuCore>> cpuCores_;
    /// Flat across GPUs: GPU g's slice s at index g * slicesPerGpu + s.
    std::vector<std::unique_ptr<GpuL2Slice>> slices_;
    /// Flat across GPUs: GPU g's SM i at index g * numSms + i.
    std::vector<std::unique_ptr<StreamingMultiprocessor>> sms_;
    std::vector<std::unique_ptr<GpuDevice>> gpuDevices_;
};

} // namespace dscoh
