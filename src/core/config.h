// System configuration. Defaults reproduce Table I of the paper.
#pragma once

#include <cstdint>
#include <ostream>

#include "coherence/home_map.h"
#include "coherence/protocol.h"
#include "cpu/tlb.h"
#include "fault/fault_config.h"
#include "fault/io_fault_config.h"
#include "mem/dram.h"
#include "mem/replacement.h"
#include "net/network.h"
#include "sim/log.h"
#include "sim/types.h"

namespace dscoh {

/// The memory-access schemes the paper discusses: the two compared in
/// §IV-C, plus §III-H's standalone variant in which direct store fully
/// replaces CPU<->GPU hardware coherence (no snooping between the CPU and
/// the GPU L2; shared data lives only on the GPU side).
enum class CoherenceMode {
    kCcsm,            ///< baseline cache-coherent shared memory (pull-based)
    kDirectStore,     ///< the paper's push-based scheme atop CCSM
    kDirectStoreOnly, ///< §III-H: direct store as the sole CPU-GPU mechanism
};

const char* to_string(CoherenceMode m);

struct SystemConfig {
    CoherenceMode mode = CoherenceMode::kCcsm;

    // --- CPU (Table I) ---
    std::uint32_t cpuCores = 1;
    std::uint64_t cpuL1dSize = 64 * 1024;  ///< 64 KB, 2 ways
    std::uint32_t cpuL1dWays = 2;
    std::uint64_t cpuL1iSize = 32 * 1024;  ///< 32 KB, 2 ways (I-side traffic
    std::uint32_t cpuL1iWays = 2;          ///  is not simulated; listed for
                                           ///  Table I completeness)
    std::uint64_t cpuL2Size = 2 * 1024 * 1024; ///< 2 MB, 8 ways
    std::uint32_t cpuL2Ways = 8;
    Tick cpuL1Latency = 4;
    Tick cpuL2Latency = 12;
    /// Snoop service at the CPU hierarchy: tag check, and the extra cost of
    /// reading a line out of L2/L1 to supply it cache-to-cache (the slow
    /// pull leg the paper's Fig. 1 contrasts with the direct push).
    Tick cpuSnoopTagLatency = 20;
    Tick cpuDataSupplyLatency = 60;
    Tick cpuDataSupplyInterval = 16; ///< single L2 read port
    std::size_t storeBufferEntries = 8;
    std::size_t rsbEntries = 4; ///< remote-store write-combining entries
    Tlb::Params tlb{};

    // --- GPU (Table I) ---
    std::uint32_t numSms = 16;   ///< 16 SMs, 32 lanes each @ 1.4 GHz
    std::uint32_t lanesPerSm = 32;
    std::uint64_t gpuL1Size = 16 * 1024;      ///< 16 KB + 48 KB shared, 4 ways
    std::uint32_t gpuL1Ways = 4;
    std::uint64_t gpuSharedMemBytes = 48 * 1024;
    std::uint64_t gpuL2Size = 2 * 1024 * 1024; ///< 2 MB, 16 ways, 4 slices
    std::uint32_t gpuL2Ways = 16;
    std::uint32_t gpuL2Slices = 4;
    Tick gpuL1Latency = 24;
    Tick gpuSmemLatency = 30;
    Tick gpuL2TagLatency = 16;
    Tick gpuSnoopTagLatency = 8;
    Tick gpuDataSupplyLatency = 20;
    Tick gpuDataSupplyInterval = 4;  ///< slices are banked
    /// Next-line prefetch depth at the GPU L2 (0 = off; the ablation bench
    /// compares direct store against this pull-based alternative).
    std::uint32_t gpuL2PrefetchDepth = 0;
    std::uint32_t maxResidentBlocks = 4;
    std::size_t maxOutstandingStores = 64;
    Tick kernelLaunchLatency = 2000;

    // --- Memory (Table I: 2 GB, 1 channel, 2 ranks, 8 banks @ 1 GHz) ---
    std::uint64_t memBytes = 2ull * 1024 * 1024 * 1024;
    DramTiming dram{};
    std::uint32_t memChannels = 1; ///< Table I: 1 channel; >1 for ablations

    // --- Interconnect ---
    NetworkParams coherenceNet{40, 32}; ///< request/forward/response vnets
    NetworkParams gpuNet{12, 64};       ///< SM L1s <-> L2 slices
    /// The paper's added dedicated network (§III-G), "exactly the same
    /// characteristics as the network used in many cache coherence systems".
    NetworkParams dsNet{40, 32};

    // --- Multi-GPU scale-out ---
    /// GPUs sharing the DS region. Each GPU owns its own L2 slice group,
    /// SMs and device front end; the DS range is split across them by
    /// shardPolicy with one directory/ordering-point shard per home GPU.
    /// 1 keeps the original single-GPU system bit for bit.
    std::uint32_t numGpus = 1;
    /// Which GPU homes a given physical address (see coherence/home_map.h).
    ShardPolicy shardPolicy = ShardPolicy::kPage;
    /// DS-network shape: full crossbar (uniform hop) or a ring over the
    /// CPU cores + slices with distance-proportional latency.
    DsTopology dsTopology = DsTopology::kCrossbar;
    /// Non-zero enables the timestamp-assisted fast path for GPU<->GPU
    /// reads of remotely-homed lines: the home slice grants a data lease of
    /// this many ticks (stalling its own writes until expiry) and the
    /// requesting slice self-invalidates the copy when the epoch runs out,
    /// falling back to the home-directory pull path on a miss/NACK.
    Tick tsLeaseTicks = 0;

    /// Hybrid policy (SIII-H): only kernel-referenced arrays of at least
    /// this size move to the direct-store region; smaller ones stay on the
    /// heap and use CCSM. 0 = every kernel-referenced array (the
    /// translator's default behaviour).
    std::uint64_t dsMinBytes = 0;

    /// Home-controller protocol: Hammer broadcast (the paper's baseline)
    /// or a precise directory (bench/ablation_protocol compares them).
    bool directoryHome = false;

    // --- Misc ---
    /// Threshold of the per-context LogSink (--log-level / DSCOH_LOG_LEVEL).
    /// Only matters once a component is enabled on the sink; kInfo keeps
    /// the historical behavior.
    LogLevel logLevel = LogLevel::kInfo;
    std::size_t agentMshrs = 16;   ///< CPU-side outstanding line transactions
    std::size_t gpuL2Mshrs = 64;   ///< per-slice outstanding transactions
    std::size_t writebackEntries = 32;
    ReplacementKind replacement = ReplacementKind::kLru;
    std::uint64_t seed = 1;
    /// Deliberate protocol mis-implementation, applied to the CPU cache
    /// agent and GPU L2 slices (checker/fuzzer validation only).
    InjectedBug injectBug = InjectedBug::kNone;
    /// Non-zero: randomize same-(tick, priority) event ordering with this
    /// seed (EventQueue::setTieBreakShuffle). The fuzzer's schedule
    /// perturbation; 0 keeps deterministic insertion order.
    std::uint64_t eventTieBreakSeed = 0;

    // --- Fault injection & direct-store delivery hardening ---
    /// What the injector may do to in-flight messages. Inert by default.
    FaultConfig faults{};
    /// Which networks get an injector (kFaultNet* bits). Unsafe faults
    /// (drop/dup/corrupt/link-down) only ever apply to the DS network; on
    /// coherence/GPU vnets the injector degrades to delay-only.
    std::uint32_t faultNets = kFaultNetDs;
    /// Non-zero enables the hardened direct-store path: the CPU tracks each
    /// forwarded store, the slice acks it by transaction id, and this many
    /// ticks without an ack retransmits (capped exponential backoff).
    Tick dsAckTimeout = 0;
    /// Retransmits before a store degrades to the pull-based fallback path.
    std::uint32_t dsMaxRetries = 4;
    /// Bound on simultaneously in-flight hardened stores (excess queue up).
    std::size_t dsInFlightMax = 8;

    /// Storage-fault model for the durable-write path (snapshots, WALs,
    /// results). Inert by default; tools install the process injector from
    /// it when enabled (see fault/io_fault.h). Hashed only when enabled so
    /// every pre-existing config keeps its historical hash.
    fault::IoFaultConfig ioFaults{};

    /// Table I defaults under the given scheme.
    static SystemConfig paper(CoherenceMode mode)
    {
        SystemConfig cfg;
        cfg.mode = mode;
        return cfg;
    }

    /// Prints the configuration in the shape of the paper's Table I.
    void printTable(std::ostream& os) const;
};

} // namespace dscoh
