// Fundamental simulator-wide types and address helpers.
//
// The whole simulator runs in a single tick domain: 1 tick == 1 CPU cycle at
// the nominal 2 GHz CPU clock. Components whose native clock differs (the
// 1.4 GHz GPU, the 1 GHz DRAM) express their latencies in ticks of this
// domain, exactly as a gem5 Ruby configuration would express them in
// picosecond ticks.
#pragma once

#include <cstdint>

namespace dscoh {

/// Simulation time, in CPU cycles (see file comment).
using Tick = std::uint64_t;

/// Physical or virtual address. Virtual addresses may set bit 46 (the
/// direct-store region tag, see vm/ds_mmap.h); physical addresses fit in the
/// simulated 2 GB of DRAM.
using Addr = std::uint64_t;

/// Identifies one endpoint on an interconnection network (a cache controller,
/// the memory controller, an SM, ...). Dense, assigned by the System builder.
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = 0xffffffffu;

/// Cache line size used across the whole system (Table I: 128 bytes).
inline constexpr std::uint32_t kLineSize = 128;
inline constexpr std::uint32_t kLineShift = 7;

/// Page size of the simulated virtual memory system.
inline constexpr std::uint32_t kPageSize = 4096;
inline constexpr std::uint32_t kPageShift = 12;

/// Returns the line-aligned base of @p a.
constexpr Addr lineAlign(Addr a) { return a & ~static_cast<Addr>(kLineSize - 1); }

/// Returns the offset of @p a within its cache line.
constexpr std::uint32_t lineOffset(Addr a)
{
    return static_cast<std::uint32_t>(a & (kLineSize - 1));
}

/// Returns the line number (address >> log2(line size)).
constexpr Addr lineNumber(Addr a) { return a >> kLineShift; }

/// Returns the page-aligned base of @p a.
constexpr Addr pageAlign(Addr a) { return a & ~static_cast<Addr>(kPageSize - 1); }

} // namespace dscoh
