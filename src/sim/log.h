// Lightweight leveled logging with per-component enable flags.
//
// Logging is off by default (simulations are hot loops); tests and debugging
// sessions turn on a component via sink.enable("coherence"). Messages carry
// the current tick when a queue is attached.
//
// There is deliberately no global instance: every SimContext owns its own
// LogSink, so concurrently running simulations (ExperimentEngine) never share
// logging state, and a sink can never outlive the EventQueue it stamps ticks
// from — both were real hazards of the old process-wide singleton.
#pragma once

#include <cstdint>
#include <functional>
#include <iostream>
#include <ostream>
#include <set>
#include <sstream>
#include <string>
#include <string_view>

#include "sim/event_queue.h"

namespace dscoh {

/// Message severities, most severe first. A sink prints a message when its
/// component is enabled *and* the message's level is at or above the sink's
/// threshold (kError is always above; kDebug only when asked for).
enum class LogLevel : std::uint8_t {
    kError = 0,
    kWarn = 1,
    kInfo = 2,
    kDebug = 3,
};

inline const char* to_string(LogLevel l)
{
    switch (l) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
    }
    return "?";
}

class LogSink {
public:
    LogSink() = default;

    LogSink(const LogSink&) = delete;
    LogSink& operator=(const LogSink&) = delete;

    void enable(const std::string& component)
    {
        enabled_.insert(component);
        anyOn_ = true;
    }
    void disable(const std::string& component)
    {
        enabled_.erase(component);
        anyOn_ = !enabled_.empty();
    }
    void disableAll()
    {
        enabled_.clear();
        anyOn_ = false;
    }

    /// Threshold below which messages are dropped even for enabled
    /// components. Default kInfo: DSCOH_LOG (info-level) behaves exactly as
    /// it always has; kDebug additionally lets debug messages through.
    void setThreshold(LogLevel l) { threshold_ = l; }
    LogLevel threshold() const { return threshold_; }

    /// The one-load fast gate the logging macros test first: false in the
    /// common all-off case, making a disabled log site a single branch with
    /// no string construction, lookup, or formatting of any kind.
    bool anyEnabled() const { return anyOn_; }

    /// Components are looked up by string_view through the set's transparent
    /// comparator, so checking never materializes a std::string.
    bool isEnabled(std::string_view component,
                   LogLevel lvl = LogLevel::kInfo) const
    {
        if (!anyOn_) // fast path: the common all-off case
            return false;
        if (lvl > threshold_)
            return false;
        return enabled_.find(component) != enabled_.end() ||
               enabled_.find(std::string_view("*")) != enabled_.end();
    }

    /// Attach the queue whose curTick() stamps messages (may be null).
    void attachQueue(const EventQueue* q) { queue_ = q; }

    /// Redirect output (default: std::clog). Tests capture through this.
    void streamTo(std::ostream& os) { os_ = &os; }

    void write(std::string_view component, std::string_view msg,
               LogLevel lvl = LogLevel::kInfo) const
    {
        if (!isEnabled(component, lvl))
            return;
        if (queue_ != nullptr)
            *os_ << '[' << queue_->curTick() << "] ";
        *os_ << component << ": " << msg << '\n';
    }

private:
    std::set<std::string, std::less<>> enabled_;
    bool anyOn_ = false;
    LogLevel threshold_ = LogLevel::kInfo;
    const EventQueue* queue_ = nullptr;
    std::ostream* os_ = &std::clog;
};

/// Usage: DSCOH_LOG_TO(sink, "coherence", "GETS " << std::hex << addr);
/// The stream expression is only evaluated when the component is enabled
/// at the given level (DSCOH_LOG_TO logs at kInfo). The anyEnabled() gate
/// runs first: with logging off (the hot-loop default) a log site costs one
/// bool load and a predictable branch — no string, no lookup, no stream.
#define DSCOH_LOG_TO_AT(sink, level, component, expr)                        \
    do {                                                                     \
        if ((sink).anyEnabled() && (sink).isEnabled(component, level)) {     \
            std::ostringstream dscoh_log_os;                                 \
            dscoh_log_os << expr;                                            \
            (sink).write(component, dscoh_log_os.str(), level);              \
        }                                                                    \
    } while (false)

#define DSCOH_LOG_TO(sink, component, expr)                                  \
    DSCOH_LOG_TO_AT(sink, ::dscoh::LogLevel::kInfo, component, expr)

/// Member-function shorthand inside SimObject subclasses: logs through the
/// owning SimContext's sink. DSCOH_LOG("coherence", "GETS " << addr);
#define DSCOH_LOG(component, expr) DSCOH_LOG_TO(this->log(), component, expr)

/// Leveled variant: DSCOH_LOG_AT(LogLevel::kDebug, "coherence", ...).
#define DSCOH_LOG_AT(level, component, expr)                                 \
    DSCOH_LOG_TO_AT(this->log(), level, component, expr)

} // namespace dscoh
