// Lightweight leveled logging with per-component enable flags.
//
// Logging is off by default (simulations are hot loops); tests and debugging
// sessions turn on a component via sink.enable("coherence"). Messages carry
// the current tick when a queue is attached.
//
// There is deliberately no global instance: every SimContext owns its own
// LogSink, so concurrently running simulations (ExperimentEngine) never share
// logging state, and a sink can never outlive the EventQueue it stamps ticks
// from — both were real hazards of the old process-wide singleton.
#pragma once

#include <iostream>
#include <ostream>
#include <set>
#include <sstream>
#include <string>

#include "sim/event_queue.h"

namespace dscoh {

class LogSink {
public:
    LogSink() = default;

    LogSink(const LogSink&) = delete;
    LogSink& operator=(const LogSink&) = delete;

    void enable(const std::string& component) { enabled_.insert(component); }
    void disable(const std::string& component) { enabled_.erase(component); }
    void disableAll() { enabled_.clear(); }
    bool isEnabled(const std::string& component) const
    {
        if (enabled_.empty()) // fast path: the common all-off case
            return false;
        return enabled_.count(component) != 0 || enabled_.count("*") != 0;
    }

    /// Attach the queue whose curTick() stamps messages (may be null).
    void attachQueue(const EventQueue* q) { queue_ = q; }

    /// Redirect output (default: std::clog). Tests capture through this.
    void streamTo(std::ostream& os) { os_ = &os; }

    void write(const std::string& component, const std::string& msg) const
    {
        if (!isEnabled(component))
            return;
        if (queue_ != nullptr)
            *os_ << '[' << queue_->curTick() << "] ";
        *os_ << component << ": " << msg << '\n';
    }

private:
    std::set<std::string> enabled_;
    const EventQueue* queue_ = nullptr;
    std::ostream* os_ = &std::clog;
};

/// Usage: DSCOH_LOG_TO(sink, "coherence", "GETS " << std::hex << addr);
/// The stream expression is only evaluated when the component is enabled.
#define DSCOH_LOG_TO(sink, component, expr)                                  \
    do {                                                                     \
        if ((sink).isEnabled(component)) {                                   \
            std::ostringstream dscoh_log_os;                                 \
            dscoh_log_os << expr;                                            \
            (sink).write(component, dscoh_log_os.str());                     \
        }                                                                    \
    } while (false)

/// Member-function shorthand inside SimObject subclasses: logs through the
/// owning SimContext's sink. DSCOH_LOG("coherence", "GETS " << addr);
#define DSCOH_LOG(component, expr) DSCOH_LOG_TO(this->log(), component, expr)

} // namespace dscoh
