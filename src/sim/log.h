// Lightweight leveled logging with per-component enable flags.
//
// Logging is off by default (simulations are hot loops); tests and debugging
// sessions turn on a component via Log::enable("coherence"). Messages carry
// the current tick when a queue is attached.
#pragma once

#include <iostream>
#include <set>
#include <sstream>
#include <string>

#include "sim/event_queue.h"

namespace dscoh {

class Log {
public:
    static Log& instance()
    {
        static Log log;
        return log;
    }

    void enable(const std::string& component) { enabled_.insert(component); }
    void disable(const std::string& component) { enabled_.erase(component); }
    void disableAll() { enabled_.clear(); }
    bool isEnabled(const std::string& component) const
    {
        return enabled_.count(component) != 0 || enabled_.count("*") != 0;
    }

    /// Attach the queue whose curTick() stamps messages (may be null).
    void attachQueue(const EventQueue* q) { queue_ = q; }

    void write(const std::string& component, const std::string& msg) const
    {
        if (!isEnabled(component))
            return;
        if (queue_ != nullptr)
            std::clog << '[' << queue_->curTick() << "] ";
        std::clog << component << ": " << msg << '\n';
    }

private:
    Log() = default;
    std::set<std::string> enabled_;
    const EventQueue* queue_ = nullptr;
};

/// Usage: DSCOH_LOG("coherence", "GETS " << std::hex << addr);
/// The stream expression is only evaluated when the component is enabled.
#define DSCOH_LOG(component, expr)                                          \
    do {                                                                    \
        if (::dscoh::Log::instance().isEnabled(component)) {                \
            std::ostringstream dscoh_log_os;                                \
            dscoh_log_os << expr;                                           \
            ::dscoh::Log::instance().write(component, dscoh_log_os.str());  \
        }                                                                   \
    } while (false)

} // namespace dscoh
