// Minimal statistics framework in the spirit of gem5's Stats package.
//
// Components own Counter / Scalar / Histogram members and register them with
// a StatRegistry under a hierarchical dotted name; the registry can dump a
// formatted report or be queried programmatically by the bench harnesses.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "snap/snapshot.h"

namespace dscoh {

/// Monotonically increasing event count.
class Counter {
public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }
    /// Snapshot restore only — counters otherwise only ever increment.
    void set(std::uint64_t v) { value_ = v; }

private:
    std::uint64_t value_ = 0;
};

/// Arbitrary scalar sample (gauges, accumulated latencies, ...).
class Scalar {
public:
    void set(double v) { value_ = v; }
    void add(double v) { value_ += v; }
    double value() const { return value_; }
    void reset() { value_ = 0.0; }

private:
    double value_ = 0.0;
};

/// Fixed-bucket histogram with overflow bucket; tracks sum/min/max so the
/// mean is exact even when samples fall in the overflow bucket.
class Histogram {
public:
    /// Buckets are [0,width), [width,2*width), ..., plus one overflow bucket.
    explicit Histogram(std::uint64_t bucketWidth = 16, std::size_t buckets = 32)
        : width_(bucketWidth == 0 ? 1 : bucketWidth), counts_(buckets + 1, 0)
    {
    }

    void sample(std::uint64_t v);

    std::uint64_t samples() const { return samples_; }
    double mean() const { return samples_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(samples_); }
    std::uint64_t min() const { return samples_ == 0 ? 0 : min_; }
    std::uint64_t max() const { return max_; }
    std::uint64_t bucketWidth() const { return width_; }
    const std::vector<std::uint64_t>& buckets() const { return counts_; }
    void reset();

    /// Estimated value at percentile @p p (0..100), linearly interpolated
    /// within the bucket the rank falls into. Exact at the edges: p == 0
    /// returns min(), p == 100 returns max(); results are clamped into
    /// [min, max], which also bounds the overflow bucket's estimate.
    /// Returns 0 with no samples; throws std::invalid_argument outside
    /// [0, 100].
    double percentile(double p) const;

    /// Serializes counts/samples/sum/min/max (geometry is config-derived
    /// and must already match on restore).
    void snapSave(snap::SnapWriter& w) const;
    void snapRestore(snap::SnapReader& r);

private:
    std::uint64_t width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t samples_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/// Hierarchical registry of named statistics. Names use dots, e.g.
/// "gpu.l2.slice0.misses". Pointers registered here must outlive the
/// registry's last use (components and registry are both owned by System).
class StatRegistry {
public:
    void registerCounter(std::string name, Counter* c);
    void registerScalar(std::string name, Scalar* s);
    void registerHistogram(std::string name, Histogram* h);

    /// Value of a registered counter; throws std::out_of_range if unknown.
    std::uint64_t counter(const std::string& name) const;
    /// Value of a registered scalar; throws std::out_of_range if unknown.
    double scalar(const std::string& name) const;
    /// Histogram lookup; throws std::out_of_range if unknown.
    const Histogram& histogram(const std::string& name) const;

    bool hasCounter(const std::string& name) const { return counters_.count(name) != 0; }

    /// Sum of all counters whose name matches "prefix*" (prefix match).
    std::uint64_t sumCounters(const std::string& prefix) const;

    /// Writes a sorted, formatted report of every registered stat.
    void dump(std::ostream& os) const;

    /// Writes every registered stat as one JSON object with a versioned
    /// schema ("dscoh-stats-v1"): counters and scalars as name -> value
    /// maps, histograms with samples/mean/min/max/p50/p90/p99 plus raw
    /// buckets. @p extraMember, when non-empty, must be a pre-rendered
    /// `"key": value` fragment and is appended as one more top-level member
    /// (dscoh_run uses it to embed the epoch time-series).
    void dumpJson(std::ostream& os, const std::string& extraMember = {}) const;

    std::vector<std::string> counterNames() const;

    /// Serializes every registered stat by name (sorted map order). The
    /// restore side writes values back *through* the registered pointers
    /// into the owning components, and insists the two registries hold
    /// exactly the same names — a drifted stat set is a layout mismatch.
    void snapSave(snap::SnapWriter& w) const;
    void snapRestore(snap::SnapReader& r);

private:
    std::map<std::string, Counter*> counters_;
    std::map<std::string, Scalar*> scalars_;
    std::map<std::string, Histogram*> histograms_;
};

} // namespace dscoh
