// Base class for every simulated component.
//
// A SimObject has a hierarchical name, a reference to the global EventQueue,
// and a hook for registering its statistics. Construction order defines the
// system; there is no separate elaboration phase.
#pragma once

#include <string>
#include <utility>

#include "sim/event_queue.h"
#include "sim/stats.h"

namespace dscoh {

class SimObject {
public:
    SimObject(std::string name, EventQueue& queue)
        : name_(std::move(name)), queue_(queue)
    {
    }
    virtual ~SimObject() = default;

    SimObject(const SimObject&) = delete;
    SimObject& operator=(const SimObject&) = delete;

    const std::string& name() const { return name_; }
    EventQueue& queue() { return queue_; }
    const EventQueue& queue() const { return queue_; }
    Tick curTick() const { return queue_.curTick(); }

    /// Registers this component's statistics under its name.
    virtual void regStats(StatRegistry& registry) { static_cast<void>(registry); }

protected:
    std::string statName(const std::string& leaf) const { return name_ + "." + leaf; }

private:
    std::string name_;
    EventQueue& queue_;
};

} // namespace dscoh
