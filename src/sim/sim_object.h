// Base class for every simulated component.
//
// A SimObject has a hierarchical name, a reference to its owning SimContext
// (event queue + log sink), and a hook for registering its statistics.
// Construction order defines the system; there is no separate elaboration
// phase. Components belonging to different contexts share no state, so
// independent simulations can run on different threads concurrently.
#pragma once

#include <string>
#include <utility>

#include "sim/sim_context.h"
#include "sim/stats.h"
#include "snap/snapshot.h"

namespace dscoh {

/// Snapshottable gives every component snapSave/snapRestore hooks (no-op by
/// default) that System::snapshotSave/snapshotRestore invoke in a fixed
/// order, one named snapshot section per component.
class SimObject : public snap::Snapshottable {
public:
    SimObject(std::string name, SimContext& ctx)
        : name_(std::move(name)), ctx_(ctx)
    {
    }
    virtual ~SimObject() = default;

    SimObject(const SimObject&) = delete;
    SimObject& operator=(const SimObject&) = delete;

    const std::string& name() const { return name_; }
    SimContext& context() const { return ctx_; }
    EventQueue& queue() { return ctx_.queue; }
    const EventQueue& queue() const { return ctx_.queue; }
    LogSink& log() const { return ctx_.log; }
    Tick curTick() const { return ctx_.queue.curTick(); }

    /// The context's trace session when one is attached *and* records
    /// @p cat, else nullptr. The tracing hooks in hot paths are all of the
    /// form `if (TraceSession* t = tracing(...)) t->...;` — one pointer
    /// load and branch when tracing is off.
    TraceSession* tracing(TraceCat cat) const
    {
        TraceSession* t = ctx_.trace.get();
        return t != nullptr && t->enabled(cat) ? t : nullptr;
    }

    /// The context's coherence checker when one is attached, else nullptr.
    /// Checker hooks mirror the tracing hooks:
    /// `if (CoherenceChecker* c = checking()) c->...;`.
    CoherenceChecker* checking() const { return ctx_.checker.get(); }

    /// The context's transaction profiler when one is attached, else
    /// nullptr. Profiling hooks mirror the tracing hooks:
    /// `if (TxnProfiler* p = profiling()) p->...;`.
    TxnProfiler* profiling() const { return ctx_.txnprof.get(); }

    /// Registers this component's statistics under its name.
    virtual void regStats(StatRegistry& registry) { static_cast<void>(registry); }

protected:
    std::string statName(const std::string& leaf) const { return name_ + "." + leaf; }

private:
    std::string name_;
    SimContext& ctx_;
};

} // namespace dscoh
