#include "sim/stats.h"

#include <iomanip>
#include <stdexcept>
#include <utility>

namespace dscoh {

void Histogram::sample(std::uint64_t v)
{
    const std::size_t bucket =
        std::min(static_cast<std::size_t>(v / width_), counts_.size() - 1);
    ++counts_[bucket];
    if (samples_ == 0 || v < min_)
        min_ = v;
    max_ = std::max(max_, v);
    sum_ += v;
    ++samples_;
}

void Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    samples_ = sum_ = min_ = max_ = 0;
}

double Histogram::percentile(double p) const
{
    if (p < 0.0 || p > 100.0)
        throw std::invalid_argument("percentile must be in [0, 100]");
    if (samples_ == 0)
        return 0.0;
    if (p == 0.0)
        return static_cast<double>(min());
    if (p == 100.0)
        return static_cast<double>(max_);

    const double rank = p / 100.0 * static_cast<double>(samples_);
    double below = 0.0;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        if (counts_[b] == 0)
            continue;
        const double inBucket = static_cast<double>(counts_[b]);
        if (rank > below + inBucket) {
            below += inBucket;
            continue;
        }
        // The rank lands in bucket b: interpolate linearly across it. The
        // overflow bucket has no upper edge of its own; max() bounds it.
        const double lo = static_cast<double>(b) * static_cast<double>(width_);
        const double hi = b + 1 == counts_.size()
                              ? static_cast<double>(max_)
                              : lo + static_cast<double>(width_);
        const double frac = (rank - below) / inBucket;
        const double v = lo + frac * (std::max(hi, lo) - lo);
        return std::clamp(v, static_cast<double>(min()),
                          static_cast<double>(max_));
    }
    return static_cast<double>(max_);
}

void StatRegistry::registerCounter(std::string name, const Counter* c)
{
    counters_.emplace(std::move(name), c);
}

void StatRegistry::registerScalar(std::string name, const Scalar* s)
{
    scalars_.emplace(std::move(name), s);
}

void StatRegistry::registerHistogram(std::string name, const Histogram* h)
{
    histograms_.emplace(std::move(name), h);
}

std::uint64_t StatRegistry::counter(const std::string& name) const
{
    return counters_.at(name)->value();
}

double StatRegistry::scalar(const std::string& name) const
{
    return scalars_.at(name)->value();
}

const Histogram& StatRegistry::histogram(const std::string& name) const
{
    return *histograms_.at(name);
}

std::uint64_t StatRegistry::sumCounters(const std::string& prefix) const
{
    std::uint64_t total = 0;
    for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        total += it->second->value();
    }
    return total;
}

void StatRegistry::dump(std::ostream& os) const
{
    for (const auto& [name, c] : counters_)
        os << std::left << std::setw(52) << name << ' ' << c->value() << '\n';
    for (const auto& [name, s] : scalars_)
        os << std::left << std::setw(52) << name << ' ' << s->value() << '\n';
    for (const auto& [name, h] : histograms_) {
        os << std::left << std::setw(52) << name << " samples=" << h->samples()
           << " mean=" << h->mean() << " min=" << h->min() << " max=" << h->max()
           << '\n';
    }
}

namespace {

std::string jsonEscapeName(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

void StatRegistry::dumpJson(std::ostream& os,
                            const std::string& extraMember) const
{
    os << "{\n  \"schema\": \"dscoh-stats-v1\",\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, c] : counters_) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscapeName(name)
           << "\": " << c->value();
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"scalars\": {";
    first = true;
    for (const auto& [name, s] : scalars_) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscapeName(name)
           << "\": " << s->value();
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : histograms_) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscapeName(name)
           << "\": {\"samples\": " << h->samples()
           << ", \"mean\": " << h->mean() << ", \"min\": " << h->min()
           << ", \"max\": " << h->max()
           << ", \"p50\": " << h->percentile(50.0)
           << ", \"p90\": " << h->percentile(90.0)
           << ", \"p99\": " << h->percentile(99.0)
           << ", \"bucketWidth\": " << h->bucketWidth() << ", \"buckets\": [";
        const auto& buckets = h->buckets();
        for (std::size_t b = 0; b < buckets.size(); ++b)
            os << (b == 0 ? "" : ", ") << buckets[b];
        os << "]}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "}";
    if (!extraMember.empty())
        os << ",\n  " << extraMember;
    os << "\n}\n";
}

std::vector<std::string> StatRegistry::counterNames() const
{
    std::vector<std::string> names;
    names.reserve(counters_.size());
    for (const auto& [name, c] : counters_) {
        static_cast<void>(c);
        names.push_back(name);
    }
    return names;
}

} // namespace dscoh
