#include "sim/stats.h"

#include <iomanip>
#include <stdexcept>
#include <utility>

namespace dscoh {

void Histogram::sample(std::uint64_t v)
{
    const std::size_t bucket =
        std::min(static_cast<std::size_t>(v / width_), counts_.size() - 1);
    ++counts_[bucket];
    if (samples_ == 0 || v < min_)
        min_ = v;
    max_ = std::max(max_, v);
    sum_ += v;
    ++samples_;
}

void Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    samples_ = sum_ = min_ = max_ = 0;
}

double Histogram::percentile(double p) const
{
    if (p < 0.0 || p > 100.0)
        throw std::invalid_argument("percentile must be in [0, 100]");
    if (samples_ == 0)
        return 0.0;
    if (p == 0.0)
        return static_cast<double>(min());
    if (p == 100.0)
        return static_cast<double>(max_);

    const double rank = p / 100.0 * static_cast<double>(samples_);
    double below = 0.0;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        if (counts_[b] == 0)
            continue;
        const double inBucket = static_cast<double>(counts_[b]);
        if (rank > below + inBucket) {
            below += inBucket;
            continue;
        }
        // The rank lands in bucket b: interpolate linearly across it. The
        // overflow bucket has no upper edge of its own; max() bounds it.
        const double lo = static_cast<double>(b) * static_cast<double>(width_);
        const double hi = b + 1 == counts_.size()
                              ? static_cast<double>(max_)
                              : lo + static_cast<double>(width_);
        const double frac = (rank - below) / inBucket;
        const double v = lo + frac * (std::max(hi, lo) - lo);
        return std::clamp(v, static_cast<double>(min()),
                          static_cast<double>(max_));
    }
    return static_cast<double>(max_);
}

void Histogram::snapSave(snap::SnapWriter& w) const
{
    w.u64(static_cast<std::uint64_t>(counts_.size()));
    for (const std::uint64_t c : counts_)
        w.u64(c);
    w.u64(samples_);
    w.u64(sum_);
    w.u64(min_);
    w.u64(max_);
}

void Histogram::snapRestore(snap::SnapReader& r)
{
    const std::uint64_t n = r.u64();
    if (n != counts_.size())
        throw snap::SnapError("histogram bucket count mismatch: snapshot " +
                              std::to_string(n) + ", this build " +
                              std::to_string(counts_.size()));
    for (auto& c : counts_)
        c = r.u64();
    samples_ = r.u64();
    sum_ = r.u64();
    min_ = r.u64();
    max_ = r.u64();
}

void StatRegistry::registerCounter(std::string name, Counter* c)
{
    counters_.emplace(std::move(name), c);
}

void StatRegistry::registerScalar(std::string name, Scalar* s)
{
    scalars_.emplace(std::move(name), s);
}

void StatRegistry::registerHistogram(std::string name, Histogram* h)
{
    histograms_.emplace(std::move(name), h);
}

std::uint64_t StatRegistry::counter(const std::string& name) const
{
    return counters_.at(name)->value();
}

double StatRegistry::scalar(const std::string& name) const
{
    return scalars_.at(name)->value();
}

const Histogram& StatRegistry::histogram(const std::string& name) const
{
    return *histograms_.at(name);
}

std::uint64_t StatRegistry::sumCounters(const std::string& prefix) const
{
    std::uint64_t total = 0;
    for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        total += it->second->value();
    }
    return total;
}

void StatRegistry::dump(std::ostream& os) const
{
    for (const auto& [name, c] : counters_)
        os << std::left << std::setw(52) << name << ' ' << c->value() << '\n';
    for (const auto& [name, s] : scalars_)
        os << std::left << std::setw(52) << name << ' ' << s->value() << '\n';
    for (const auto& [name, h] : histograms_) {
        os << std::left << std::setw(52) << name << " samples=" << h->samples()
           << " mean=" << h->mean() << " min=" << h->min() << " max=" << h->max()
           << '\n';
    }
}

namespace {

std::string jsonEscapeName(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

void StatRegistry::dumpJson(std::ostream& os,
                            const std::string& extraMember) const
{
    os << "{\n  \"schema\": \"dscoh-stats-v1\",\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, c] : counters_) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscapeName(name)
           << "\": " << c->value();
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"scalars\": {";
    first = true;
    for (const auto& [name, s] : scalars_) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscapeName(name)
           << "\": " << s->value();
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : histograms_) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscapeName(name)
           << "\": {\"samples\": " << h->samples()
           << ", \"mean\": " << h->mean() << ", \"min\": " << h->min()
           << ", \"max\": " << h->max()
           << ", \"p50\": " << h->percentile(50.0)
           << ", \"p90\": " << h->percentile(90.0)
           << ", \"p99\": " << h->percentile(99.0)
           << ", \"bucketWidth\": " << h->bucketWidth() << ", \"buckets\": [";
        const auto& buckets = h->buckets();
        for (std::size_t b = 0; b < buckets.size(); ++b)
            os << (b == 0 ? "" : ", ") << buckets[b];
        os << "]}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "}";
    if (!extraMember.empty())
        os << ",\n  " << extraMember;
    os << "\n}\n";
}

void StatRegistry::snapSave(snap::SnapWriter& w) const
{
    w.u64(counters_.size());
    for (const auto& [name, c] : counters_) {
        w.str(name);
        w.u64(c->value());
    }
    w.u64(scalars_.size());
    for (const auto& [name, s] : scalars_) {
        w.str(name);
        w.f64(s->value());
    }
    w.u64(histograms_.size());
    for (const auto& [name, h] : histograms_) {
        w.str(name);
        h->snapSave(w);
    }
}

void StatRegistry::snapRestore(snap::SnapReader& r)
{
    const std::uint64_t nCounters = r.u64();
    if (nCounters != counters_.size())
        throw snap::SnapError("stat registry mismatch: snapshot has " +
                              std::to_string(nCounters) +
                              " counters, this build registered " +
                              std::to_string(counters_.size()));
    for (auto& [name, c] : counters_) {
        const std::string saved = r.str();
        if (saved != name)
            throw snap::SnapError("stat registry mismatch: snapshot counter '" +
                                  saved + "' vs registered '" + name + "'");
        c->set(r.u64());
    }
    const std::uint64_t nScalars = r.u64();
    if (nScalars != scalars_.size())
        throw snap::SnapError("stat registry mismatch: snapshot has " +
                              std::to_string(nScalars) +
                              " scalars, this build registered " +
                              std::to_string(scalars_.size()));
    for (auto& [name, s] : scalars_) {
        const std::string saved = r.str();
        if (saved != name)
            throw snap::SnapError("stat registry mismatch: snapshot scalar '" +
                                  saved + "' vs registered '" + name + "'");
        s->set(r.f64());
    }
    const std::uint64_t nHistograms = r.u64();
    if (nHistograms != histograms_.size())
        throw snap::SnapError("stat registry mismatch: snapshot has " +
                              std::to_string(nHistograms) +
                              " histograms, this build registered " +
                              std::to_string(histograms_.size()));
    for (auto& [name, h] : histograms_) {
        const std::string saved = r.str();
        if (saved != name)
            throw snap::SnapError(
                "stat registry mismatch: snapshot histogram '" + saved +
                "' vs registered '" + name + "'");
        h->snapRestore(r);
    }
}

std::vector<std::string> StatRegistry::counterNames() const
{
    std::vector<std::string> names;
    names.reserve(counters_.size());
    for (const auto& [name, c] : counters_) {
        static_cast<void>(c);
        names.push_back(name);
    }
    return names;
}

} // namespace dscoh
