#include "sim/stats.h"

#include <iomanip>
#include <stdexcept>
#include <utility>

namespace dscoh {

void Histogram::sample(std::uint64_t v)
{
    const std::size_t bucket =
        std::min(static_cast<std::size_t>(v / width_), counts_.size() - 1);
    ++counts_[bucket];
    if (samples_ == 0 || v < min_)
        min_ = v;
    max_ = std::max(max_, v);
    sum_ += v;
    ++samples_;
}

void Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    samples_ = sum_ = min_ = max_ = 0;
}

void StatRegistry::registerCounter(std::string name, const Counter* c)
{
    counters_.emplace(std::move(name), c);
}

void StatRegistry::registerScalar(std::string name, const Scalar* s)
{
    scalars_.emplace(std::move(name), s);
}

void StatRegistry::registerHistogram(std::string name, const Histogram* h)
{
    histograms_.emplace(std::move(name), h);
}

std::uint64_t StatRegistry::counter(const std::string& name) const
{
    return counters_.at(name)->value();
}

double StatRegistry::scalar(const std::string& name) const
{
    return scalars_.at(name)->value();
}

const Histogram& StatRegistry::histogram(const std::string& name) const
{
    return *histograms_.at(name);
}

std::uint64_t StatRegistry::sumCounters(const std::string& prefix) const
{
    std::uint64_t total = 0;
    for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        total += it->second->value();
    }
    return total;
}

void StatRegistry::dump(std::ostream& os) const
{
    for (const auto& [name, c] : counters_)
        os << std::left << std::setw(52) << name << ' ' << c->value() << '\n';
    for (const auto& [name, s] : scalars_)
        os << std::left << std::setw(52) << name << ' ' << s->value() << '\n';
    for (const auto& [name, h] : histograms_) {
        os << std::left << std::setw(52) << name << " samples=" << h->samples()
           << " mean=" << h->mean() << " min=" << h->min() << " max=" << h->max()
           << '\n';
    }
}

std::vector<std::string> StatRegistry::counterNames() const
{
    std::vector<std::string> names;
    names.reserve(counters_.size());
    for (const auto& [name, c] : counters_) {
        static_cast<void>(c);
        names.push_back(name);
    }
    return names;
}

} // namespace dscoh
