// Deterministic, seedable PRNG (splitmix64 / xoshiro256**).
//
// The standard library engines are implementation-defined across platforms;
// using our own keeps every simulation bit-reproducible anywhere, which the
// property tests rely on.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace dscoh {

/// splitmix64: used to expand a single seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, deterministic.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedull) { reseed(seed); }

    void reseed(std::uint64_t seed)
    {
        std::uint64_t sm = seed;
        for (auto& word : s_)
            word = splitmix64(sm);
    }

    std::uint64_t next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /// Uniform in [0, bound). bound == 0 returns 0.
    std::uint64_t below(std::uint64_t bound)
    {
        if (bound == 0)
            return 0;
        // Rejection sampling to avoid modulo bias.
        const std::uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /// Uniform in [lo, hi] inclusive.
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /// Uniform double in [0, 1).
    double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

    /// True with probability p.
    bool chance(double p) { return unit() < p; }

    /// Raw engine state, for checkpointing a stream mid-sequence.
    std::array<std::uint64_t, 4> state() const
    {
        return {s_[0], s_[1], s_[2], s_[3]};
    }
    void setState(const std::array<std::uint64_t, 4>& s)
    {
        for (std::size_t i = 0; i < 4; ++i)
            s_[i] = s[i];
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4] = {};
};

} // namespace dscoh
