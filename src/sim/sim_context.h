// One simulation's private universe.
//
// A SimContext bundles the EventQueue that drives a simulated machine with
// the LogSink its components write through and the (optional) TraceSession
// they record structured events into. Every System owns exactly one; nothing
// inside a context is shared with any other context, which is the invariant
// the parallel ExperimentEngine relies on: independent simulations may run
// concurrently on different threads with no synchronisation at all.
#pragma once

#include <memory>

#include "check/coherence_checker.h"
#include "net/message.h"
#include "obs/trace_session.h"
#include "obs/txn_profiler.h"
#include "sim/event_queue.h"
#include "sim/log.h"
#include "sim/object_pool.h"

namespace dscoh {

struct SimContext {
    SimContext() { log.attachQueue(&queue); }

    SimContext(const SimContext&) = delete;
    SimContext& operator=(const SimContext&) = delete;

    EventQueue queue;
    LogSink log;

    /// Arena of Message slots shared by every network and agent in this
    /// context: send -> deliver moves a message into a pooled slot and the
    /// delivery event captures only the slot pointer, so the hot message
    /// path performs no per-message allocation and fits the event queue's
    /// inline callback buffer.
    ObjectPool<Message> msgPool;

    /// Structured event tracing. Null (the default) means tracing is off
    /// and every hook in the components costs one pointer test; see
    /// System::enableTracing().
    std::unique_ptr<TraceSession> trace;

    /// Live coherence invariant oracle. Null (the default) means checking
    /// is off at the same one-pointer-test cost as tracing; see
    /// System::enableChecker().
    std::unique_ptr<CoherenceChecker> checker;

    /// Transaction-span latency profiler. Null (the default) means
    /// profiling is off at the same one-pointer-test cost as tracing; see
    /// System::enableTxnProfiler().
    std::unique_ptr<TxnProfiler> txnprof;
};

} // namespace dscoh
