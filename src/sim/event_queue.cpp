#include "sim/event_queue.h"

#include <array>
#include <cassert>
#include <string>
#include <utility>

namespace dscoh {

void EventQueue::schedule(Tick when, Callback cb, EventPriority prio)
{
    assert(when >= now_ && "cannot schedule into the past");
    const std::uint64_t key = shuffleTies_ ? tieRng_.next() : seq_;
    heap_.push(Entry{when, static_cast<std::int32_t>(prio), key, seq_++,
                     std::move(cb)});
}

void EventQueue::setTieBreakShuffle(std::uint64_t seed)
{
    shuffleTies_ = seed != 0;
    if (shuffleTies_)
        tieRng_ = Rng(seed);
}

Tick EventQueue::run()
{
    while (!heap_.empty()) {
        // Copying the callback out before pop keeps us safe if the callback
        // schedules new events (priority_queue::top is invalidated by push).
        Entry e = heap_.top();
        heap_.pop();
        now_ = e.when;
        ++executed_;
        e.cb();
    }
    return now_;
}

Tick EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty() && heap_.top().when <= limit) {
        Entry e = heap_.top();
        heap_.pop();
        now_ = e.when;
        ++executed_;
        e.cb();
    }
    return now_;
}

void EventQueue::clear()
{
    heap_ = {};
}

void EventQueue::snapSave(snap::SnapWriter& w) const
{
    if (!heap_.empty())
        throw snap::SnapError(
            "EventQueue: " + std::to_string(heap_.size()) +
            " pending events — snapshots only exist at drained safe points");
    w.u64(now_);
    w.u64(seq_);
    w.u64(executed_);
    w.u8(shuffleTies_ ? 1 : 0);
    for (const std::uint64_t word : tieRng_.state())
        w.u64(word);
}

void EventQueue::snapRestore(snap::SnapReader& r)
{
    if (!heap_.empty())
        throw snap::SnapError("EventQueue: restore into a non-empty queue");
    now_ = r.u64();
    seq_ = r.u64();
    executed_ = r.u64();
    shuffleTies_ = r.u8() != 0;
    std::array<std::uint64_t, 4> s;
    for (auto& word : s)
        word = r.u64();
    tieRng_.setState(s);
}

} // namespace dscoh
