#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

namespace dscoh {

void EventQueue::scheduleSameTick(Tick when, Callback cb, EventPriority prio,
                                  std::uint64_t key)
{
    // The tick being drained: ordered-insert into the unexecuted tail so
    // the event still runs in its (priority, key, seq) slot relative to
    // the events not yet executed — exactly what the old global heap did.
    Entry e{when, static_cast<std::int32_t>(prio), key, seq_++,
            std::move(cb)};
    const auto tail = cur_.begin() + static_cast<std::ptrdiff_t>(curIdx_);
    cur_.insert(std::upper_bound(tail, cur_.end(), e, Earlier{}),
                std::move(e));
}

void EventQueue::scheduleFar(Tick when, Callback cb, EventPriority prio,
                             std::uint64_t key)
{
    // Far future: body goes into the store, only a {when, idx} ref is
    // sifted through the heap.
    std::uint32_t idx;
    if (!farFree_.empty()) {
        idx = farFree_.back();
        farFree_.pop_back();
        farStore_[idx] = Entry{when, static_cast<std::int32_t>(prio), key,
                               seq_++, std::move(cb)};
    } else {
        idx = static_cast<std::uint32_t>(farStore_.size());
        farStore_.emplace_back(when, static_cast<std::int32_t>(prio), key,
                               seq_++, std::move(cb));
    }
    far_.push_back(FarRef{when, idx});
    std::push_heap(far_.begin(), far_.end(), FarLater{});
}

void EventQueue::setTieBreakShuffle(std::uint64_t seed)
{
    shuffleTies_ = seed != 0;
    if (shuffleTies_)
        tieRng_ = Rng(seed);
}

std::size_t EventQueue::nearestWheelDistance() const
{
    if (wheelCount_ == 0)
        return kWheelSlots;
    const std::size_t base = static_cast<std::size_t>(now_) & kWheelMask;
    const std::size_t baseWord = base >> 6;
    const unsigned baseBit = static_cast<unsigned>(base & 63);
    // Circular scan of the occupancy bitmap starting at `base`: the first
    // set slot is the earliest pending wheel tick, because slot order from
    // `base` is exactly when order within the [now, now + 256) window.
    for (std::size_t k = 0; k <= kBitWords; ++k) {
        const std::size_t wi = (baseWord + k) & (kBitWords - 1);
        std::uint64_t word = slotBits_[wi];
        if (k == 0)
            word &= ~0ull << baseBit; // only slots >= base
        else if (k == kBitWords)
            word &= baseBit != 0 ? (1ull << baseBit) - 1 : 0ull; // wrapped
        if (word == 0)
            continue;
        const std::size_t slot =
            (wi << 6) + static_cast<std::size_t>(__builtin_ctzll(word));
        return (slot - base) & kWheelMask;
    }
    assert(false && "wheelCount_ > 0 but no slot bit set");
    return kWheelSlots;
}

Tick EventQueue::nextEventTime() const
{
    assert(pendingCount() > 0);
    const std::size_t dist = nearestWheelDistance();
    const Tick wheelTime = now_ + dist;
    if (far_.empty())
        return wheelTime;
    const Tick farTime = far_.front().when;
    if (dist == kWheelSlots)
        return farTime;
    return farTime < wheelTime ? farTime : wheelTime;
}

void EventQueue::runTick(Tick t)
{
    now_ = t;
    assert(cur_.empty());
    const std::size_t slot = static_cast<std::size_t>(t) & kWheelMask;
    std::vector<Entry>& due = wheel_[slot];
    curIdx_ = 0;
    inTick_ = true;
    std::uint64_t ran = 0;
    try {
        // Single-event fast path. Message-latency chains often put exactly
        // one event on a tick, and for those the batch choreography below
        // (rotate into cur_, sort, walk) is pure overhead: execute the lone
        // callback in place. Anything it schedules for this same tick lands
        // in cur_ (ordered by construction) and the walk drains it.
        bool gathered = false;
        if (!due.empty()) {
            if (due.size() == 1 &&
                (far_.empty() || far_.front().when != t)) {
                Callback cb = std::move(due.front().cb);
                due.clear();
                slotBits_[slot >> 6] &= ~(1ull << (slot & 63));
                --wheelCount_;
                --pending_;
                ++ran;
                cb();
                gathered = true;
            }
        } else if (!far_.empty() && far_.front().when == t) {
            std::pop_heap(far_.begin(), far_.end(), FarLater{});
            const std::uint32_t idx = far_.back().idx;
            far_.pop_back();
            if (far_.empty() || far_.front().when != t) {
                Callback cb = std::move(farStore_[idx].cb);
                farFree_.push_back(idx);
                --pending_;
                ++ran;
                cb();
                gathered = true;
            } else {
                // More far events share the tick: keep the popped one and
                // fall through to the batch path.
                cur_.push_back(std::move(farStore_[idx]));
                farFree_.push_back(idx);
            }
        }
        if (!gathered) {
            if (!due.empty()) {
                wheelCount_ -= due.size();
                slotBits_[slot >> 6] &= ~(1ull << (slot & 63));
                // Vector buffers rotate between the slot and cur_, so
                // steady state allocates nothing.
                if (cur_.empty()) {
                    cur_.swap(due);
                } else {
                    for (Entry& e : due)
                        cur_.push_back(std::move(e));
                    due.clear();
                }
#ifndef NDEBUG
                for (const Entry& e : cur_)
                    assert(e.when == t && "wheel window invariant violated");
#endif
            }
            while (!far_.empty() && far_.front().when == t) {
                std::pop_heap(far_.begin(), far_.end(), FarLater{});
                const std::uint32_t idx = far_.back().idx;
                far_.pop_back();
                cur_.push_back(std::move(farStore_[idx]));
                farFree_.push_back(idx);
            }
            // One sort, then a linear walk. Entries are appended in
            // insertion order, so uniform-priority ticks are already sorted
            // and the insertion-sort fast path of std::sort touches nothing.
            if (cur_.size() > 1)
                std::sort(cur_.begin(), cur_.end(), Earlier{});
        }
        while (curIdx_ < cur_.size()) {
            // Move only the callback out (not the whole entry): a same-tick
            // schedule from inside it may reallocate cur_, and the local
            // keeps the closure alive across that.
            Callback cb = std::move(cur_[curIdx_].cb);
            ++curIdx_;
            --pending_;
            ++ran;
            cb();
        }
    } catch (...) {
        // Keep the unexecuted remainder runnable (the old global heap just
        // left them queued): push it back into this tick's wheel slot, which
        // nextEventTime() will find at distance zero.
        inTick_ = false;
        executed_.inc(ran);
        for (std::size_t i = curIdx_; i < cur_.size(); ++i) {
            wheel_[slot].push_back(std::move(cur_[i]));
            slotBits_[slot >> 6] |= 1ull << (slot & 63);
            ++wheelCount_;
        }
        cur_.clear();
        throw;
    }
    inTick_ = false;
    executed_.inc(ran);
    cur_.clear();
}

Tick EventQueue::run()
{
    while (pendingCount() > 0)
        runTick(nextEventTime());
    return now_;
}

Tick EventQueue::runUntil(Tick limit)
{
    while (pendingCount() > 0) {
        const Tick t = nextEventTime();
        if (t > limit)
            break;
        runTick(t);
    }
    return now_;
}

void EventQueue::clear()
{
    for (std::vector<Entry>& slot : wheel_)
        slot.clear();
    slotBits_ = {};
    wheelCount_ = 0;
    pending_ = 0;
    far_.clear();
    farStore_.clear();
    farFree_.clear();
    cur_.clear();
    curIdx_ = 0;
    inTick_ = false;
}

void EventQueue::regStats(StatRegistry& registry)
{
    registry.registerCounter("queue.schedule_calls", &scheduled_);
    registry.registerCounter("queue.executed_events", &executed_);
    registry.registerCounter("queue.peak_pending", &peakPending_);
    registry.registerCounter("queue.heap_spilled_callbacks", &heapSpills_);
}

void EventQueue::snapSave(snap::SnapWriter& w) const
{
    if (pendingCount() != 0)
        throw snap::SnapError(
            "EventQueue: " + std::to_string(pendingCount()) +
            " pending events — snapshots only exist at drained safe points");
    w.u64(now_);
    w.u64(seq_);
    w.u64(executed_.value());
    w.u8(shuffleTies_ ? 1 : 0);
    for (const std::uint64_t word : tieRng_.state())
        w.u64(word);
}

void EventQueue::snapRestore(snap::SnapReader& r)
{
    if (pendingCount() != 0)
        throw snap::SnapError("EventQueue: restore into a non-empty queue");
    now_ = r.u64();
    seq_ = r.u64();
    executed_.set(r.u64());
    shuffleTies_ = r.u8() != 0;
    std::array<std::uint64_t, 4> s;
    for (auto& word : s)
        word = r.u64();
    tieRng_.setState(s);
    // The derived counters are not part of the frozen snapshot layout.
    // schedule_calls mirrors the insertion sequence exactly; peak/spills
    // restart (and are restored through the StatRegistry when registered).
    scheduled_.set(seq_);
}

} // namespace dscoh
