#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace dscoh {

void EventQueue::schedule(Tick when, Callback cb, EventPriority prio)
{
    assert(when >= now_ && "cannot schedule into the past");
    const std::uint64_t key = shuffleTies_ ? tieRng_.next() : seq_;
    heap_.push(Entry{when, static_cast<std::int32_t>(prio), key, seq_++,
                     std::move(cb)});
}

void EventQueue::setTieBreakShuffle(std::uint64_t seed)
{
    shuffleTies_ = seed != 0;
    if (shuffleTies_)
        tieRng_ = Rng(seed);
}

Tick EventQueue::run()
{
    while (!heap_.empty()) {
        // Copying the callback out before pop keeps us safe if the callback
        // schedules new events (priority_queue::top is invalidated by push).
        Entry e = heap_.top();
        heap_.pop();
        now_ = e.when;
        ++executed_;
        e.cb();
    }
    return now_;
}

Tick EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty() && heap_.top().when <= limit) {
        Entry e = heap_.top();
        heap_.pop();
        now_ = e.when;
        ++executed_;
        e.cb();
    }
    return now_;
}

void EventQueue::clear()
{
    heap_ = {};
}

} // namespace dscoh
