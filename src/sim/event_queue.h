// Discrete-event simulation core.
//
// A single EventQueue drives the whole simulated machine. Events scheduled
// for the same tick are ordered by (priority, insertion sequence), which makes
// every simulation fully deterministic regardless of container iteration
// order elsewhere. The fuzzer can replace the insertion-sequence tie-break
// with a seeded random key (setTieBreakShuffle) to explore same-tick
// orderings the protocol must not depend on — still fully deterministic for
// a given seed.
//
// Engine layout (the hot path): a 256-slot timing wheel of per-tick vectors
// absorbs near-future events with an O(1) push; only events >= 256 ticks out
// fall back to a binary heap. Draining batches per tick: the due slot (plus
// any due far-heap events) becomes the current-tick vector, sorted once by
// (priority, key, seq) and executed in order; events a callback schedules
// for the tick being drained are ordered-inserted into the unexecuted tail.
// This preserves exactly the total order the old global priority_queue
// produced. Callbacks are InlineCallbacks, so captures up to 64 bytes never
// touch the heap; spills are counted.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/inline_callback.h"
#include "sim/rng.h"
#include "sim/stats.h"
#include "sim/types.h"
#include "snap/snapshot.h"

namespace dscoh {

/// Priorities for same-tick events. Lower value runs first.
enum class EventPriority : std::int32_t {
    kMessageDelivery = 0, ///< network message handoff to a controller
    kController = 10,     ///< cache/memory controller internal steps
    kCore = 20,           ///< CPU / SM issue logic
    kStats = 30,          ///< sampling / bookkeeping
    kDefault = 20,
};

/// Central event queue. Not thread-safe by design: the simulator is
/// single-threaded and deterministic.
class EventQueue {
public:
    using Callback = InlineCallback;

    /// Schedules @p cb to run at absolute tick @p when (>= curTick()).
    /// Inline (header-defined) on purpose: every simulated action funnels
    /// through here, and inlining lets the caller build the callback
    /// directly in the queue entry instead of moving it through a call
    /// boundary.
    void schedule(Tick when, Callback cb,
                  EventPriority prio = EventPriority::kDefault)
    {
        assert(when >= now_ && "cannot schedule into the past");
        const std::uint64_t key = shuffleTies_ ? tieRng_.next() : seq_;
        scheduled_.inc();
        if (cb.onHeap())
            heapSpills_.inc();
        if (inTick_ && when == now_) {
            scheduleSameTick(when, std::move(cb), prio, key);
        } else if (when - now_ < kWheelSlots) {
            // Near future: O(1) append to the per-tick slot, constructed in
            // place. Window invariant: every bucketed entry satisfies
            // when - now_ < kWheelSlots, so a slot only ever holds one tick.
            const std::size_t slot =
                static_cast<std::size_t>(when) & kWheelMask;
            std::vector<Entry>& vec = wheel_[slot];
            // First touch gets a real capacity up front: slots hold a
            // handful of events per tick, and the 1->2->4 doubling crawl
            // (an alloc plus an entry copy each) costs more than the one
            // reservation.
            if (vec.capacity() == 0)
                vec.reserve(16);
            vec.emplace_back(when, static_cast<std::int32_t>(prio), key,
                             seq_++, std::move(cb));
            slotBits_[slot >> 6] |= 1ull << (slot & 63);
            ++wheelCount_;
        } else {
            scheduleFar(when, std::move(cb), prio, key);
        }
        ++pending_;
        if (pending_ > peakPending_.value())
            peakPending_.set(pending_);
    }

    /// Schedules @p cb to run @p delay ticks from now.
    void scheduleAfter(Tick delay, Callback cb,
                       EventPriority prio = EventPriority::kDefault)
    {
        schedule(now_ + delay, std::move(cb), prio);
    }

    /// Hot-path variant: statically proves the capture fits the callback's
    /// inline buffer, so the site can never regress into a per-event heap
    /// allocation. Use on every scheduling site inside the simulation loop.
    template <typename F>
    void scheduleInline(Tick when, F&& f,
                        EventPriority prio = EventPriority::kDefault)
    {
        static_assert(InlineCallback::fitsInline<F>(),
                      "hot-path event capture must fit InlineCallback's "
                      "inline buffer — shrink the capture or pool the "
                      "payload (see sim/object_pool.h)");
        schedule(when, Callback(std::forward<F>(f)), prio);
    }

    template <typename F>
    void scheduleAfterInline(Tick delay, F&& f,
                             EventPriority prio = EventPriority::kDefault)
    {
        scheduleInline(now_ + delay, std::forward<F>(f), prio);
    }

    /// Current simulated time.
    Tick curTick() const { return now_; }

    bool empty() const { return pendingCount() == 0; }
    std::size_t pending() const { return pendingCount(); }
    std::uint64_t executedEvents() const { return executed_.value(); }

    /// Runs until the queue drains. Returns the tick of the last event.
    Tick run();

    /// Runs until the queue drains or curTick() would exceed @p limit.
    /// Events beyond the limit stay queued. Returns current tick.
    Tick runUntil(Tick limit);

    /// Drops all pending events (used between independent simulations).
    void clear();

    /// Perturbs the ordering of same-(tick, priority) events: instead of
    /// insertion order, ties break on a per-event key drawn from an Rng
    /// seeded with @p seed (0 restores insertion order). Deterministic per
    /// seed; call before scheduling anything. Correct protocol code must
    /// produce functionally identical results under any tie-break order —
    /// the fuzzer uses this to hunt same-tick ordering assumptions.
    void setTieBreakShuffle(std::uint64_t seed);

    /// Checkpoints the queue at a safe point (must be empty — closures
    /// cannot be serialized, which is exactly why safe points require a
    /// drained queue). Saves the clock plus the insertion-sequence and
    /// tie-break-RNG state: restoring them gives every post-restore event
    /// the same (key, seq) tie-break identity it would have had in an
    /// uninterrupted run, so same-tick ordering is bit-identical.
    void snapSave(snap::SnapWriter& w) const;
    void snapRestore(snap::SnapReader& r);

    /// Registers the queue's own counters under "queue.*". Opt-in
    /// (System::enableQueueStats): the default stat set — and with it the
    /// stats JSON, results.json and snapshot bytes — stays exactly what it
    /// always was.
    void regStats(StatRegistry& registry);

    std::uint64_t scheduleCalls() const { return scheduled_.value(); }
    std::uint64_t peakPending() const { return peakPending_.value(); }
    /// Callbacks whose capture outgrew the inline buffer (see
    /// InlineCallback). Zero on every built-in workload; a regression here
    /// means a scheduling site started allocating per event.
    std::uint64_t heapSpilledCallbacks() const { return heapSpills_.value(); }

private:
    struct Entry {
        Tick when;
        std::int32_t prio;
        std::uint64_t key; // tie-breaker: seq, or a seeded random key
        std::uint64_t seq; // final tie-break so shuffle stays a total order
        Callback cb;
    };
    /// Far-heap element: the heap sifts these 16-byte refs instead of whole
    /// entries (the callback alone is 72 bytes), so a reheapify is a few
    /// cheap moves. Equal-when pops come out in arbitrary heap order; that
    /// is fine because every same-tick entry goes through the Earlier sort
    /// in runTick before executing.
    struct FarRef {
        Tick when;
        std::uint32_t idx; ///< slot in farStore_
    };
    struct FarLater {
        bool operator()(const FarRef& a, const FarRef& b) const
        {
            return a.when > b.when;
        }
    };
    /// Execution order within one tick (all cur_ entries share `when`).
    /// seq is unique, so this is a strict total order and the unstable
    /// std::sort in runTick is still fully deterministic.
    struct Earlier {
        bool operator()(const Entry& a, const Entry& b) const
        {
            if (a.prio != b.prio)
                return a.prio < b.prio;
            if (a.key != b.key)
                return a.key < b.key;
            return a.seq < b.seq;
        }
    };

    static constexpr std::size_t kWheelSlots = 256;
    static constexpr std::size_t kWheelMask = kWheelSlots - 1;
    static constexpr std::size_t kBitWords = kWheelSlots / 64;

    std::size_t pendingCount() const { return pending_; }

    /// Out-of-line slow paths of schedule(): ordered insert into the tick
    /// being drained, and the far-future heap.
    void scheduleSameTick(Tick when, Callback cb, EventPriority prio,
                          std::uint64_t key);
    void scheduleFar(Tick when, Callback cb, EventPriority prio,
                     std::uint64_t key);

    /// Earliest pending event time; pendingCount() must be non-zero.
    Tick nextEventTime() const;
    /// Circular distance from now_ to the first occupied wheel slot, or
    /// kWheelSlots when the wheel is empty.
    std::size_t nearestWheelDistance() const;
    /// Moves every event due at @p t into cur_ and executes the tick.
    void runTick(Tick t);

    std::array<std::vector<Entry>, kWheelSlots> wheel_;
    std::array<std::uint64_t, kBitWords> slotBits_{};
    std::size_t wheelCount_ = 0;
    std::size_t pending_ = 0; ///< total outstanding events, all containers
    std::vector<FarRef> far_;      ///< binary min-heap of refs, >= 256 out
    std::vector<Entry> farStore_;  ///< entry bodies the far heap points into
    std::vector<std::uint32_t> farFree_; ///< recycled farStore_ slots
    std::vector<Entry> cur_; ///< tick in drain, sorted ascending by Earlier
    std::size_t curIdx_ = 0; ///< next cur_ entry to execute while inTick_
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    bool shuffleTies_ = false;
    bool inTick_ = false; ///< cur_ is live: same-tick schedules go there
    Rng tieRng_{0};

    Counter executed_;
    Counter scheduled_;
    Counter peakPending_;
    Counter heapSpills_;
};

} // namespace dscoh
