// Discrete-event simulation core.
//
// A single EventQueue drives the whole simulated machine. Events scheduled
// for the same tick are ordered by (priority, insertion sequence), which makes
// every simulation fully deterministic regardless of container iteration
// order elsewhere. The fuzzer can replace the insertion-sequence tie-break
// with a seeded random key (setTieBreakShuffle) to explore same-tick
// orderings the protocol must not depend on — still fully deterministic for
// a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/rng.h"
#include "sim/types.h"
#include "snap/snapshot.h"

namespace dscoh {

/// Priorities for same-tick events. Lower value runs first.
enum class EventPriority : std::int32_t {
    kMessageDelivery = 0, ///< network message handoff to a controller
    kController = 10,     ///< cache/memory controller internal steps
    kCore = 20,           ///< CPU / SM issue logic
    kStats = 30,          ///< sampling / bookkeeping
    kDefault = 20,
};

/// Central event queue. Not thread-safe by design: the simulator is
/// single-threaded and deterministic.
class EventQueue {
public:
    using Callback = std::function<void()>;

    /// Schedules @p cb to run at absolute tick @p when (>= curTick()).
    void schedule(Tick when, Callback cb,
                  EventPriority prio = EventPriority::kDefault);

    /// Schedules @p cb to run @p delay ticks from now.
    void scheduleAfter(Tick delay, Callback cb,
                       EventPriority prio = EventPriority::kDefault)
    {
        schedule(now_ + delay, std::move(cb), prio);
    }

    /// Current simulated time.
    Tick curTick() const { return now_; }

    bool empty() const { return heap_.empty(); }
    std::size_t pending() const { return heap_.size(); }
    std::uint64_t executedEvents() const { return executed_; }

    /// Runs until the queue drains. Returns the tick of the last event.
    Tick run();

    /// Runs until the queue drains or curTick() would exceed @p limit.
    /// Events beyond the limit stay queued. Returns current tick.
    Tick runUntil(Tick limit);

    /// Drops all pending events (used between independent simulations).
    void clear();

    /// Perturbs the ordering of same-(tick, priority) events: instead of
    /// insertion order, ties break on a per-event key drawn from an Rng
    /// seeded with @p seed (0 restores insertion order). Deterministic per
    /// seed; call before scheduling anything. Correct protocol code must
    /// produce functionally identical results under any tie-break order —
    /// the fuzzer uses this to hunt same-tick ordering assumptions.
    void setTieBreakShuffle(std::uint64_t seed);

    /// Checkpoints the queue at a safe point (must be empty — closures
    /// cannot be serialized, which is exactly why safe points require a
    /// drained queue). Saves the clock plus the insertion-sequence and
    /// tie-break-RNG state: restoring them gives every post-restore event
    /// the same (key, seq) tie-break identity it would have had in an
    /// uninterrupted run, so same-tick ordering is bit-identical.
    void snapSave(snap::SnapWriter& w) const;
    void snapRestore(snap::SnapReader& r);

private:
    struct Entry {
        Tick when;
        std::int32_t prio;
        std::uint64_t key; // tie-breaker: seq, or a seeded random key
        std::uint64_t seq; // final tie-break so shuffle stays a total order
        Callback cb;
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            if (a.key != b.key)
                return a.key > b.key;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
    bool shuffleTies_ = false;
    Rng tieRng_{0};
};

} // namespace dscoh
