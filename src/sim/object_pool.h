// Freelist arena for hot-path payload objects.
//
// The event engine keeps captures small (see inline_callback.h) by moving
// bulky payloads — network Messages, pending DRAM writes — into pooled slots
// and capturing only the slot pointer. Slots come from chunked arrays owned
// by the pool, so steady-state simulation performs no allocation at all on
// the message path: acquire/release are a vector push/pop.
//
// The pool hands out *stale* slots: the caller assigns the full object on
// acquire. Slots lost to EventQueue::clear() (events dropped between
// independent simulations) simply stay owned by their chunk; the memory is
// reclaimed when the pool dies with its SimContext.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace dscoh {

template <typename T>
class ObjectPool {
public:
    ObjectPool() = default;

    ObjectPool(const ObjectPool&) = delete;
    ObjectPool& operator=(const ObjectPool&) = delete;

    /// Returns a slot with unspecified (stale) contents; assign before use.
    T* acquire()
    {
        if (free_.empty())
            grow();
        T* slot = free_.back();
        free_.pop_back();
        return slot;
    }

    void release(T* slot) { free_.push_back(slot); }

    /// Total slots ever created (for tests and sizing diagnostics).
    std::size_t capacity() const { return chunks_.size() * kChunk; }

private:
    static constexpr std::size_t kChunk = 128;

    void grow()
    {
        // for_overwrite: slots are stale by contract (assigned on acquire),
        // so value-initializing a fresh chunk would be pure memset waste.
        chunks_.push_back(std::make_unique_for_overwrite<T[]>(kChunk));
        T* base = chunks_.back().get();
        free_.reserve(free_.size() + kChunk);
        for (std::size_t i = kChunk; i > 0; --i)
            free_.push_back(base + (i - 1));
    }

    std::vector<std::unique_ptr<T[]>> chunks_;
    std::vector<T*> free_;
};

} // namespace dscoh
