// Typed failure classes and the process exit codes they map to.
//
// The run/sweep tools translate these into distinct exit codes so scripts
// and CI can tell a wedged protocol from a broken disk from a real oracle
// violation without parsing stderr. The codes are documented in README.md
// ("Exit codes"); keep the two in sync.
#pragma once

#include <stdexcept>
#include <string>

namespace dscoh {

// Process exit codes shared by dscoh_run and dscoh_sweep.
inline constexpr int kExitOk = 0;
inline constexpr int kExitFailure = 1;  ///< unclassified failure
inline constexpr int kExitUsage = 2;    ///< bad CLI flag or config file
inline constexpr int kExitDeadlock = 3; ///< --max-idle-ticks watchdog tripped
inline constexpr int kExitIo = 4;       ///< snapshot/results file I/O failure
inline constexpr int kExitOracle = 5;   ///< coherence/functional violation
inline constexpr int kExitShed = 6;     ///< service shed the request (retry)
inline constexpr int kExitDegraded = 7; ///< service is degraded (read-only)

/// The no-progress watchdog fired: no event executed for the idle budget
/// while work was still queued. The message names the stalled component(s)
/// (System::describeOutstandingWork).
class DeadlockError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// The coherence oracle (or the functional value check) flagged the run:
/// results are untrustworthy.
class OracleError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// A cooperative cancel flag was raised mid-run (deadline expiry, client
/// cancel): the run stopped early and produced no result.
class CancelledError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

} // namespace dscoh
