// Small-buffer-optimized type-erased callback for the event engine.
//
// The event queue executes tens of millions of callbacks per simulated run;
// std::function's allocation behavior (heap for any capture beyond ~16 bytes)
// made every network delivery and most controller steps pay a malloc/free
// pair. InlineCallback stores captures up to kInlineSize bytes inside the
// object itself — enough for every hot scheduling site in the simulator —
// and falls back to the heap only for oversized or throwing-move captures.
// The queue counts those spills (queue.heap_spilled_callbacks) so a capture
// that silently outgrows the buffer shows up in the stats, and the hot sites
// additionally static_assert the fit via EventQueue::scheduleInline.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace dscoh {

class InlineCallback {
public:
    /// Inline capture budget, sized to the largest hot capture in the tree
    /// ([this, pa, op] in the CPU core: 8 + 8 + sizeof(CpuOp)=48 bytes).
    /// Anything bigger belongs in a pooled slot (see sim/object_pool.h).
    static constexpr std::size_t kInlineSize = 64;
    static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

    /// True when a callable of type F would live in the inline buffer.
    /// Inline storage additionally requires a noexcept move constructor:
    /// queue containers relocate entries while reheapifying, and those
    /// operations must not throw half-way through.
    template <typename F>
    static constexpr bool fitsInline()
    {
        using D = std::decay_t<F>;
        return sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
               std::is_nothrow_move_constructible_v<D>;
    }

    InlineCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallback>>>
    InlineCallback(F&& f) // NOLINT: implicit by design, mirrors std::function
    {
        using D = std::decay_t<F>;
        static_assert(std::is_invocable_r_v<void, D&>,
                      "callback must be invocable as void()");
        if constexpr (fitsInline<F>()) {
            ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
            ops_ = &InlineModel<D>::kOps;
        } else {
            ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
            ops_ = &HeapModel<D>::kOps;
        }
    }

    InlineCallback(InlineCallback&& other) noexcept : ops_(other.ops_)
    {
        if (ops_ != nullptr) {
            // Almost every capture in the simulator is trivially copyable
            // (pointers + PODs), so a move is a fixed-size memcpy the
            // compiler turns into a few vector loads — no indirect call.
            if (ops_->trivialMove)
                std::memcpy(storage_, other.storage_, kInlineSize);
            else
                ops_->relocate(storage_, other.storage_);
            other.ops_ = nullptr;
        }
    }

    InlineCallback& operator=(InlineCallback&& other) noexcept
    {
        if (this != &other) {
            reset();
            ops_ = other.ops_;
            if (ops_ != nullptr) {
                if (ops_->trivialMove)
                    std::memcpy(storage_, other.storage_, kInlineSize);
                else
                    ops_->relocate(storage_, other.storage_);
                other.ops_ = nullptr;
            }
        }
        return *this;
    }

    InlineCallback(const InlineCallback&) = delete;
    InlineCallback& operator=(const InlineCallback&) = delete;

    ~InlineCallback() { reset(); }

    void operator()()
    {
        assert(ops_ != nullptr && "invoking an empty InlineCallback");
        ops_->invoke(storage_);
    }

    explicit operator bool() const { return ops_ != nullptr; }

    /// True when the capture spilled to a heap allocation (too big or a
    /// throwing move). The queue surfaces this as a counter.
    bool onHeap() const { return ops_ != nullptr && ops_->heap; }

private:
    struct Ops {
        void (*invoke)(void* storage);
        /// Move-construct into @p dst from @p src and destroy @p src. Only
        /// consulted when trivialMove is false.
        void (*relocate)(void* dst, void* src) noexcept;
        /// Null when the stored state is trivially destructible, so the
        /// destructor of the common case is a load and a taken-predictable
        /// branch.
        void (*destroy)(void* storage) noexcept;
        bool heap;
        /// True when a move is a plain byte copy of the storage: trivially
        /// copyable inline captures, and the heap model's stored pointer.
        bool trivialMove;
    };

    template <typename D>
    struct InlineModel {
        static D* self(void* s)
        {
            return std::launder(static_cast<D*>(s));
        }
        static void invoke(void* s) { (*self(s))(); }
        static void relocate(void* dst, void* src) noexcept
        {
            ::new (dst) D(std::move(*self(src)));
            self(src)->~D();
        }
        static void destroy(void* s) noexcept { self(s)->~D(); }
        static constexpr Ops kOps{
            &invoke, &relocate,
            std::is_trivially_destructible_v<D> ? nullptr : &destroy, false,
            std::is_trivially_copyable_v<D>};
    };

    template <typename D>
    struct HeapModel {
        static D* self(void* s)
        {
            return *std::launder(static_cast<D**>(s));
        }
        static void invoke(void* s) { (*self(s))(); }
        static void relocate(void* dst, void* src) noexcept
        {
            ::new (dst) D*(self(src));
        }
        static void destroy(void* s) noexcept { delete self(s); }
        static constexpr Ops kOps{&invoke, &relocate, &destroy, true, true};
    };

    void reset() noexcept
    {
        if (ops_ != nullptr) {
            if (ops_->destroy != nullptr)
                ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

    alignas(kInlineAlign) unsigned char storage_[kInlineSize];
    const Ops* ops_ = nullptr;
};

} // namespace dscoh
