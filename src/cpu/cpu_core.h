// In-order CPU core (Table I: one core) executing a CpuProgram.
//
// Loads block; stores retire into a small store buffer that drains through
// the cache hierarchy in the background (with store->load forwarding).
// Stores whose TLB translation carries the direct-store flag instead enter
// the remote-store buffer (RSB): a few line-sized write-combining entries
// that coalesce adjacent stores and push each completed (or evicted) line to
// the owning GPU L2 slice as a DsPutX over the dedicated network. Loads from
// the DS region are uncached round-trips to the slice (§III-E: the region
// can never be cached on the CPU).
// With a non-zero ackTimeout the direct-store delivery path is *hardened*
// (PROTOCOL.md "Delivery hardening"): every DsPutX carries a transaction id
// and sits in a bounded in-flight table until its ack returns; a timeout
// retransmits with capped exponential backoff, and after maxRetries failed
// attempts (or while the DS network is marked down) the store degrades to
// the baseline coherent pull-based write path. Uncached DS-region loads get
// the same treatment. With ackTimeout == 0 the legacy fire-and-forget path
// runs byte-identically to before.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "cpu/cpu_cache_agent.h"
#include "cpu/program.h"
#include "cpu/tlb.h"
#include "net/network.h"

namespace dscoh {

class CpuCore final : public SimObject {
public:
    struct Params {
        Tick l1Latency = 4;
        Tick l2Latency = 12;
        std::size_t storeBufferEntries = 8;
        std::size_t rsbEntries = 4;
        NodeId self = kInvalidNode;         ///< this core's id on the DS network
        Network* dsNet = nullptr;           ///< dedicated CPU -> GPU L2 network
        std::function<NodeId(Addr)> sliceOf; ///< PA -> owning slice's node id

        // --- delivery hardening (0 / empty = legacy fire-and-forget) ---
        Tick dsAckTimeout = 0;         ///< ticks before a retransmit fires
        std::uint32_t dsMaxRetries = 4;
        std::size_t dsInFlightMax = 8; ///< bound on tracked DsPutX stores
        bool dsFallback = false;       ///< pull-path degradation allowed
        /// Drain window between deciding to fall back and applying it: long
        /// enough that no copy of the abandoned push is still on the wire
        /// (System computes it from the network and fault parameters).
        Tick dsMslTicks = 0;
        std::function<bool()> dsNetDown; ///< DS-network outage probe
        bool dsVerifyChecksum = false;   ///< verify UcData payload integrity
    };

    CpuCore(std::string name, SimContext& ctx, Params params, Tlb& tlb,
            CpuCacheAgent& cache);

    /// Starts executing @p program; @p onDone fires once every op has
    /// executed AND all buffered stores (local and remote) are globally
    /// performed (implicit trailing fence).
    void run(const CpuProgram& program, std::function<void()> onDone);

    /// Entry point for DsAck / UcData arriving on the dedicated network.
    void handleDsMessage(const Message& msg);

    void regStats(StatRegistry& registry) override;

    bool idle() const { return program_ == nullptr; }
    std::uint64_t checkFailures() const { return checkFailures_.value(); }
    std::uint64_t remoteStores() const { return remoteStores_.value(); }

    /// One-line summary of what the core is still waiting on; empty when
    /// nothing is pending. Used by the no-progress watchdog to name the
    /// stalled component.
    std::string outstandingWork() const;

    /// The core is purely transient state (program position, store/remote
    /// buffers, pending loads) and all of it drains before a safe point, so
    /// the section only asserts quiescence; counters live in the stats
    /// section.
    void snapSave(snap::SnapWriter& w) const override;
    void snapRestore(snap::SnapReader& r) override;

private:
    /// Line-granular write-combining store-buffer entry: stores to the same
    /// line merge into one entry and drain as a single ownership request, so
    /// several line misses overlap (as in any real LSQ+MSHR design).
    struct StoreBufferEntry {
        Addr base = 0; ///< line-aligned physical address
        DataBlock data;
        ByteMask mask;
    };

    struct RsbEntry {
        Addr base = 0; ///< line-aligned physical address
        DataBlock data;
        ByteMask mask;
        std::uint64_t prof = 0; ///< TxnProfiler span (0 when profiling off)
    };

    /// One hardened store from push until ack / fallback application.
    struct DsInFlight {
        Addr base = 0;
        DataBlock data;
        ByteMask mask;
        std::uint32_t retries = 0;
        bool fallbackPending = false; ///< waiting out the drain window
        std::uint64_t seq = 0;        ///< bumped to invalidate armed timeouts
        std::uint64_t prof = 0;       ///< TxnProfiler span
    };

    void step();
    void finishOp();
    void execLoad(const CpuOp& op);
    void execStore(const CpuOp& op);
    void execFence();
    void doLocalLoad(Addr pa, const CpuOp& op, Tick extraLatency);
    void doUncachedLoad(Addr pa, const CpuOp& op, Tick extraLatency);
    void pushStoreBuffer(Addr pa, const CpuOp& op);
    void drainStoreEntry(Addr base);
    void remoteStore(Addr pa, const CpuOp& op);
    void flushRsbEntry(std::size_t index);
    void flushAllRsb();

    bool hardened() const { return params_.dsAckTimeout != 0; }
    bool dsNetMarkedDown() const
    {
        return params_.dsFallback && params_.dsNetDown && params_.dsNetDown();
    }
    void startDsStore(RsbEntry entry);
    void sendDsPutX(std::uint64_t txn);
    void armDsTimeout(std::uint64_t txn);
    void onDsTimeout(std::uint64_t txn, std::uint64_t seq);
    void retryDsStore(std::uint64_t txn);
    void beginDsFallback(std::uint64_t txn);
    void applyDsFallback(std::uint64_t txn);
    void completeDsStore();
    void sendUcRead();
    void onUcTimeout(std::uint64_t txn, std::uint64_t seq);
    void retryUcLoad();
    void fallbackUcLoad();
    bool storesDrained() const
    {
        return storeBuffer_.empty() && inFlightStores_ == 0 && rsb_.empty() &&
               pendingDsAcks_ == 0;
    }
    void maybeFinishFence();
    void checkLoadedValue(const CpuOp& op, std::uint64_t value);

    Params params_;
    Tlb& tlb_;
    CpuCacheAgent& cache_;

    const CpuProgram* program_ = nullptr;
    std::size_t pc_ = 0;
    std::function<void()> onDone_;
    bool fencing_ = false;

    std::deque<StoreBufferEntry> storeBuffer_;
    std::size_t inFlightStores_ = 0;
    std::deque<CpuOp> stalledStores_; ///< waiting for a store-buffer slot

    std::vector<RsbEntry> rsb_; ///< FIFO write-combining entries
    std::size_t pendingDsAcks_ = 0;

    // Hardened-path state (all empty/idle on the legacy path). Transaction
    // ids are opaque and never surface in stats or traces, so a restored
    // run may restart them from scratch.
    std::map<std::uint64_t, DsInFlight> dsInFlight_; ///< keyed by txn
    std::deque<RsbEntry> dsBacklog_; ///< overflow past dsInFlightMax
    std::uint64_t nextDsTxn_ = 1;

    std::function<void(const Message&)> pendingUcLoad_;
    std::uint64_t ucTxn_ = 0; ///< txn of the outstanding hardened UcRead
    std::uint64_t ucSeq_ = 0; ///< bumped to invalidate armed UcRead timeouts
    std::uint32_t ucRetries_ = 0;
    std::uint64_t ucProf_ = 0; ///< TxnProfiler span of the outstanding UcRead
    Addr ucPa_ = 0;
    CpuOp ucOp_{};
    std::deque<std::function<void()>> awaitingDsDrain_;

    Counter loads_;
    Counter stores_;
    Counter remoteStores_;
    Counter dsPutxSent_;
    Counter ucReads_;
    Counter storeForwards_;
    Counter checkFailures_;
    Counter dsRetries_;
    Counter dsTimeouts_;
    Counter dsFallbackStores_;
    Counter dsFallbackLoads_;
    Histogram loadLatency_{16, 64};
    Tick loadStart_ = 0;
};

} // namespace dscoh
