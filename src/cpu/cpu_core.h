// In-order CPU core (Table I: one core) executing a CpuProgram.
//
// Loads block; stores retire into a small store buffer that drains through
// the cache hierarchy in the background (with store->load forwarding).
// Stores whose TLB translation carries the direct-store flag instead enter
// the remote-store buffer (RSB): a few line-sized write-combining entries
// that coalesce adjacent stores and push each completed (or evicted) line to
// the owning GPU L2 slice as a DsPutX over the dedicated network. Loads from
// the DS region are uncached round-trips to the slice (§III-E: the region
// can never be cached on the CPU).
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "cpu/cpu_cache_agent.h"
#include "cpu/program.h"
#include "cpu/tlb.h"
#include "net/network.h"

namespace dscoh {

class CpuCore final : public SimObject {
public:
    struct Params {
        Tick l1Latency = 4;
        Tick l2Latency = 12;
        std::size_t storeBufferEntries = 8;
        std::size_t rsbEntries = 4;
        NodeId self = kInvalidNode;         ///< this core's id on the DS network
        Network* dsNet = nullptr;           ///< dedicated CPU -> GPU L2 network
        std::function<NodeId(Addr)> sliceOf; ///< PA -> owning slice's node id
    };

    CpuCore(std::string name, SimContext& ctx, Params params, Tlb& tlb,
            CpuCacheAgent& cache);

    /// Starts executing @p program; @p onDone fires once every op has
    /// executed AND all buffered stores (local and remote) are globally
    /// performed (implicit trailing fence).
    void run(const CpuProgram& program, std::function<void()> onDone);

    /// Entry point for DsAck / UcData arriving on the dedicated network.
    void handleDsMessage(const Message& msg);

    void regStats(StatRegistry& registry) override;

    bool idle() const { return program_ == nullptr; }
    std::uint64_t checkFailures() const { return checkFailures_.value(); }
    std::uint64_t remoteStores() const { return remoteStores_.value(); }

    /// The core is purely transient state (program position, store/remote
    /// buffers, pending loads) and all of it drains before a safe point, so
    /// the section only asserts quiescence; counters live in the stats
    /// section.
    void snapSave(snap::SnapWriter& w) const override;
    void snapRestore(snap::SnapReader& r) override;

private:
    /// Line-granular write-combining store-buffer entry: stores to the same
    /// line merge into one entry and drain as a single ownership request, so
    /// several line misses overlap (as in any real LSQ+MSHR design).
    struct StoreBufferEntry {
        Addr base = 0; ///< line-aligned physical address
        DataBlock data;
        ByteMask mask;
    };

    struct RsbEntry {
        Addr base = 0; ///< line-aligned physical address
        DataBlock data;
        ByteMask mask;
    };

    void step();
    void finishOp();
    void execLoad(const CpuOp& op);
    void execStore(const CpuOp& op);
    void execFence();
    void doLocalLoad(Addr pa, const CpuOp& op, Tick extraLatency);
    void doUncachedLoad(Addr pa, const CpuOp& op, Tick extraLatency);
    void pushStoreBuffer(Addr pa, const CpuOp& op);
    void drainStoreEntry(Addr base);
    void remoteStore(Addr pa, const CpuOp& op);
    void flushRsbEntry(std::size_t index);
    void flushAllRsb();
    bool storesDrained() const
    {
        return storeBuffer_.empty() && inFlightStores_ == 0 && rsb_.empty() &&
               pendingDsAcks_ == 0;
    }
    void maybeFinishFence();
    void checkLoadedValue(const CpuOp& op, std::uint64_t value);

    Params params_;
    Tlb& tlb_;
    CpuCacheAgent& cache_;

    const CpuProgram* program_ = nullptr;
    std::size_t pc_ = 0;
    std::function<void()> onDone_;
    bool fencing_ = false;

    std::deque<StoreBufferEntry> storeBuffer_;
    std::size_t inFlightStores_ = 0;
    std::deque<CpuOp> stalledStores_; ///< waiting for a store-buffer slot

    std::vector<RsbEntry> rsb_; ///< FIFO write-combining entries
    std::size_t pendingDsAcks_ = 0;

    std::function<void(const Message&)> pendingUcLoad_;
    std::deque<std::function<void()>> awaitingDsDrain_;

    Counter loads_;
    Counter stores_;
    Counter remoteStores_;
    Counter dsPutxSent_;
    Counter ucReads_;
    Counter storeForwards_;
    Counter checkFailures_;
    Histogram loadLatency_{16, 64};
    Tick loadStart_ = 0;
};

} // namespace dscoh
