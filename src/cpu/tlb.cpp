#include "cpu/tlb.h"

#include <utility>

namespace dscoh {

Tlb::Tlb(std::string name, SimContext& ctx, const AddressSpace& space,
         Params params)
    : SimObject(std::move(name), ctx), space_(space), params_(params)
{
}

TlbResult Tlb::translate(Addr va)
{
    const Addr page = pageAlign(va);
    TlbResult result;
    result.translation = space_.translate(va);
    if (result.translation.dsRegion)
        dsDetections_.inc();

    const auto it = entries_.find(page);
    if (it != entries_.end()) {
        hits_.inc();
        lru_.splice(lru_.begin(), lru_, it->second);
        result.hit = true;
        result.latency = 0;
        return result;
    }

    misses_.inc();
    result.hit = false;
    result.latency = params_.walkLatency;
    if (entries_.size() >= params_.entries) {
        entries_.erase(lru_.back());
        lru_.pop_back();
    }
    lru_.push_front(page);
    entries_.emplace(page, lru_.begin());
    return result;
}

void Tlb::flush()
{
    lru_.clear();
    entries_.clear();
}

void Tlb::regStats(StatRegistry& registry)
{
    registry.registerCounter(statName("hits"), &hits_);
    registry.registerCounter(statName("misses"), &misses_);
    registry.registerCounter(statName("ds_detections"), &dsDetections_);
}

} // namespace dscoh
