// The CPU-side cache hierarchy as one coherence agent.
//
// Protocol state lives at the L2 (Table I: 2 MB, 8-way); the L1D (64 KB,
// 2-way) is a write-through tag filter kept inclusive with the L2: it only
// decides whether an access pays L1 or L1+L2 latency. This mirrors how a
// single-core inclusive hierarchy behaves under Ruby without modelling a
// second protocol level that can never disagree with the first.
//
// Adds the paper's Fig. 3 remote-store transitions: prepareRemoteStore()
// invalidates any local copy of a direct-store line (S/M -> I silently,
// MM/O -> writeback then I) before the store is pushed to the GPU L2.
#pragma once

#include <functional>

#include "coherence/cache_agent.h"

namespace dscoh {

class CpuCacheAgent final : public CacheAgent {
public:
    struct L1Params {
        CacheGeometry geometry;
    };

    CpuCacheAgent(std::string name, SimContext& ctx,
                  const CacheAgent::Params& l2Params, const L1Params& l1Params);

    /// Does the L1 tag filter currently hold @p addr's line?
    bool l1Hit(Addr addr) const;

    /// Records an L1 fill/touch for @p addr (called when an access
    /// completes so latency filtering tracks the actual data flow).
    void l1Insert(Addr addr);

    /// Fig. 3 remote-store transitions on the CPU side. Ensures the local
    /// hierarchy holds no copy of @p addr's line, then invokes @p ready:
    ///  - I:      immediately;
    ///  - S/M:    silent invalidate, immediately;
    ///  - MM/O:   issue a writeback and fire @p ready once the home
    ///            acknowledged it, so the direct store's partial-line
    ///            fetch-merge at the GPU L2 observes the written-back bytes.
    /// In a translated program the DS region is never CPU-cached, so the
    /// non-I cases only trigger for hand-built programs and tests.
    void prepareRemoteStore(Addr addr, std::function<void()> ready);

    void regStats(StatRegistry& registry) override;

    std::uint64_t l1Hits() const { return l1Hits_.value(); }
    std::uint64_t l1Misses() const { return l1Misses_.value(); }

    /// L2 agent state plus the L1 tag filter.
    void snapSave(snap::SnapWriter& w) const override
    {
        CacheAgent::snapSave(w);
        l1_.snapSave(w, [](snap::SnapWriter&, const L1Meta&) {});
    }
    void snapRestore(snap::SnapReader& r) override
    {
        CacheAgent::snapRestore(r);
        l1_.snapRestore(r, [](snap::SnapReader&, L1Meta&) {});
    }

protected:
    void onFill(Line& line) override;
    void onInvalidate(Addr base) override;

private:
    struct L1Meta {};
    mutable CacheArray<L1Meta> l1_;

    Counter l1Hits_;
    Counter l1Misses_;
    Counter remoteStoreInvalidations_;
    Counter remoteStoreWritebacks_;
};

} // namespace dscoh
