// CPU TLB with the paper's added logic (§III-E): a comparator on high-order
// virtual address bits detects the reserved direct-store region and signals
// the MMU to forward the store to the GPU L2 over the dedicated network.
//
// Timing: a hit costs nothing extra (folded into L1 access); a miss charges a
// fixed page-table-walk latency. Fully associative, true-LRU, as small TLBs
// typically are.
#pragma once

#include <cstdint>
#include <iterator>
#include <list>
#include <unordered_map>

#include "sim/sim_object.h"
#include "sim/stats.h"
#include "vm/address_space.h"

namespace dscoh {

struct TlbResult {
    Translation translation;
    Tick latency = 0; ///< extra ticks charged (page-table walk on miss)
    bool hit = false;
};

class Tlb final : public SimObject {
public:
    struct Params {
        std::uint32_t entries = 64;
        Tick walkLatency = 80;
    };

    Tlb(std::string name, SimContext& ctx, const AddressSpace& space,
        Params params);

    Tlb(std::string name, SimContext& ctx, const AddressSpace& space)
        : Tlb(std::move(name), ctx, space, Params{})
    {
    }

    /// Translates @p va; result.translation.dsRegion is the paper's
    /// "forward this store to the GPU" signal.
    TlbResult translate(Addr va);

    void flush();

    void regStats(StatRegistry& registry) override;

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

    /// LRU recency order is machine state: after restore the next victim
    /// must match the uninterrupted run.
    void snapSave(snap::SnapWriter& w) const override
    {
        w.u64(lru_.size());
        for (const Addr page : lru_) // front = most recent
            w.u64(page);
    }

    void snapRestore(snap::SnapReader& r) override
    {
        lru_.clear();
        entries_.clear();
        const std::uint64_t n = r.u64();
        for (std::uint64_t i = 0; i < n; ++i) {
            lru_.push_back(r.u64());
            entries_[lru_.back()] = std::prev(lru_.end());
        }
    }

private:
    const AddressSpace& space_;
    Params params_;

    // LRU list of VA pages, most recent at front; map into the list.
    std::list<Addr> lru_;
    std::unordered_map<Addr, std::list<Addr>::iterator> entries_;

    Counter hits_;
    Counter misses_;
    Counter dsDetections_;
};

} // namespace dscoh
