#include "cpu/cpu_core.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "coherence/transition_coverage.h"

namespace dscoh {

CpuCore::CpuCore(std::string name, SimContext& ctx, Params params, Tlb& tlb,
                 CpuCacheAgent& cache)
    : SimObject(std::move(name), ctx), params_(std::move(params)), tlb_(tlb),
      cache_(cache)
{
}

void CpuCore::run(const CpuProgram& program, std::function<void()> onDone)
{
    assert(program_ == nullptr && "core already running a program");
    program_ = &program;
    pc_ = 0;
    onDone_ = std::move(onDone);
    queue().scheduleAfterInline(0, [this] { step(); }, EventPriority::kCore);
}

void CpuCore::finishOp()
{
    ++pc_;
    queue().scheduleAfterInline(1, [this] { step(); }, EventPriority::kCore);
}

void CpuCore::step()
{
    assert(program_ != nullptr);
    if (pc_ >= program_->size()) {
        // Implicit trailing fence: the program is done when every store is
        // globally performed.
        flushAllRsb();
        fencing_ = true;
        maybeFinishFence();
        return;
    }

    const CpuOp& op = (*program_)[pc_];
    switch (op.kind) {
    case CpuOp::Kind::kCompute:
        queue().scheduleAfterInline(op.delay, [this] { finishOp(); },
                              EventPriority::kCore);
        break;
    case CpuOp::Kind::kFence:
        execFence();
        break;
    case CpuOp::Kind::kLoad:
        execLoad(op);
        break;
    case CpuOp::Kind::kStore:
        execStore(op);
        break;
    }
}

void CpuCore::execFence()
{
    flushAllRsb();
    fencing_ = true;
    maybeFinishFence();
}

void CpuCore::maybeFinishFence()
{
    if (!fencing_ || !storesDrained())
        return;
    fencing_ = false;
    if (pc_ >= program_->size()) {
        program_ = nullptr;
        auto done = std::move(onDone_);
        onDone_ = nullptr;
        if (done)
            done();
        return;
    }
    finishOp();
}

// ---------------------------------------------------------------- stores --

void CpuCore::execStore(const CpuOp& op)
{
    const TlbResult tr = tlb_.translate(op.vaddr);
    const Tick extra = tr.latency;
    if (tr.translation.dsRegion) {
        queue().scheduleAfterInline(extra, [this, pa = tr.translation.paddr, op] {
            remoteStore(pa, op);
            finishOp();
        }, EventPriority::kCore);
        return;
    }

    if (storeBuffer_.size() >= params_.storeBufferEntries) {
        // In-order core: wait for a slot, then retry this op.
        stalledStores_.push_back(op);
        return;
    }
    queue().scheduleAfterInline(extra, [this, pa = tr.translation.paddr, op] {
        pushStoreBuffer(pa, op);
        finishOp();
    }, EventPriority::kCore);
}

void CpuCore::pushStoreBuffer(Addr pa, const CpuOp& op)
{
    stores_.inc();
    const Addr base = lineAlign(pa);
    for (StoreBufferEntry& entry : storeBuffer_) {
        if (entry.base != base)
            continue;
        // Write-combine into the entry whose drain is already in flight;
        // the drain callback applies whatever bytes accumulated by then.
        entry.data.write(lineOffset(pa), op.value, op.size);
        entry.mask.set(lineOffset(pa), op.size);
        return;
    }
    StoreBufferEntry entry;
    entry.base = base;
    entry.data.write(lineOffset(pa), op.value, op.size);
    entry.mask.set(lineOffset(pa), op.size);
    storeBuffer_.push_back(std::move(entry));
    drainStoreEntry(base);
}

void CpuCore::drainStoreEntry(Addr base)
{
    ++inFlightStores_;
    const Tick lookup = cache_.l1Hit(base)
                            ? params_.l1Latency
                            : params_.l1Latency + params_.l2Latency;
    queue().scheduleAfterInline(lookup, [this, base] {
        cache_.access(base, /*exclusive=*/true,
                      [this, base](CacheAgent::Line& line) {
                          // Apply every byte combined into the entry so far.
                          const auto it = std::find_if(
                              storeBuffer_.begin(), storeBuffer_.end(),
                              [base](const StoreBufferEntry& e) {
                                  return e.base == base;
                              });
                          assert(it != storeBuffer_.end());
                          it->mask.apply(line.data, it->data);
                          if (CoherenceChecker* c = checking())
                              c->onStoreApplied(base, it->data, it->mask);
                          storeBuffer_.erase(it);
                          cache_.l1Insert(base);
                          --inFlightStores_;
                          if (!stalledStores_.empty() &&
                              storeBuffer_.size() < params_.storeBufferEntries) {
                              const CpuOp next = stalledStores_.front();
                              stalledStores_.pop_front();
                              execStore(next);
                          }
                          maybeFinishFence();
                      });
    }, EventPriority::kCore);
}

// ---------------------------------------------------------- remote stores --

void CpuCore::remoteStore(Addr pa, const CpuOp& op)
{
    assert(params_.dsNet != nullptr && params_.sliceOf &&
           "direct-store path used without a DS network");
    remoteStores_.inc();
    const Addr base = lineAlign(pa);

    for (std::size_t i = 0; i < rsb_.size(); ++i) {
        if (rsb_[i].base != base)
            continue;
        rsb_[i].data.write(lineOffset(pa), op.value, op.size);
        rsb_[i].mask.set(lineOffset(pa), op.size);
        if (rsb_[i].mask.full())
            flushRsbEntry(i);
        return;
    }

    if (rsb_.size() >= params_.rsbEntries)
        flushRsbEntry(0); // evict the oldest write-combining entry

    RsbEntry entry;
    entry.base = base;
    entry.data.write(lineOffset(pa), op.value, op.size);
    entry.mask.set(lineOffset(pa), op.size);
    rsb_.push_back(std::move(entry));
}

void CpuCore::flushRsbEntry(std::size_t index)
{
    assert(index < rsb_.size());
    RsbEntry entry = std::move(rsb_[index]);
    rsb_.erase(rsb_.begin() + static_cast<std::ptrdiff_t>(index));
    // Counts the store from here until it is globally performed (acked or
    // applied through the fallback path), backlog time included.
    ++pendingDsAcks_;
    if (TxnProfiler* p = profiling())
        entry.prof = p->begin(TxnKind::kDsPush, entry.base, name(), curTick());

    if (hardened()) {
        if (dsInFlight_.size() >= params_.dsInFlightMax) {
            if (TxnProfiler* p = profiling())
                p->hop(entry.prof, TxnStage::kBacklog, name(), curTick());
            dsBacklog_.push_back(std::move(entry));
            return;
        }
        startDsStore(std::move(entry));
        return;
    }

    // Fig. 3: give up any local copy first (I/S/M/MM -> I), then push the
    // line over the dedicated network to the slice that owns the address.
    cache_.prepareRemoteStore(entry.base, [this, e = std::move(entry)] {
        Message msg;
        msg.type = MsgType::kDsPutX;
        msg.addr = e.base;
        msg.src = params_.self;
        msg.dst = params_.sliceOf(e.base);
        msg.requester = params_.self;
        msg.data = e.data;
        msg.mask = e.mask;
        msg.hasData = true;
        msg.dirty = true;
        msg.prof = e.prof;
        if (TxnProfiler* p = profiling())
            p->hop(e.prof, TxnStage::kIssue, name(), curTick());
        params_.dsNet->send(std::move(msg));
        dsPutxSent_.inc();
    });
}

// ------------------------------------------------ hardened store delivery --

void CpuCore::startDsStore(RsbEntry entry)
{
    cache_.prepareRemoteStore(entry.base, [this, e = std::move(entry)] {
        const std::uint64_t txn = nextDsTxn_++;
        DsInFlight& f = dsInFlight_[txn];
        f.base = e.base;
        f.data = e.data;
        f.mask = e.mask;
        f.prof = e.prof;
        sendDsPutX(txn);
    });
}

void CpuCore::sendDsPutX(std::uint64_t txn)
{
    const auto it = dsInFlight_.find(txn);
    assert(it != dsInFlight_.end());
    DsInFlight& f = it->second;
    if (dsNetMarkedDown()) {
        // Don't even put it on the wire: degrade immediately.
        beginDsFallback(txn);
        return;
    }
    Message msg;
    msg.type = MsgType::kDsPutX;
    msg.addr = f.base;
    msg.src = params_.self;
    msg.dst = params_.sliceOf(f.base);
    msg.requester = params_.self;
    msg.txn = txn;
    msg.data = f.data;
    msg.mask = f.mask;
    msg.hasData = true;
    msg.dirty = true;
    msg.prof = f.prof;
    if (TxnProfiler* p = profiling())
        p->hop(f.prof, TxnStage::kIssue, name(), curTick());
    params_.dsNet->send(std::move(msg));
    dsPutxSent_.inc();
    armDsTimeout(txn);
}

void CpuCore::armDsTimeout(std::uint64_t txn)
{
    const auto it = dsInFlight_.find(txn);
    assert(it != dsInFlight_.end());
    const DsInFlight& f = it->second;
    const Tick wait = params_.dsAckTimeout
                      << std::min<std::uint32_t>(f.retries, 6);
    queue().scheduleAfterInline(wait,
                          [this, txn, seq = f.seq] { onDsTimeout(txn, seq); },
                          EventPriority::kCore);
}

void CpuCore::onDsTimeout(std::uint64_t txn, std::uint64_t seq)
{
    const auto it = dsInFlight_.find(txn);
    if (it == dsInFlight_.end() || it->second.seq != seq ||
        it->second.fallbackPending)
        return; // acked meanwhile, superseded, or already degrading
    dsTimeouts_.inc();
    if (TraceSession* t = tracing(TraceCat::kNet))
        t->instant(TraceCat::kNet, name(), "ds.timeout", curTick(),
                   it->second.base);
    retryDsStore(txn);
}

void CpuCore::retryDsStore(std::uint64_t txn)
{
    DsInFlight& f = dsInFlight_.at(txn);
    if (f.retries >= params_.dsMaxRetries && params_.dsFallback) {
        beginDsFallback(txn);
        return;
    }
    // Without a fallback path (dsonly mode) keep retrying at the backoff
    // cap: the outage is the only thing that can un-wedge the workload.
    if (f.retries < params_.dsMaxRetries)
        ++f.retries;
    ++f.seq;
    dsRetries_.inc();
    if (TxnProfiler* p = profiling())
        p->hop(f.prof, TxnStage::kRetry, name(), curTick());
    if (TraceSession* t = tracing(TraceCat::kNet))
        t->instant(TraceCat::kNet, name(), "ds.retransmit", curTick(), f.base);
    sendDsPutX(txn);
}

void CpuCore::beginDsFallback(std::uint64_t txn)
{
    assert(params_.dsFallback);
    DsInFlight& f = dsInFlight_.at(txn);
    f.fallbackPending = true;
    ++f.seq; // disarm any in-flight timeout
    if (TxnProfiler* p = profiling())
        p->hop(f.prof, TxnStage::kFallbackArm, name(), curTick());
    if (TraceSession* t = tracing(TraceCat::kNet))
        t->instant(TraceCat::kNet, name(), "ds.fallback-arm", curTick(),
                   f.base);
    // Wait out the maximum-segment-lifetime window first so no copy of the
    // abandoned push is still on the wire when the pull path takes over. A
    // late ack arriving during the window cancels the fallback.
    queue().scheduleAfterInline(params_.dsMslTicks,
                          [this, txn] { applyDsFallback(txn); },
                          EventPriority::kCore);
}

void CpuCore::applyDsFallback(std::uint64_t txn)
{
    const auto it = dsInFlight_.find(txn);
    if (it == dsInFlight_.end())
        return; // an ack landed during the drain window and completed it
    const DsInFlight f = std::move(it->second);
    dsInFlight_.erase(it);
    dsFallbackStores_.inc();
    if (TxnProfiler* p = profiling())
        p->hop(f.prof, TxnStage::kFallback, name(), curTick());
    if (TraceSession* t = tracing(TraceCat::kNet))
        t->instant(TraceCat::kNet, name(), "ds.fallback", curTick(), f.base);
    // The baseline pull-based write: acquire ownership through the regular
    // coherence protocol and apply the combined bytes locally. The GPU will
    // pull the line back on demand, exactly as under CCSM.
    cache_.access(f.base, /*exclusive=*/true,
                  [this, f](CacheAgent::Line& line) {
                      f.mask.apply(line.data, f.data);
                      if (CoherenceChecker* c = checking())
                          c->onStoreApplied(f.base, f.data, f.mask);
                      recordTransition(CohState::kI, CohEvent::kFallbackStore,
                                       CohState::kMM);
                      if (TxnProfiler* p = profiling())
                          p->end(f.prof, curTick());
                      completeDsStore();
                  });
}

void CpuCore::completeDsStore()
{
    assert(pendingDsAcks_ > 0);
    --pendingDsAcks_;
    if (!dsBacklog_.empty() && dsInFlight_.size() < params_.dsInFlightMax) {
        RsbEntry e = std::move(dsBacklog_.front());
        dsBacklog_.pop_front();
        startDsStore(std::move(e));
    }
    if (pendingDsAcks_ == 0) {
        std::deque<std::function<void()>> thunks;
        thunks.swap(awaitingDsDrain_);
        for (auto& t : thunks)
            t();
    }
    maybeFinishFence();
}

void CpuCore::flushAllRsb()
{
    while (!rsb_.empty())
        flushRsbEntry(0);
}

// ----------------------------------------------------------------- loads --

void CpuCore::execLoad(const CpuOp& op)
{
    loads_.inc();
    loadStart_ = curTick();
    const TlbResult tr = tlb_.translate(op.vaddr);

    if (tr.translation.dsRegion) {
        doUncachedLoad(tr.translation.paddr, op, tr.latency);
        return;
    }

    // Store->load forwarding from the write-combining store buffer.
    const Addr pa = tr.translation.paddr;
    for (const StoreBufferEntry& entry : storeBuffer_) {
        if (entry.base != lineAlign(pa))
            continue;
        bool covered = true;
        for (std::uint32_t i = 0; i < op.size; ++i)
            covered = covered && entry.mask.test(lineOffset(pa) + i);
        if (!covered)
            break; // partially buffered: let the access path order it
        storeForwards_.inc();
        const std::uint64_t value = entry.data.read(lineOffset(pa), op.size);
        queue().scheduleAfterInline(tr.latency + params_.l1Latency,
                              [this, op, value] {
                                  checkLoadedValue(op, value);
                                  loadLatency_.sample(curTick() - loadStart_);
                                  finishOp();
                              }, EventPriority::kCore);
        return;
    }

    doLocalLoad(tr.translation.paddr, op, tr.latency);
}

void CpuCore::doLocalLoad(Addr pa, const CpuOp& op, Tick extraLatency)
{
    const Tick lookup = cache_.l1Hit(pa)
                            ? params_.l1Latency
                            : params_.l1Latency + params_.l2Latency;
    queue().scheduleAfterInline(extraLatency + lookup, [this, pa, op] {
        cache_.access(pa, /*exclusive=*/false,
                      [this, pa, op](CacheAgent::Line& line) {
                          const std::uint64_t value =
                              line.data.read(lineOffset(pa), op.size);
                          cache_.l1Insert(pa);
                          checkLoadedValue(op, value);
                          loadLatency_.sample(curTick() - loadStart_);
                          finishOp();
                      });
    }, EventPriority::kCore);
}

void CpuCore::doUncachedLoad(Addr pa, const CpuOp& op, Tick extraLatency)
{
    // Forward from a pending write-combining entry when it covers the load.
    const Addr base = lineAlign(pa);
    for (const RsbEntry& entry : rsb_) {
        if (entry.base != base)
            continue;
        bool covered = true;
        for (std::uint32_t i = 0; i < op.size; ++i)
            covered = covered && entry.mask.test(lineOffset(pa) + i);
        if (covered) {
            const std::uint64_t value = entry.data.read(lineOffset(pa), op.size);
            queue().scheduleAfterInline(extraLatency + params_.l1Latency,
                                  [this, op, value] {
                                      checkLoadedValue(op, value);
                                      loadLatency_.sample(curTick() - loadStart_);
                                      finishOp();
                                  }, EventPriority::kCore);
            return;
        }
        // Partially covered: push the entry out and read from the slice
        // once the push is acknowledged, to keep the bytes ordered.
        for (std::size_t i = 0; i < rsb_.size(); ++i) {
            if (rsb_[i].base == base) {
                flushRsbEntry(i);
                break;
            }
        }
        awaitingDsDrain_.push_back([this, pa, op] {
            doUncachedLoad(pa, op, 0);
        });
        return;
    }

    ucReads_.inc();
    assert(!pendingUcLoad_ && "in-order core: one uncached load at a time");
    // The span id rides in ucProf_ rather than the event capture (in-order
    // core: one uncached load at a time) to keep the event inline-sized.
    ucProf_ = 0;
    if (TxnProfiler* p = profiling())
        ucProf_ = p->begin(TxnKind::kUcRead, lineAlign(pa), name(), curTick());
    queue().scheduleAfterInline(extraLatency, [this, pa, op] {
        pendingUcLoad_ = [this, pa, op](const Message& reply) {
            const std::uint64_t value = reply.data.read(lineOffset(pa), op.size);
            checkLoadedValue(op, value);
            loadLatency_.sample(curTick() - loadStart_);
            finishOp();
        };
        if (hardened()) {
            ucPa_ = pa;
            ucOp_ = op;
            ucRetries_ = 0;
            ucTxn_ = nextDsTxn_++;
            ++ucSeq_;
            sendUcRead();
            return;
        }
        Message msg;
        msg.type = MsgType::kUcRead;
        msg.addr = lineAlign(pa);
        msg.src = params_.self;
        msg.dst = params_.sliceOf(pa);
        msg.requester = params_.self;
        msg.prof = ucProf_;
        if (TxnProfiler* p = profiling())
            p->hop(ucProf_, TxnStage::kIssue, name(), curTick());
        params_.dsNet->send(std::move(msg));
    }, EventPriority::kCore);
}

// ------------------------------------------------- hardened uncached loads --

void CpuCore::sendUcRead()
{
    if (dsNetMarkedDown()) {
        fallbackUcLoad();
        return;
    }
    Message msg;
    msg.type = MsgType::kUcRead;
    msg.addr = lineAlign(ucPa_);
    msg.src = params_.self;
    msg.dst = params_.sliceOf(ucPa_);
    msg.requester = params_.self;
    msg.txn = ucTxn_;
    msg.prof = ucProf_;
    if (TxnProfiler* p = profiling())
        p->hop(ucProf_, TxnStage::kIssue, name(), curTick());
    params_.dsNet->send(std::move(msg));
    const Tick wait = params_.dsAckTimeout
                      << std::min<std::uint32_t>(ucRetries_, 6);
    queue().scheduleAfterInline(
        wait, [this, txn = ucTxn_, seq = ucSeq_] { onUcTimeout(txn, seq); },
        EventPriority::kCore);
}

void CpuCore::onUcTimeout(std::uint64_t txn, std::uint64_t seq)
{
    if (!pendingUcLoad_ || ucTxn_ != txn || ucSeq_ != seq)
        return; // completed or superseded
    dsTimeouts_.inc();
    if (TraceSession* t = tracing(TraceCat::kNet))
        t->instant(TraceCat::kNet, name(), "ds.timeout", curTick(), ucPa_);
    retryUcLoad();
}

void CpuCore::retryUcLoad()
{
    if (ucRetries_ >= params_.dsMaxRetries && params_.dsFallback) {
        fallbackUcLoad();
        return;
    }
    if (ucRetries_ < params_.dsMaxRetries)
        ++ucRetries_;
    ++ucSeq_;
    dsRetries_.inc();
    if (TxnProfiler* p = profiling())
        p->hop(ucProf_, TxnStage::kRetry, name(), curTick());
    if (TraceSession* t = tracing(TraceCat::kNet))
        t->instant(TraceCat::kNet, name(), "ds.retransmit", curTick(), ucPa_);
    sendUcRead();
}

void CpuCore::fallbackUcLoad()
{
    assert(pendingUcLoad_);
    pendingUcLoad_ = nullptr;
    ++ucSeq_; // disarm any in-flight timeout
    dsFallbackLoads_.inc();
    if (TxnProfiler* p = profiling()) {
        p->hop(ucProf_, TxnStage::kFallback, name(), curTick());
        p->end(ucProf_, curTick());
    }
    if (TraceSession* t = tracing(TraceCat::kNet))
        t->instant(TraceCat::kNet, name(), "ds.fallback", curTick(), ucPa_);
    // Degrade to a regular coherent load; it completes the op itself. No
    // drain window is needed: a late UcData reply carries a stale txn and
    // is ignored.
    doLocalLoad(ucPa_, ucOp_, 0);
}

void CpuCore::checkLoadedValue(const CpuOp& op, std::uint64_t value)
{
    if (!op.check)
        return;
    const std::uint64_t mask =
        op.size >= 8 ? ~0ull : ((1ull << (op.size * 8)) - 1);
    if ((value & mask) != (op.value & mask))
        checkFailures_.inc();
}

// -------------------------------------------------------------- messages --

void CpuCore::handleDsMessage(const Message& msg)
{
    switch (msg.type) {
    case MsgType::kDsAck: {
        if (hardened()) {
            const auto it = dsInFlight_.find(msg.txn);
            if (it == dsInFlight_.end())
                break; // duplicate or post-fallback straggler
            // An ack always wins, including during a fallback drain window:
            // the push was globally performed after all.
            if (TxnProfiler* p = profiling()) {
                p->hop(msg.prof, TxnStage::kAckArrive, name(), curTick());
                p->end(msg.prof, curTick());
            }
            dsInFlight_.erase(it);
            completeDsStore();
            break;
        }
        // Legacy path: tolerate stray acks (a duplication fault can echo
        // one even with hardening off).
        if (pendingDsAcks_ == 0)
            break;
        if (TxnProfiler* p = profiling()) {
            p->hop(msg.prof, TxnStage::kAckArrive, name(), curTick());
            p->end(msg.prof, curTick());
        }
        --pendingDsAcks_;
        if (pendingDsAcks_ == 0) {
            std::deque<std::function<void()>> thunks;
            thunks.swap(awaitingDsDrain_);
            for (auto& t : thunks)
                t();
        }
        maybeFinishFence();
        break;
    }
    case MsgType::kDsNack: {
        // The slice rejected a corrupt push; resend (or degrade) as if the
        // timeout had fired.
        const auto it = dsInFlight_.find(msg.txn);
        if (it == dsInFlight_.end() || it->second.fallbackPending)
            break;
        retryDsStore(msg.txn);
        break;
    }
    case MsgType::kUcData: {
        if (hardened()) {
            if (!pendingUcLoad_ || msg.txn != ucTxn_)
                break; // stale reply from a superseded attempt
            if (params_.dsVerifyChecksum &&
                msg.checksum != messageChecksum(msg)) {
                retryUcLoad();
                break;
            }
            ++ucSeq_; // disarm the timeout
            if (TxnProfiler* p = profiling()) {
                p->hop(msg.prof, TxnStage::kDataArrive, name(), curTick());
                p->end(msg.prof, curTick());
            }
            auto handler = std::move(pendingUcLoad_);
            pendingUcLoad_ = nullptr;
            handler(msg);
            break;
        }
        if (!pendingUcLoad_)
            break; // stray duplicate of an already-served reply
        if (TxnProfiler* p = profiling()) {
            p->hop(msg.prof, TxnStage::kDataArrive, name(), curTick());
            p->end(msg.prof, curTick());
        }
        auto handler = std::move(pendingUcLoad_);
        pendingUcLoad_ = nullptr;
        handler(msg);
        break;
    }
    default:
        assert(false && "unexpected DS-network message at the CPU");
    }
}

std::string CpuCore::outstandingWork() const
{
    std::string out;
    const auto item = [&out](const std::string& what) {
        if (!out.empty())
            out += ", ";
        out += what;
    };
    if (program_ != nullptr)
        item("executing op " + std::to_string(pc_) + "/" +
             std::to_string(program_->size()));
    if (!storeBuffer_.empty() || inFlightStores_ != 0)
        item(std::to_string(storeBuffer_.size()) + " buffered / " +
             std::to_string(inFlightStores_) + " in-flight local stores");
    if (!stalledStores_.empty())
        item(std::to_string(stalledStores_.size()) + " stalled stores");
    if (!rsb_.empty())
        item(std::to_string(rsb_.size()) + " write-combining entries");
    if (pendingDsAcks_ != 0)
        item(std::to_string(pendingDsAcks_) + " unacked direct stores (" +
             std::to_string(dsInFlight_.size()) + " in flight, " +
             std::to_string(dsBacklog_.size()) + " backlogged)");
    if (pendingUcLoad_)
        item("an outstanding uncached load");
    return out;
}

void CpuCore::regStats(StatRegistry& registry)
{
    registry.registerCounter(statName("loads"), &loads_);
    registry.registerCounter(statName("stores"), &stores_);
    registry.registerCounter(statName("remote_stores"), &remoteStores_);
    registry.registerCounter(statName("ds_putx_sent"), &dsPutxSent_);
    registry.registerCounter(statName("uc_reads"), &ucReads_);
    registry.registerCounter(statName("store_forwards"), &storeForwards_);
    registry.registerCounter(statName("check_failures"), &checkFailures_);
    if (hardened()) {
        // Only present on the hardened path so the legacy stat set (and its
        // JSON dump) stays byte-identical.
        registry.registerCounter(statName("ds_retries"), &dsRetries_);
        registry.registerCounter(statName("ds_timeouts"), &dsTimeouts_);
        registry.registerCounter(statName("ds_fallback_stores"),
                                 &dsFallbackStores_);
        registry.registerCounter(statName("ds_fallback_loads"),
                                 &dsFallbackLoads_);
    }
    registry.registerHistogram(statName("load_latency"), &loadLatency_);
}

void CpuCore::snapSave(snap::SnapWriter& w) const
{
    requireQuiesced(idle(), name() + " is executing a program");
    requireQuiesced(storesDrained(), name() + " has undrained stores");
    requireQuiesced(stalledStores_.empty() && awaitingDsDrain_.empty() &&
                        !pendingUcLoad_,
                    name() + " has pending memory operations");
    requireQuiesced(dsInFlight_.empty() && dsBacklog_.empty(),
                    name() + " has unacknowledged direct stores");
    w.u8(1); // quiescence marker: the core itself carries no state
}

void CpuCore::snapRestore(snap::SnapReader& r)
{
    if (r.u8() != 1)
        throw snap::SnapError(name() + ": bad quiescence marker");
}

} // namespace dscoh
