#include "cpu/cpu_core.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace dscoh {

CpuCore::CpuCore(std::string name, SimContext& ctx, Params params, Tlb& tlb,
                 CpuCacheAgent& cache)
    : SimObject(std::move(name), ctx), params_(std::move(params)), tlb_(tlb),
      cache_(cache)
{
}

void CpuCore::run(const CpuProgram& program, std::function<void()> onDone)
{
    assert(program_ == nullptr && "core already running a program");
    program_ = &program;
    pc_ = 0;
    onDone_ = std::move(onDone);
    queue().scheduleAfter(0, [this] { step(); }, EventPriority::kCore);
}

void CpuCore::finishOp()
{
    ++pc_;
    queue().scheduleAfter(1, [this] { step(); }, EventPriority::kCore);
}

void CpuCore::step()
{
    assert(program_ != nullptr);
    if (pc_ >= program_->size()) {
        // Implicit trailing fence: the program is done when every store is
        // globally performed.
        flushAllRsb();
        fencing_ = true;
        maybeFinishFence();
        return;
    }

    const CpuOp& op = (*program_)[pc_];
    switch (op.kind) {
    case CpuOp::Kind::kCompute:
        queue().scheduleAfter(op.delay, [this] { finishOp(); },
                              EventPriority::kCore);
        break;
    case CpuOp::Kind::kFence:
        execFence();
        break;
    case CpuOp::Kind::kLoad:
        execLoad(op);
        break;
    case CpuOp::Kind::kStore:
        execStore(op);
        break;
    }
}

void CpuCore::execFence()
{
    flushAllRsb();
    fencing_ = true;
    maybeFinishFence();
}

void CpuCore::maybeFinishFence()
{
    if (!fencing_ || !storesDrained())
        return;
    fencing_ = false;
    if (pc_ >= program_->size()) {
        program_ = nullptr;
        auto done = std::move(onDone_);
        onDone_ = nullptr;
        if (done)
            done();
        return;
    }
    finishOp();
}

// ---------------------------------------------------------------- stores --

void CpuCore::execStore(const CpuOp& op)
{
    const TlbResult tr = tlb_.translate(op.vaddr);
    const Tick extra = tr.latency;
    if (tr.translation.dsRegion) {
        queue().scheduleAfter(extra, [this, pa = tr.translation.paddr, op] {
            remoteStore(pa, op);
            finishOp();
        }, EventPriority::kCore);
        return;
    }

    if (storeBuffer_.size() >= params_.storeBufferEntries) {
        // In-order core: wait for a slot, then retry this op.
        stalledStores_.push_back(op);
        return;
    }
    queue().scheduleAfter(extra, [this, pa = tr.translation.paddr, op] {
        pushStoreBuffer(pa, op);
        finishOp();
    }, EventPriority::kCore);
}

void CpuCore::pushStoreBuffer(Addr pa, const CpuOp& op)
{
    stores_.inc();
    const Addr base = lineAlign(pa);
    for (StoreBufferEntry& entry : storeBuffer_) {
        if (entry.base != base)
            continue;
        // Write-combine into the entry whose drain is already in flight;
        // the drain callback applies whatever bytes accumulated by then.
        entry.data.write(lineOffset(pa), op.value, op.size);
        entry.mask.set(lineOffset(pa), op.size);
        return;
    }
    StoreBufferEntry entry;
    entry.base = base;
    entry.data.write(lineOffset(pa), op.value, op.size);
    entry.mask.set(lineOffset(pa), op.size);
    storeBuffer_.push_back(std::move(entry));
    drainStoreEntry(base);
}

void CpuCore::drainStoreEntry(Addr base)
{
    ++inFlightStores_;
    const Tick lookup = cache_.l1Hit(base)
                            ? params_.l1Latency
                            : params_.l1Latency + params_.l2Latency;
    queue().scheduleAfter(lookup, [this, base] {
        cache_.access(base, /*exclusive=*/true,
                      [this, base](CacheAgent::Line& line) {
                          // Apply every byte combined into the entry so far.
                          const auto it = std::find_if(
                              storeBuffer_.begin(), storeBuffer_.end(),
                              [base](const StoreBufferEntry& e) {
                                  return e.base == base;
                              });
                          assert(it != storeBuffer_.end());
                          it->mask.apply(line.data, it->data);
                          if (CoherenceChecker* c = checking())
                              c->onStoreApplied(base, it->data, it->mask);
                          storeBuffer_.erase(it);
                          cache_.l1Insert(base);
                          --inFlightStores_;
                          if (!stalledStores_.empty() &&
                              storeBuffer_.size() < params_.storeBufferEntries) {
                              const CpuOp next = stalledStores_.front();
                              stalledStores_.pop_front();
                              execStore(next);
                          }
                          maybeFinishFence();
                      });
    }, EventPriority::kCore);
}

// ---------------------------------------------------------- remote stores --

void CpuCore::remoteStore(Addr pa, const CpuOp& op)
{
    assert(params_.dsNet != nullptr && params_.sliceOf &&
           "direct-store path used without a DS network");
    remoteStores_.inc();
    const Addr base = lineAlign(pa);

    for (std::size_t i = 0; i < rsb_.size(); ++i) {
        if (rsb_[i].base != base)
            continue;
        rsb_[i].data.write(lineOffset(pa), op.value, op.size);
        rsb_[i].mask.set(lineOffset(pa), op.size);
        if (rsb_[i].mask.full())
            flushRsbEntry(i);
        return;
    }

    if (rsb_.size() >= params_.rsbEntries)
        flushRsbEntry(0); // evict the oldest write-combining entry

    RsbEntry entry;
    entry.base = base;
    entry.data.write(lineOffset(pa), op.value, op.size);
    entry.mask.set(lineOffset(pa), op.size);
    rsb_.push_back(std::move(entry));
}

void CpuCore::flushRsbEntry(std::size_t index)
{
    assert(index < rsb_.size());
    RsbEntry entry = std::move(rsb_[index]);
    rsb_.erase(rsb_.begin() + static_cast<std::ptrdiff_t>(index));
    ++pendingDsAcks_;

    // Fig. 3: give up any local copy first (I/S/M/MM -> I), then push the
    // line over the dedicated network to the slice that owns the address.
    cache_.prepareRemoteStore(entry.base, [this, e = std::move(entry)] {
        Message msg;
        msg.type = MsgType::kDsPutX;
        msg.addr = e.base;
        msg.src = params_.self;
        msg.dst = params_.sliceOf(e.base);
        msg.requester = params_.self;
        msg.data = e.data;
        msg.mask = e.mask;
        msg.hasData = true;
        msg.dirty = true;
        params_.dsNet->send(std::move(msg));
        dsPutxSent_.inc();
    });
}

void CpuCore::flushAllRsb()
{
    while (!rsb_.empty())
        flushRsbEntry(0);
}

// ----------------------------------------------------------------- loads --

void CpuCore::execLoad(const CpuOp& op)
{
    loads_.inc();
    loadStart_ = curTick();
    const TlbResult tr = tlb_.translate(op.vaddr);

    if (tr.translation.dsRegion) {
        doUncachedLoad(tr.translation.paddr, op, tr.latency);
        return;
    }

    // Store->load forwarding from the write-combining store buffer.
    const Addr pa = tr.translation.paddr;
    for (const StoreBufferEntry& entry : storeBuffer_) {
        if (entry.base != lineAlign(pa))
            continue;
        bool covered = true;
        for (std::uint32_t i = 0; i < op.size; ++i)
            covered = covered && entry.mask.test(lineOffset(pa) + i);
        if (!covered)
            break; // partially buffered: let the access path order it
        storeForwards_.inc();
        const std::uint64_t value = entry.data.read(lineOffset(pa), op.size);
        queue().scheduleAfter(tr.latency + params_.l1Latency,
                              [this, op, value] {
                                  checkLoadedValue(op, value);
                                  loadLatency_.sample(curTick() - loadStart_);
                                  finishOp();
                              }, EventPriority::kCore);
        return;
    }

    doLocalLoad(tr.translation.paddr, op, tr.latency);
}

void CpuCore::doLocalLoad(Addr pa, const CpuOp& op, Tick extraLatency)
{
    const Tick lookup = cache_.l1Hit(pa)
                            ? params_.l1Latency
                            : params_.l1Latency + params_.l2Latency;
    queue().scheduleAfter(extraLatency + lookup, [this, pa, op] {
        cache_.access(pa, /*exclusive=*/false,
                      [this, pa, op](CacheAgent::Line& line) {
                          const std::uint64_t value =
                              line.data.read(lineOffset(pa), op.size);
                          cache_.l1Insert(pa);
                          checkLoadedValue(op, value);
                          loadLatency_.sample(curTick() - loadStart_);
                          finishOp();
                      });
    }, EventPriority::kCore);
}

void CpuCore::doUncachedLoad(Addr pa, const CpuOp& op, Tick extraLatency)
{
    // Forward from a pending write-combining entry when it covers the load.
    const Addr base = lineAlign(pa);
    for (const RsbEntry& entry : rsb_) {
        if (entry.base != base)
            continue;
        bool covered = true;
        for (std::uint32_t i = 0; i < op.size; ++i)
            covered = covered && entry.mask.test(lineOffset(pa) + i);
        if (covered) {
            const std::uint64_t value = entry.data.read(lineOffset(pa), op.size);
            queue().scheduleAfter(extraLatency + params_.l1Latency,
                                  [this, op, value] {
                                      checkLoadedValue(op, value);
                                      loadLatency_.sample(curTick() - loadStart_);
                                      finishOp();
                                  }, EventPriority::kCore);
            return;
        }
        // Partially covered: push the entry out and read from the slice
        // once the push is acknowledged, to keep the bytes ordered.
        for (std::size_t i = 0; i < rsb_.size(); ++i) {
            if (rsb_[i].base == base) {
                flushRsbEntry(i);
                break;
            }
        }
        awaitingDsDrain_.push_back([this, pa, op] {
            doUncachedLoad(pa, op, 0);
        });
        return;
    }

    ucReads_.inc();
    assert(!pendingUcLoad_ && "in-order core: one uncached load at a time");
    queue().scheduleAfter(extraLatency, [this, pa, op] {
        Message msg;
        msg.type = MsgType::kUcRead;
        msg.addr = lineAlign(pa);
        msg.src = params_.self;
        msg.dst = params_.sliceOf(pa);
        msg.requester = params_.self;
        params_.dsNet->send(std::move(msg));
        pendingUcLoad_ = [this, pa, op](const Message& reply) {
            const std::uint64_t value = reply.data.read(lineOffset(pa), op.size);
            checkLoadedValue(op, value);
            loadLatency_.sample(curTick() - loadStart_);
            finishOp();
        };
    }, EventPriority::kCore);
}

void CpuCore::checkLoadedValue(const CpuOp& op, std::uint64_t value)
{
    if (!op.check)
        return;
    const std::uint64_t mask =
        op.size >= 8 ? ~0ull : ((1ull << (op.size * 8)) - 1);
    if ((value & mask) != (op.value & mask))
        checkFailures_.inc();
}

// -------------------------------------------------------------- messages --

void CpuCore::handleDsMessage(const Message& msg)
{
    switch (msg.type) {
    case MsgType::kDsAck: {
        assert(pendingDsAcks_ > 0);
        --pendingDsAcks_;
        if (pendingDsAcks_ == 0) {
            std::deque<std::function<void()>> thunks;
            thunks.swap(awaitingDsDrain_);
            for (auto& t : thunks)
                t();
        }
        maybeFinishFence();
        break;
    }
    case MsgType::kUcData: {
        assert(pendingUcLoad_);
        auto handler = std::move(pendingUcLoad_);
        pendingUcLoad_ = nullptr;
        handler(msg);
        break;
    }
    default:
        assert(false && "unexpected DS-network message at the CPU");
    }
}

void CpuCore::regStats(StatRegistry& registry)
{
    registry.registerCounter(statName("loads"), &loads_);
    registry.registerCounter(statName("stores"), &stores_);
    registry.registerCounter(statName("remote_stores"), &remoteStores_);
    registry.registerCounter(statName("ds_putx_sent"), &dsPutxSent_);
    registry.registerCounter(statName("uc_reads"), &ucReads_);
    registry.registerCounter(statName("store_forwards"), &storeForwards_);
    registry.registerCounter(statName("check_failures"), &checkFailures_);
    registry.registerHistogram(statName("load_latency"), &loadLatency_);
}

void CpuCore::snapSave(snap::SnapWriter& w) const
{
    requireQuiesced(idle(), name() + " is executing a program");
    requireQuiesced(storesDrained(), name() + " has undrained stores");
    requireQuiesced(stalledStores_.empty() && awaitingDsDrain_.empty() &&
                        !pendingUcLoad_,
                    name() + " has pending memory operations");
    w.u8(1); // quiescence marker: the core itself carries no state
}

void CpuCore::snapRestore(snap::SnapReader& r)
{
    if (r.u8() != 1)
        throw snap::SnapError(name() + ": bad quiescence marker");
}

} // namespace dscoh
