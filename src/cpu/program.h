// The CPU's instruction stream abstraction: a flat list of memory and
// compute operations, produced by the workload models (the producer phase of
// each benchmark) and executed in order by CpuCore.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace dscoh {

struct CpuOp {
    enum class Kind : std::uint8_t { kLoad, kStore, kCompute, kFence };

    Kind kind = Kind::kCompute;
    Addr vaddr = 0;          ///< kLoad/kStore
    std::uint32_t size = 8;  ///< access size in bytes (<= 8)
    std::uint64_t value = 0; ///< kStore: value; kLoad: expected value
    bool check = false;      ///< kLoad: verify the loaded value
    Tick delay = 0;          ///< kCompute: cycles of non-memory work
};

using CpuProgram = std::vector<CpuOp>;

/// Convenience builders used throughout workloads and tests.
inline CpuOp cpuStore(Addr va, std::uint64_t value, std::uint32_t size = 8)
{
    CpuOp op;
    op.kind = CpuOp::Kind::kStore;
    op.vaddr = va;
    op.value = value;
    op.size = size;
    return op;
}

inline CpuOp cpuLoad(Addr va, std::uint32_t size = 8)
{
    CpuOp op;
    op.kind = CpuOp::Kind::kLoad;
    op.vaddr = va;
    op.size = size;
    return op;
}

inline CpuOp cpuLoadCheck(Addr va, std::uint64_t expect, std::uint32_t size = 8)
{
    CpuOp op = cpuLoad(va, size);
    op.check = true;
    op.value = expect;
    return op;
}

inline CpuOp cpuCompute(Tick cycles)
{
    CpuOp op;
    op.kind = CpuOp::Kind::kCompute;
    op.delay = cycles;
    return op;
}

inline CpuOp cpuFence()
{
    CpuOp op;
    op.kind = CpuOp::Kind::kFence;
    return op;
}

} // namespace dscoh
