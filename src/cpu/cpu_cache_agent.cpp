#include "cpu/cpu_cache_agent.h"

#include <cassert>

#include "coherence/transition_coverage.h"
#include <utility>

namespace dscoh {

CpuCacheAgent::CpuCacheAgent(std::string name, SimContext& ctx,
                             const CacheAgent::Params& l2Params,
                             const L1Params& l1Params)
    : CacheAgent(std::move(name), ctx, l2Params), l1_(l1Params.geometry)
{
}

bool CpuCacheAgent::l1Hit(Addr addr) const
{
    return l1_.find(addr) != nullptr;
}

void CpuCacheAgent::l1Insert(Addr addr)
{
    if (l1_.find(addr) != nullptr) {
        l1_.touch(addr);
        l1Hits_.inc();
        return;
    }
    l1Misses_.inc();
    auto* way = l1_.findFreeWay(addr);
    if (way == nullptr) {
        way = l1_.selectVictim(addr, [](const CacheArray<L1Meta>::Line&) {
            return true; // tag filter: every line is silently droppable
        });
    }
    assert(way != nullptr);
    if (way->valid)
        l1_.invalidate(*way);
    l1_.install(*way, addr);
}

void CpuCacheAgent::onFill(Line& line)
{
    l1Insert(line.base);
}

void CpuCacheAgent::onInvalidate(Addr base)
{
    // Inclusion: the L1 filter may never hold a line the L2 lost.
    if (auto* l1Line = l1_.find(base))
        l1_.invalidate(*l1Line);
}

void CpuCacheAgent::prepareRemoteStore(Addr addr, std::function<void()> ready)
{
    const Addr base = lineAlign(addr);

    if (inWriteback(base)) {
        // A writeback for this line is already draining: wait for its ack.
        deferUntilResourceFree([this, base, r = std::move(ready)]() mutable {
            prepareRemoteStore(base, std::move(r));
        });
        return;
    }

    Line* lineHit = array().find(base);
    if (lineHit == nullptr) {
        // Fig. 3: a remote store from I forwards the data and stays I.
        noteTransition(CohState::kI, CohEvent::kRemoteStore, CohState::kI,
                       base);
        return ready();
    }

    if (params().injectBug == InjectedBug::kSkipRemoteStoreInval)
        return ready(); // deliberate bug: stale copy survives the remote store

    assert(isStable(lineHit->meta.state) &&
           "remote store racing a local transaction on the same line");
    remoteStoreInvalidations_.inc();

    if (needsWriteback(lineHit->meta.state)) {
        if (writebackBufferFull()) {
            deferUntilResourceFree([this, base, r = std::move(ready)]() mutable {
                prepareRemoteStore(base, std::move(r));
            });
            return;
        }
        remoteStoreWritebacks_.inc();
        noteTransition(lineHit->meta.state, CohEvent::kRemoteStore,
                       CohState::kI, base);
        onInvalidate(base);
        issueWriteback(base, lineHit->data, lineHit->meta.state);
        array().invalidate(*lineHit);
        // The WbAck drains the writeback buffer; re-entering then takes the
        // line==nullptr fast path and fires ready().
        deferUntilResourceFree([this, base, r = std::move(ready)]() mutable {
            prepareRemoteStore(base, std::move(r));
        });
        return;
    }

    // S or M: clean, silently droppable (Fig. 3: S/M --RemoteStore--> I).
    noteTransition(lineHit->meta.state, CohEvent::kRemoteStore, CohState::kI,
                   base);
    onInvalidate(base);
    array().invalidate(*lineHit);
    ready();
}

void CpuCacheAgent::regStats(StatRegistry& registry)
{
    CacheAgent::regStats(registry);
    registry.registerCounter(statName("l1_hits"), &l1Hits_);
    registry.registerCounter(statName("l1_misses"), &l1Misses_);
    registry.registerCounter(statName("remote_store_invalidations"),
                             &remoteStoreInvalidations_);
    registry.registerCounter(statName("remote_store_writebacks"),
                             &remoteStoreWritebacks_);
}

} // namespace dscoh
