#include "gpu/gpu_device.h"

#include <cassert>
#include <utility>

#include "sim/log.h"

namespace dscoh {

GpuDevice::GpuDevice(std::string name, SimContext& ctx, Params params,
                     std::vector<StreamingMultiprocessor*> sms)
    : SimObject(std::move(name), ctx), params_(params), sms_(std::move(sms))
{
    assert(!sms_.empty());
}

void GpuDevice::launch(const KernelDesc& kernel, std::function<void()> onDone)
{
    assert(!active_ && "kernels launch serially");
    active_ = true;
    kernel_ = &kernel;
    nextBlock_ = 0;
    launchedAt_ = curTick();
    onDone_ = std::move(onDone);
    kernelsLaunched_.inc();
    DSCOH_LOG("gpu", name() << " launching kernel (" << kernel.blocks
                            << " blocks)");
    if (TraceSession* t = tracing(TraceCat::kKernel))
        t->instant(TraceCat::kKernel, name(), "launch", curTick());

    queue().scheduleAfterInline(params_.launchLatency, [this] {
        for (StreamingMultiprocessor* sm : sms_) {
            sm->beginKernel(*kernel_, [this] { return nextBlock(); },
                            [this] { onSmIdle(); });
        }
        onSmIdle(); // zero-block grids complete immediately
    }, EventPriority::kCore);
}

std::optional<std::uint32_t> GpuDevice::nextBlock()
{
    if (nextBlock_ >= kernel_->blocks)
        return std::nullopt;
    blocksDispatched_.inc();
    return nextBlock_++;
}

void GpuDevice::onSmIdle()
{
    if (!active_)
        return;
    if (nextBlock_ < kernel_->blocks)
        return;
    for (const StreamingMultiprocessor* sm : sms_)
        if (!sm->idle())
            return;
    if (TraceSession* t = tracing(TraceCat::kKernel))
        t->span(TraceCat::kKernel, name(), "kernel", launchedAt_, curTick(),
                "blocks", kernel_->blocks);
    active_ = false;
    kernel_ = nullptr;
    auto done = std::move(onDone_);
    onDone_ = nullptr;
    if (done)
        done();
}

void GpuDevice::regStats(StatRegistry& registry)
{
    registry.registerCounter(statName("kernels"), &kernelsLaunched_);
    registry.registerCounter(statName("blocks_dispatched"), &blocksDispatched_);
}

} // namespace dscoh
