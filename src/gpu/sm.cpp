#include "gpu/sm.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace dscoh {

StreamingMultiprocessor::StreamingMultiprocessor(std::string name,
                                                 SimContext& ctx,
                                                 Params params,
                                                 const AddressSpace& space)
    : SimObject(std::move(name), ctx), params_(std::move(params)),
      space_(space), l1_(params_.l1Geometry)
{
    assert(params_.gpuNet && params_.sliceOf);
    blockSlots_.resize(params_.maxResidentBlocks);
}

void StreamingMultiprocessor::beginKernel(
    const KernelDesc& kernel,
    std::function<std::optional<std::uint32_t>()> requestBlock,
    std::function<void()> onIdle)
{
    assert(idle() && "SM still busy with the previous kernel");
    kernel_ = &kernel;
    requestBlock_ = std::move(requestBlock);
    onIdle_ = std::move(onIdle);
    gridExhausted_ = false;

    // Software coherence at kernel boundaries: flash-invalidate the L1 so
    // CPU-produced data cannot be observed stale (§III-A).
    l1_.flashInvalidate();

    pullBlocks();
    maybeReportIdle();
}

void StreamingMultiprocessor::pullBlocks()
{
    while (!gridExhausted_ && residentBlocks_ < params_.maxResidentBlocks) {
        const std::optional<std::uint32_t> block = requestBlock_();
        if (!block) {
            gridExhausted_ = true;
            break;
        }
        addBlock(*block);
    }
}

void StreamingMultiprocessor::addBlock(std::uint32_t blockId)
{
    // Find a free slot.
    std::uint32_t slot = 0;
    while (slot < blockSlots_.size() && blockSlots_[slot].active)
        ++slot;
    assert(slot < blockSlots_.size());

    const std::uint32_t warpsInBlock =
        (kernel_->threadsPerBlock + params_.lanes - 1) / params_.lanes;
    blockSlots_[slot] = BlockSlot{true, warpsInBlock};
    ++residentBlocks_;
    blocksExecuted_.inc();

    for (std::uint32_t w = 0; w < warpsInBlock; ++w) {
        auto warp = std::make_unique<Warp>();
        warp->blockSlot = slot;
        warp->laneOps.resize(params_.lanes);
        std::uint32_t maxSteps = 0;
        for (std::uint32_t lane = 0; lane < params_.lanes; ++lane) {
            const std::uint32_t tid = w * params_.lanes + lane;
            if (tid < kernel_->threadsPerBlock) {
                ThreadBuilder builder;
                kernel_->body(builder, blockId, tid);
                warp->laneOps[lane] = builder.take();
            }
            maxSteps = std::max(
                maxSteps, static_cast<std::uint32_t>(warp->laneOps[lane].size()));
        }
        // Lockstep: pad divergent/absent lanes with predicated-off nops.
        for (auto& ops : warp->laneOps)
            ops.resize(maxSteps);
        warp->steps = maxSteps;
        Warp* raw = warp.get();
        warps_.push_back(std::move(warp));
        if (maxSteps == 0) {
            retireWarp(*raw);
        } else {
            makeReady(*raw);
        }
    }
}

void StreamingMultiprocessor::makeReady(Warp& warp)
{
    readyQ_.push_back(&warp);
    scheduleIssue(clock_.ticksFor(1));
}

void StreamingMultiprocessor::scheduleIssue(Tick delay)
{
    if (issueScheduled_)
        return;
    issueScheduled_ = true;
    queue().scheduleAfterInline(delay, [this] {
        issueScheduled_ = false;
        issue();
    }, EventPriority::kCore);
}

void StreamingMultiprocessor::issue()
{
    if (readyQ_.empty())
        return;
    Warp* warp = readyQ_.front();
    readyQ_.pop_front();
    execStep(*warp);
    if (!readyQ_.empty())
        scheduleIssue(clock_.ticksFor(1));
}

void StreamingMultiprocessor::execStep(Warp& warp)
{
    assert(warp.step < warp.steps);
    instructionsIssued_.inc();

    // A warp step is usually one kind across all lanes, but padding of
    // divergent lane streams can mix kinds at a step; every lane's op must
    // execute regardless (dropping any would corrupt data).
    bool hasLoad = false;
    bool hasStore = false;
    bool hasSmem = false;
    bool hasCompute = false;
    std::uint32_t maxCycles = 1;
    for (std::uint32_t lane = 0; lane < params_.lanes; ++lane) {
        const GpuOp& op = warp.laneOps[lane][warp.step];
        switch (op.kind) {
        case GpuOp::Kind::kLoad:
            hasLoad = true;
            break;
        case GpuOp::Kind::kStore:
            hasStore = true;
            break;
        case GpuOp::Kind::kSmemLoad:
        case GpuOp::Kind::kSmemStore:
            hasSmem = true;
            break;
        case GpuOp::Kind::kCompute:
            hasCompute = true;
            maxCycles = std::max(maxCycles, op.cycles);
            break;
        case GpuOp::Kind::kNop:
            break;
        }
    }
    if (hasSmem)
        smemAccesses_.inc();

    // Stores are write-through and fire-and-forget: issue them first.
    bool overStoreCap = false;
    if (hasStore)
        overStoreCap = execStores(warp);

    // Loads govern the warp's advancement when present.
    if (hasLoad) {
        execLoads(warp);
        return;
    }
    if (overStoreCap) {
        warp.waitingStores = true;
        storeWaiters_.push_back(&warp);
        return;
    }

    Tick latency = clock_.ticksFor(1);
    if (hasCompute)
        latency = std::max(latency, clock_.ticksFor(maxCycles));
    if (hasSmem)
        latency = std::max(latency, params_.smemLatency);
    if (hasStore)
        latency = std::max(latency, params_.l1Latency);
    stepDone(warp, latency);
}

void StreamingMultiprocessor::stepDone(Warp& warp, Tick latency)
{
    queue().scheduleAfterInline(latency, [this, &warp] { advanceWarp(warp); },
                          EventPriority::kCore);
}

void StreamingMultiprocessor::advanceWarp(Warp& warp)
{
    ++warp.step;
    if (warp.step >= warp.steps) {
        retireWarp(warp);
        return;
    }
    makeReady(warp);
}

void StreamingMultiprocessor::retireWarp(Warp& warp)
{
    warpsRetired_.inc();
    BlockSlot& slot = blockSlots_[warp.blockSlot];
    assert(slot.active && slot.warpsLeft > 0);
    if (--slot.warpsLeft == 0) {
        slot.active = false;
        --residentBlocks_;
        pullBlocks();
    }
    const auto it = std::find_if(warps_.begin(), warps_.end(),
                                 [&warp](const std::unique_ptr<Warp>& p) {
                                     return p.get() == &warp;
                                 });
    assert(it != warps_.end());
    warps_.erase(it);
    maybeReportIdle();
}

// ------------------------------------------------------------------ loads --

void StreamingMultiprocessor::execLoads(Warp& warp)
{
    // Coalesce: group the lanes' physical addresses by cache line, and
    // record each lane's value check to run once that line's bytes arrive.
    struct LaneCheck {
        std::uint32_t offset;
        std::uint32_t size;
        std::uint64_t expect;
        bool check;
    };
    std::unordered_map<Addr, std::vector<LaneCheck>> byLine;
    for (std::uint32_t lane = 0; lane < params_.lanes; ++lane) {
        const GpuOp& op = warp.laneOps[lane][warp.step];
        if (op.kind != GpuOp::Kind::kLoad)
            continue;
        globalLoads_.inc();
        const Addr pa = space_.translate(op.vaddr).paddr;
        byLine[lineAlign(pa)].push_back(
            LaneCheck{lineOffset(pa), op.size, op.value, op.check});
    }

    auto runChecks = [this](const DataBlock& data,
                            const std::vector<LaneCheck>& checks) {
        for (const LaneCheck& c : checks) {
            if (!c.check)
                continue;
            const std::uint64_t mask =
                c.size >= 8 ? ~0ull : ((1ull << (c.size * 8)) - 1);
            if ((data.read(c.offset, c.size) & mask) != (c.expect & mask))
                checkFailures_.inc();
        }
    };

    warp.pendingLines = 0;
    for (auto& [lineAddr, checks] : byLine) {
        coalescedTransactions_.inc();
        if (GpuL1::Line* line = l1_.lookup(lineAddr)) {
            runChecks(line->data, checks);
            continue;
        }
        ++warp.pendingLines;
        const bool firstRequester = outstandingLines_.count(lineAddr) == 0;
        outstandingLines_[lineAddr].push_back(
            [this, &warp, checks = std::move(checks),
             runChecks](const DataBlock& data) {
                runChecks(data, checks);
                assert(warp.pendingLines > 0);
                if (--warp.pendingLines == 0)
                    advanceWarp(warp);
            });
        if (firstRequester) {
            Message req;
            req.type = MsgType::kL1Load;
            req.addr = lineAddr;
            req.src = params_.self;
            req.dst = params_.sliceOf(lineAddr);
            req.requester = params_.self;
            if (TxnProfiler* p = profiling())
                req.prof = p->begin(TxnKind::kGpuLoad, lineAddr, name(),
                                    curTick());
            params_.gpuNet->send(std::move(req));
        }
    }

    if (warp.pendingLines == 0)
        stepDone(warp, params_.l1Latency);
}

// ----------------------------------------------------------------- stores --

bool StreamingMultiprocessor::execStores(Warp& warp)
{
    std::unordered_map<Addr, std::pair<DataBlock, ByteMask>> byLine;
    for (std::uint32_t lane = 0; lane < params_.lanes; ++lane) {
        const GpuOp& op = warp.laneOps[lane][warp.step];
        if (op.kind != GpuOp::Kind::kStore)
            continue;
        globalStores_.inc();
        const Addr pa = space_.translate(op.vaddr).paddr;
        auto& [data, mask] = byLine[lineAlign(pa)];
        data.write(lineOffset(pa), op.value, op.size);
        mask.set(lineOffset(pa), op.size);
    }

    for (auto& [lineAddr, payload] : byLine) {
        coalescedTransactions_.inc();
        // Write-through, no-allocate; update a present L1 copy so later
        // local loads observe the stored bytes.
        l1_.storeUpdate(lineAddr, payload.first, payload.second);
        Message st;
        st.type = MsgType::kL1Store;
        st.addr = lineAddr;
        st.src = params_.self;
        st.dst = params_.sliceOf(lineAddr);
        st.requester = params_.self;
        st.data = payload.first;
        st.mask = payload.second;
        st.hasData = true;
        params_.gpuNet->send(std::move(st));
        ++outstandingStores_;
    }

    return outstandingStores_ > params_.maxOutstandingStores;
}

// --------------------------------------------------------------- messages --

void StreamingMultiprocessor::handleGpuMessage(const Message& msg)
{
    switch (msg.type) {
    case MsgType::kL1LoadResp: {
        if (TxnProfiler* p = profiling()) {
            p->hop(msg.prof, TxnStage::kDataArrive, name(), curTick());
            p->end(msg.prof, curTick());
        }
        l1_.fill(msg.addr, msg.data);
        const auto it = outstandingLines_.find(msg.addr);
        assert(it != outstandingLines_.end());
        auto completions = std::move(it->second);
        outstandingLines_.erase(it);
        for (auto& completion : completions)
            completion(msg.data);
        break;
    }
    case MsgType::kL1StoreAck: {
        assert(outstandingStores_ > 0);
        --outstandingStores_;
        while (!storeWaiters_.empty() &&
               outstandingStores_ <= params_.maxOutstandingStores) {
            Warp* warp = storeWaiters_.front();
            storeWaiters_.pop_front();
            warp->waitingStores = false;
            stepDone(*warp, params_.l1Latency);
        }
        maybeReportIdle();
        break;
    }
    default:
        assert(false && "unexpected message at SM");
    }
}

bool StreamingMultiprocessor::idle() const
{
    return warps_.empty() && residentBlocks_ == 0 && outstandingStores_ == 0;
}

void StreamingMultiprocessor::maybeReportIdle()
{
    if (idle() && gridExhausted_ && onIdle_)
        onIdle_();
}

void StreamingMultiprocessor::regStats(StatRegistry& registry)
{
    registry.registerCounter(statName("instructions"), &instructionsIssued_);
    registry.registerCounter(statName("global_loads"), &globalLoads_);
    registry.registerCounter(statName("global_stores"), &globalStores_);
    registry.registerCounter(statName("smem_accesses"), &smemAccesses_);
    registry.registerCounter(statName("coalesced_transactions"),
                             &coalescedTransactions_);
    registry.registerCounter(statName("blocks"), &blocksExecuted_);
    registry.registerCounter(statName("warps_retired"), &warpsRetired_);
    registry.registerCounter(statName("check_failures"), &checkFailures_);
    l1_.regStats(registry, statName("l1"));
}

} // namespace dscoh
