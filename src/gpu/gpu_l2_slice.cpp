#include "gpu/gpu_l2_slice.h"

#include <algorithm>
#include <cassert>

#include "check/coherence_checker.h"
#include "coherence/transition_coverage.h"
#include <utility>

namespace dscoh {

GpuL2Slice::GpuL2Slice(std::string name, SimContext& ctx,
                       const CacheAgent::Params& agentParams,
                       const SliceParams& sliceParams)
    : CacheAgent(std::move(name), ctx, agentParams), slice_(sliceParams)
{
    assert(slice_.gpuNet && slice_.dsNet && slice_.dram);
}

void GpuL2Slice::noteDemand(Addr addr, bool exclusive)
{
    accesses_.inc();
    const bool miss = !probeHit(addr, exclusive);
    if (TxnProfiler* p = profiling())
        p->noteGpuDemand(addr, miss);
    if (miss) {
        misses_.inc();
        if (!everFilled(addr))
            compulsory_.inc();
        maybePrefetch(addr);
    }
}

void GpuL2Slice::maybePrefetch(Addr missAddr)
{
    // Sequential next-line prefetcher, striding over the lines this slice
    // owns. Pure pull-based comparison point for direct store.
    for (std::uint32_t i = 1; i <= slice_.prefetchDepth; ++i) {
        const Addr next =
            lineAlign(missAddr) +
            static_cast<Addr>(i) * slice_.slices * kLineSize;
        if (array().find(next) != nullptr)
            continue;
        prefetches_.inc();
        access(next, /*exclusive=*/false, [](Line&) {});
    }
}

void GpuL2Slice::handleGpuMessage(const Message& msg)
{
    if (TxnProfiler* p = profiling())
        p->hop(msg.prof, TxnStage::kSliceArrive, name(), curTick());
    // Charge the front-side tag latency, then serve. The message moves into
    // a pooled slot (the delivery slot we were handed is recycled as soon as
    // this handler returns), so the latency event captures one pointer.
    Message* m = context().msgPool.acquire();
    *m = msg;
    queue().scheduleAfterInline(slice_.tagLatency, [this, m] {
        switch (m->type) {
        case MsgType::kL1Load:
            serveLoad(*m);
            break;
        case MsgType::kL1Store:
            serveStore(*m);
            break;
        default:
            assert(false && "unexpected GPU-network message at L2 slice");
        }
        context().msgPool.release(m);
    }, EventPriority::kController);
}

void GpuL2Slice::serveLoad(const Message& msg)
{
    // Timestamp fast path (multi-GPU): a read of a remotely-homed line
    // that misses locally may ride a lease instead of pulling through the
    // remote home directory.
    if (slice_.tsLeaseTicks != 0 && remoteHomed(msg.addr) &&
        !probeHit(msg.addr, /*exclusive=*/false)) {
        if (tryServeLeased(msg))
            return;
        startTsRead(msg);
        return;
    }
    serveLoadCoherent(msg);
}

void GpuL2Slice::serveLoadCoherent(const Message& msg)
{
    noteDemand(msg.addr, /*exclusive=*/false);
    noteRemoteMiss(msg.addr, /*exclusive=*/false);
    access(msg.addr, /*exclusive=*/false, [this, msg](Line& line) {
        sendLoadResp(msg, line.data);
    });
}

void GpuL2Slice::sendLoadResp(const Message& msg, const DataBlock& data)
{
    Message resp;
    resp.type = MsgType::kL1LoadResp;
    resp.addr = msg.addr;
    resp.src = params().self;
    resp.dst = msg.src;
    resp.requester = msg.src;
    resp.data = data;
    resp.mask.set(0, kLineSize);
    resp.hasData = true;
    resp.txn = msg.txn;
    resp.prof = msg.prof;
    if (TxnProfiler* p = profiling())
        p->hop(msg.prof, TxnStage::kSupplySend, name(), curTick());
    slice_.gpuNet->send(std::move(resp));
}

void GpuL2Slice::serveStore(const Message& msg)
{
    const Addr base = lineAlign(msg.addr);
    if (const Tick hold = holdUntil(base); hold > curTick()) {
        // A granted lease freezes the line: remote leaseholders may keep
        // serving their copy until the epoch expires, so the write waits
        // (skipped only by the injected cross-shard bug).
        tsHolds_.inc();
        noteTransition(stateOf(base), CohEvent::kLeaseHold, stateOf(base),
                       base);
        Message* m = context().msgPool.acquire();
        *m = msg;
        queue().scheduleInline(hold + 1, [this, m] {
            serveStore(*m);
            context().msgPool.release(m);
        }, EventPriority::kController);
        return;
    }
    noteDemand(msg.addr, /*exclusive=*/true);
    noteRemoteMiss(msg.addr, /*exclusive=*/true);
    access(msg.addr, /*exclusive=*/true, [this, msg](Line& line) {
        msg.mask.apply(line.data, msg.data);
        if (CoherenceChecker* c = checking())
            c->onStoreApplied(line.base, msg.data, msg.mask);
        Message ack;
        ack.type = MsgType::kL1StoreAck;
        ack.addr = msg.addr;
        ack.src = params().self;
        ack.dst = msg.src;
        ack.requester = msg.src;
        ack.txn = msg.txn;
        slice_.gpuNet->send(std::move(ack));
    });
}

void GpuL2Slice::handleDsMessage(const Message& msg)
{
    if (TxnProfiler* p = profiling())
        p->hop(msg.prof, TxnStage::kSliceArrive, name(), curTick());
    Message* m = context().msgPool.acquire();
    *m = msg;
    queue().scheduleAfterInline(slice_.tagLatency, [this, m] {
        switch (m->type) {
        case MsgType::kDsPutX:
            if (slice_.harden && !admitDirectStore(*m))
                break;
            serveDirectStore(*m);
            break;
        case MsgType::kUcRead:
            serveUncachedRead(*m);
            break;
        case MsgType::kTsRead:
            serveTsRead(*m);
            break;
        case MsgType::kTsData:
            handleTsData(*m);
            break;
        case MsgType::kTsNack:
            handleTsNack(*m);
            break;
        default:
            assert(false && "unexpected DS-network message at L2 slice");
        }
        context().msgPool.release(m);
    }, EventPriority::kController);
}

bool GpuL2Slice::admitDirectStore(const Message& msg)
{
    if (slice_.verifyChecksum && msg.checksum != messageChecksum(msg)) {
        // A corruption fault flipped a payload byte in flight. Reject; the
        // CPU's retransmit (or its fallback) re-delivers the real bytes.
        dsNacks_.inc();
        noteTransition(CohState::kI, CohEvent::kCorruptPush, CohState::kI,
                       msg.addr);
        Message nack;
        nack.type = MsgType::kDsNack;
        nack.addr = msg.addr;
        nack.src = params().self;
        nack.dst = msg.src;
        nack.requester = msg.src;
        nack.txn = msg.txn;
        nack.prof = msg.prof;
        slice_.dsNet->send(std::move(nack));
        return false;
    }
    if (msg.txn != 0) {
        const auto it = dsSeen_.find(msg.txn);
        if (it != dsSeen_.end()) {
            // Duplicate (wire echo or retransmit crossing the ack). Squash
            // idempotently; when the original was already served, replay
            // the ack so a retransmitting CPU can complete.
            dsDupSquashed_.inc();
            if (it->second) {
                noteTransition(CohState::kMM, CohEvent::kDupPush,
                               CohState::kMM, msg.addr);
                sendDsAck(msg);
            }
            return false;
        }
        dsSeen_.emplace(msg.txn, false);
        dsSeenOrder_.push_back(msg.txn);
        trimDsSeen();
    }
    return true;
}

void GpuL2Slice::trimDsSeen()
{
    // Bounded dedup memory: old *acked* transactions age out (the CPU has
    // stopped retransmitting them long ago); in-service entries stay.
    while (dsSeenOrder_.size() > 256) {
        const std::uint64_t oldest = dsSeenOrder_.front();
        const auto it = dsSeen_.find(oldest);
        if (it != dsSeen_.end() && !it->second)
            break;
        if (it != dsSeen_.end())
            dsSeen_.erase(it);
        dsSeenOrder_.pop_front();
    }
}

void GpuL2Slice::serveDirectStore(const Message& msg)
{
    if (const Tick hold = holdUntil(msg.addr); hold > curTick()) {
        // Same freeze as a local store: the push lands only after every
        // outstanding lease on the line has expired.
        tsHolds_.inc();
        noteTransition(stateOf(msg.addr), CohEvent::kLeaseHold,
                       stateOf(msg.addr), msg.addr);
        Message* m = context().msgPool.acquire();
        *m = msg;
        queue().scheduleInline(hold + 1, [this, m] {
            serveDirectStore(*m);
            context().msgPool.release(m);
        }, EventPriority::kController);
        return;
    }
    dsStores_.inc();
    const Addr base = msg.addr;

    if (inWriteback(base)) {
        // The same line is draining to memory; retry once it is gone so we
        // never hold two copies with different owners.
        deferUntilResourceFree([this, msg] { serveDirectStore(msg); });
        return;
    }

    Line* line = array().find(base);

    // The no-fetch install below is sound only when the pushing CPU was the
    // sole other agent that could hold the line (it self-invalidates before
    // pushing). With a sharded directory another GPU's slice may own the
    // line coherently — e.g. it upgraded via GetX and this slice was
    // invalidated — and a blind install would create a second owner. Multi-
    // GPU pushes therefore obtain ownership through the home ordering
    // point (fetch-merge), which snoops every peer slice; a line already
    // resident here takes the same path and usually upgrades in place.
    const bool sharded = params().homeMap.shards() > 1;

    if (line == nullptr && msg.mask.full() && !slice_.mergeOnly && !sharded) {
        // Fig. 3 blue transition: install the pushed full line, no fetch
        // needed. This is the payoff path of the whole paper.
        //
        // Pushes never evict valid lines, and occupy at most half the ways
        // of a set: "if the GPU L2 cache is full, the system then writes
        // data to DRAM". Displacing (or crowding out) the demand working
        // set with speculatively pushed data is how a push scheme could
        // *hurt*, and the paper reports direct store never does.
        const std::uint32_t pushed = array().countInSet(
            base, [](const Line& l) { return l.meta.dsFilled; });
        Line* way =
            pushed < array().ways() / 2 ? array().findFreeWay(base) : nullptr;
        if (way == nullptr) {
            dsBypassed_.inc();
            if (CoherenceChecker* c = checking())
                c->onStoreApplied(base, msg.data, msg.mask);
            slice_.dram->writeMasked(base, msg.data, msg.mask, [this, msg] {
                if (TxnProfiler* p = profiling())
                    p->hop(msg.prof, TxnStage::kDramWrite, name(), curTick());
                sendDsAck(msg);
            });
            return;
        }
        Line& installed = array().install(*way, base);
        // The push writes through to DRAM in the background, so the line is
        // installed exclusive-clean (M): memory stays current, the eviction
        // is silent, and a later GPU store upgrades exactly like a store to
        // any other clean resident line. (Fig. 3 shows I->MM; our variant
        // write-through push makes M the faithful state — see DESIGN.md.)
        installed.meta.state = CohState::kM;
        installed.meta.dsFilled = true;
        installed.data = msg.data;
        if (CoherenceChecker* c = checking())
            c->onStoreApplied(base, msg.data, msg.mask);
        noteTransition(CohState::kI, CohEvent::kRemoteStore, CohState::kM,
                       base);
        slice_.dram->writeMasked(base, msg.data, msg.mask, nullptr);
        noteFilled(base);
        dsFills_.inc();
        onFill(installed);
        if (TxnProfiler* p = profiling())
            p->hop(msg.prof, TxnStage::kInstall, name(), curTick());
        sendDsAck(msg);
        return;
    }

    // Partial line, or the line is already present / in flight: obtain
    // ownership through the protocol (fetch-merge), then overlay the pushed
    // bytes. The line ends MM either way.
    dsMerges_.inc();
    access(base, /*exclusive=*/true, [this, msg](Line& owned) {
        msg.mask.apply(owned.data, msg.data);
        const CohState prev = owned.meta.state;
        owned.meta.state = CohState::kMM;
        owned.meta.dsFilled = true;
        if (CoherenceChecker* c = checking())
            c->onStoreApplied(owned.base, msg.data, msg.mask);
        noteTransition(prev, CohEvent::kRemoteStore, CohState::kMM,
                       owned.base);
        dsFills_.inc();
        if (TxnProfiler* p = profiling())
            p->hop(msg.prof, TxnStage::kMerge, name(), curTick());
        sendDsAck(msg);
    });
}

void GpuL2Slice::sendDsAck(const Message& msg)
{
    if (slice_.harden && msg.txn != 0) {
        const auto it = dsSeen_.find(msg.txn);
        if (it != dsSeen_.end())
            it->second = true;
    }
    Message ack;
    ack.type = MsgType::kDsAck;
    ack.addr = msg.addr;
    ack.src = params().self;
    ack.dst = msg.src;
    ack.requester = msg.src;
    ack.txn = msg.txn;
    ack.prof = msg.prof;
    if (TxnProfiler* p = profiling())
        p->hop(msg.prof, TxnStage::kAckSend, name(), curTick());
    slice_.dsNet->send(std::move(ack));
}

void GpuL2Slice::serveUncachedRead(const Message& msg)
{
    ucReads_.inc();
    access(msg.addr, /*exclusive=*/false, [this, msg](Line& line) {
        Message resp;
        resp.type = MsgType::kUcData;
        resp.addr = msg.addr;
        resp.src = params().self;
        resp.dst = msg.src;
        resp.requester = msg.src;
        resp.data = line.data;
        resp.mask.set(0, kLineSize);
        resp.hasData = true;
        resp.txn = msg.txn;
        resp.prof = msg.prof;
        if (TxnProfiler* p = profiling())
            p->hop(msg.prof, TxnStage::kSupplySend, name(), curTick());
        slice_.dsNet->send(std::move(resp));
    });
}

bool GpuL2Slice::remoteHomed(Addr addr) const
{
    return params().homeMap.homeOf(addr) != slice_.myGpu;
}

NodeId GpuL2Slice::homeSliceFor(Addr base) const
{
    const std::uint32_t homeGpu = params().homeMap.homeOf(base);
    const std::uint32_t sliceIndex = static_cast<std::uint32_t>(
        lineNumber(base) % slice_.slices);
    return slice_.firstSliceNode + homeGpu * slice_.slices + sliceIndex;
}

Tick GpuL2Slice::holdUntil(Addr base) const
{
    if (params().injectBug == InjectedBug::kCrossShardOrder)
        return 0;
    const auto it = tsGranted_.find(base);
    return it == tsGranted_.end() ? 0 : it->second;
}

void GpuL2Slice::pruneExpiredGrants()
{
    for (auto it = tsGranted_.begin(); it != tsGranted_.end();) {
        if (it->second <= curTick())
            it = tsGranted_.erase(it);
        else
            ++it;
    }
}

bool GpuL2Slice::tryServeLeased(const Message& msg)
{
    const Addr base = lineAlign(msg.addr);
    const auto it = tsLeased_.find(base);
    if (it == tsLeased_.end())
        return false;
    if (curTick() >= it->second.expiry) {
        // Lazy self-invalidation at epoch expiry: no invalidation traffic
        // ever reaches a leaseholder, it just stops believing the copy.
        tsExpired_.inc();
        noteTransition(CohState::kI, CohEvent::kTsExpire, CohState::kI,
                       base);
        tsLeased_.erase(it);
        return false;
    }
    accesses_.inc();
    tsHits_.inc();
    if (CoherenceChecker* c = checking())
        c->onLeaseServe(name(), base, it->second.data, it->second.expiry,
                        curTick());
    sendLoadResp(msg, it->second.data);
    return true;
}

void GpuL2Slice::startTsRead(const Message& msg)
{
    const Addr base = lineAlign(msg.addr);
    auto& waiting = tsWaiting_[base];
    waiting.push_back(msg);
    if (waiting.size() > 1)
        return; // a kTsRead for this line is already in flight
    tsReads_.inc();
    Message req;
    req.type = MsgType::kTsRead;
    req.addr = base;
    req.src = params().self;
    req.dst = homeSliceFor(base);
    req.requester = params().self;
    slice_.dsNet->send(std::move(req));
}

void GpuL2Slice::serveTsRead(const Message& msg)
{
    const Addr base = msg.addr;
    pruneExpiredGrants();
    const Line* line = array().find(base);
    const bool canLease = line != nullptr && isStable(line->meta.state) &&
                          isOwner(line->meta.state) && !inWriteback(base);
    if (!canLease) {
        tsNacksSent_.inc();
        Message nack;
        nack.type = MsgType::kTsNack;
        nack.addr = base;
        nack.src = params().self;
        nack.dst = msg.src;
        nack.requester = msg.src;
        slice_.dsNet->send(std::move(nack));
        return;
    }
    // A lease never extends: while one is active, later readers share its
    // expiry, so a popular line cannot freeze the home slice indefinitely.
    Tick expiry;
    const auto it = tsGranted_.find(base);
    if (it != tsGranted_.end() && it->second > curTick()) {
        expiry = it->second;
    } else {
        expiry = curTick() + slice_.tsLeaseTicks;
        tsGranted_[base] = expiry;
    }
    tsGrants_.inc();
    noteTransition(line->meta.state, CohEvent::kTsGrant, line->meta.state,
                   base);
    if (CoherenceChecker* c = checking())
        c->onLeaseGrant(name(), base, expiry, curTick());
    Message resp;
    resp.type = MsgType::kTsData;
    resp.addr = base;
    resp.src = params().self;
    resp.dst = msg.src;
    resp.requester = msg.src;
    resp.data = line->data;
    resp.mask.set(0, kLineSize);
    resp.hasData = true;
    resp.txn = expiry; // the lease expiry rides in the txn field
    slice_.dsNet->send(std::move(resp));
}

void GpuL2Slice::handleTsData(const Message& msg)
{
    const Addr base = msg.addr;
    const Tick expiry = msg.txn;
    std::vector<Message> waiting = std::move(tsWaiting_[base]);
    tsWaiting_.erase(base);
    if (curTick() >= expiry) {
        // The grant expired in flight; its data may already be stale.
        tsExpired_.inc();
        noteTransition(CohState::kI, CohEvent::kTsExpire, CohState::kI,
                       base);
        for (const Message& w : waiting)
            serveLoadCoherent(w);
        return;
    }
    tsFills_.inc();
    noteTransition(CohState::kI, CohEvent::kTsFill, CohState::kI, base);
    LeasedLine& lease = tsLeased_[base];
    lease.data = msg.data;
    lease.expiry = expiry;
    for (const Message& w : waiting) {
        accesses_.inc();
        misses_.inc();
        tsHits_.inc();
        if (CoherenceChecker* c = checking())
            c->onLeaseServe(name(), base, lease.data, lease.expiry,
                            curTick());
        sendLoadResp(w, lease.data);
    }
}

void GpuL2Slice::handleTsNack(const Message& msg)
{
    const Addr base = msg.addr;
    tsFallbacks_.inc();
    noteTransition(CohState::kI, CohEvent::kTsFallback, CohState::kI, base);
    std::vector<Message> waiting = std::move(tsWaiting_[base]);
    tsWaiting_.erase(base);
    for (const Message& w : waiting)
        serveLoadCoherent(w);
}

void GpuL2Slice::noteRemoteMiss(Addr addr, bool exclusive)
{
    if (params().homeMap.shards() <= 1 || !remoteHomed(addr))
        return;
    if (stateOf(addr) != CohState::kI || inWriteback(addr))
        return;
    noteTransition(CohState::kI,
                   exclusive ? CohEvent::kRemoteGetX : CohEvent::kRemoteGetS,
                   exclusive ? CohState::kIM_D : CohState::kIS_D,
                   lineAlign(addr));
}

void GpuL2Slice::onFill(Line& line)
{
    static_cast<void>(line);
}

void GpuL2Slice::snapSave(snap::SnapWriter& w) const
{
    CacheAgent::snapSave(w);
    if (slice_.tsLeaseTicks == 0)
        return;
    requireQuiesced(tsWaiting_.empty(),
                    name() + " has in-flight lease requests");
    std::vector<Addr> bases;
    bases.reserve(tsLeased_.size());
    for (const auto& [base, lease] : tsLeased_)
        bases.push_back(base);
    std::sort(bases.begin(), bases.end());
    w.u64(bases.size());
    for (const Addr base : bases) {
        const LeasedLine& lease = tsLeased_.at(base);
        w.u64(base);
        w.u64(lease.expiry);
        w.bytes(lease.data.data(), kLineSize);
    }
    bases.clear();
    for (const auto& [base, expiry] : tsGranted_)
        bases.push_back(base);
    std::sort(bases.begin(), bases.end());
    w.u64(bases.size());
    for (const Addr base : bases) {
        w.u64(base);
        w.u64(tsGranted_.at(base));
    }
}

void GpuL2Slice::snapRestore(snap::SnapReader& r)
{
    CacheAgent::snapRestore(r);
    if (slice_.tsLeaseTicks == 0)
        return;
    tsLeased_.clear();
    const std::uint64_t leased = r.u64();
    for (std::uint64_t i = 0; i < leased; ++i) {
        const Addr base = r.u64();
        LeasedLine& lease = tsLeased_[base];
        lease.expiry = r.u64();
        r.bytes(lease.data.data(), kLineSize);
    }
    tsGranted_.clear();
    const std::uint64_t granted = r.u64();
    for (std::uint64_t i = 0; i < granted; ++i) {
        const Addr base = r.u64();
        tsGranted_[base] = r.u64();
    }
}

void GpuL2Slice::regStats(StatRegistry& registry)
{
    CacheAgent::regStats(registry);
    registry.registerCounter(statName("demand_accesses"), &accesses_);
    registry.registerCounter(statName("demand_misses"), &misses_);
    registry.registerCounter(statName("compulsory_misses"), &compulsory_);
    registry.registerCounter(statName("ds_stores"), &dsStores_);
    registry.registerCounter(statName("ds_fills"), &dsFills_);
    registry.registerCounter(statName("ds_bypassed"), &dsBypassed_);
    registry.registerCounter(statName("ds_merges"), &dsMerges_);
    registry.registerCounter(statName("uc_reads"), &ucReads_);
    registry.registerCounter(statName("prefetches"), &prefetches_);
    if (slice_.harden) {
        registry.registerCounter(statName("ds_duplicates_squashed"),
                                 &dsDupSquashed_);
        registry.registerCounter(statName("ds_nacks"), &dsNacks_);
    }
    if (slice_.tsLeaseTicks != 0) {
        registry.registerCounter(statName("ts_reads"), &tsReads_);
        registry.registerCounter(statName("ts_fills"), &tsFills_);
        registry.registerCounter(statName("ts_lease_hits"), &tsHits_);
        registry.registerCounter(statName("ts_grants"), &tsGrants_);
        registry.registerCounter(statName("ts_nacks"), &tsNacksSent_);
        registry.registerCounter(statName("ts_expired"), &tsExpired_);
        registry.registerCounter(statName("ts_fallbacks"), &tsFallbacks_);
        registry.registerCounter(statName("ts_lease_holds"), &tsHolds_);
    }
}

} // namespace dscoh
