// Per-SM GPU L1 data cache (Table I: 16 KB, 4-way).
//
// As in gem5-gpu's Hammer configuration, the GPU L1s are NOT kept coherent
// by hardware: stores write through (no-allocate), and the cache is flash-
// invalidated when a kernel launches, which is how software guarantees the
// GPU observes CPU-produced data at kernel boundaries.
#pragma once

#include <cstdint>

#include "mem/cache_array.h"
#include "sim/stats.h"

namespace dscoh {

class GpuL1 {
public:
    explicit GpuL1(const CacheGeometry& geom) : array_(geom) {}

    struct L1Meta {};
    using Line = CacheArray<L1Meta>::Line;

    /// Load lookup; returns the line (and touches LRU) or nullptr.
    Line* lookup(Addr addr)
    {
        Line* line = array_.find(addr);
        accesses_.inc();
        if (line != nullptr) {
            array_.touch(addr);
            hits_.inc();
        } else {
            misses_.inc();
        }
        return line;
    }

    /// Installs a line returned by the L2 slice.
    void fill(Addr addr, const DataBlock& data)
    {
        if (Line* existing = array_.find(addr)) {
            existing->data = data;
            array_.touch(addr);
            return;
        }
        auto* way = array_.findFreeWay(addr);
        if (way == nullptr) {
            way = array_.selectVictim(
                addr, [](const Line&) { return true; }); // all lines clean
            array_.invalidate(*way);
        }
        Line& line = array_.install(*way, addr);
        line.data = data;
    }

    /// Write-through store: updates a present copy (write-update) so later
    /// local loads see fresh bytes; never allocates.
    void storeUpdate(Addr addr, const DataBlock& data, const ByteMask& mask)
    {
        if (Line* line = array_.find(addr))
            mask.apply(line->data, data);
    }

    /// Kernel-launch flash invalidate.
    void flashInvalidate()
    {
        flashes_.inc();
        array_.forEachValid([this](Line& line) { array_.invalidate(line); });
    }

    void regStats(StatRegistry& registry, const std::string& prefix)
    {
        registry.registerCounter(prefix + ".accesses", &accesses_);
        registry.registerCounter(prefix + ".hits", &hits_);
        registry.registerCounter(prefix + ".misses", &misses_);
        registry.registerCounter(prefix + ".flash_invalidates", &flashes_);
    }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

    void snapSave(snap::SnapWriter& w) const
    {
        array_.snapSave(w, [](snap::SnapWriter&, const L1Meta&) {});
    }
    void snapRestore(snap::SnapReader& r)
    {
        array_.snapRestore(r, [](snap::SnapReader&, L1Meta&) {});
    }

private:
    CacheArray<L1Meta> array_;
    Counter accesses_;
    Counter hits_;
    Counter misses_;
    Counter flashes_;
};

} // namespace dscoh
