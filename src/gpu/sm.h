// Streaming Multiprocessor model (Table I: 16 SMs, 32 lanes, 1.4 GHz).
//
// Thread blocks are resident up to an occupancy limit; each block's threads
// are grouped into 32-lane warps executing their op streams in lockstep. A
// round-robin scheduler issues one warp-instruction per GPU cycle among the
// ready warps, so memory latency is hidden exactly as far as warp-level
// parallelism allows — the effect the paper's direct store interacts with.
//
// Memory path: a per-warp coalescer merges the lanes' addresses into line
// transactions; loads go through the SM-local L1 (write-through,
// no-allocate, flash-invalidated at kernel launch) and miss to the owning
// L2 slice; stores write through to the slice and only stall the warp when
// too many are outstanding. The GPU-side TLB is modelled as free (shared
// page table walker, never on the critical path in this study).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "gpu/gpu_l1.h"
#include "gpu/kernel.h"
#include "net/network.h"
#include "sim/sim_object.h"
#include "vm/address_space.h"

namespace dscoh {

/// Converts GPU cycles (1.4 GHz) to simulator ticks (2 GHz): 10/7 ticks per
/// cycle, with the remainder carried so long runs stay exact on average.
class GpuClock {
public:
    Tick ticksFor(std::uint32_t cycles)
    {
        acc_ += static_cast<std::uint64_t>(cycles) * 10;
        const Tick t = acc_ / 7;
        acc_ %= 7;
        return t;
    }

    /// The carried remainder is machine state: restoring it keeps the
    /// cycle-to-tick conversion bit-exact across a checkpoint.
    std::uint64_t accumulator() const { return acc_; }
    void setAccumulator(std::uint64_t a) { acc_ = a; }

private:
    std::uint64_t acc_ = 0;
};

class StreamingMultiprocessor final : public SimObject {
public:
    struct Params {
        std::uint32_t lanes = 32;
        std::uint32_t maxResidentBlocks = 4;
        Tick l1Latency = 24;   ///< L1 lookup, ticks
        Tick smemLatency = 30; ///< scratchpad access, ticks
        std::size_t maxOutstandingStores = 64;
        NodeId self = kInvalidNode;
        Network* gpuNet = nullptr;
        std::function<NodeId(Addr)> sliceOf;
        CacheGeometry l1Geometry;
    };

    StreamingMultiprocessor(std::string name, SimContext& ctx, Params params,
                            const AddressSpace& space);

    /// Called by the device at kernel launch. @p requestBlock hands out the
    /// next block id (nullopt when the grid is exhausted); @p onIdle fires
    /// every time this SM drains completely (no warps, no blocks to pull,
    /// no outstanding stores).
    void beginKernel(const KernelDesc& kernel,
                     std::function<std::optional<std::uint32_t>()> requestBlock,
                     std::function<void()> onIdle);

    /// kL1LoadResp / kL1StoreAck from the L2 slices.
    void handleGpuMessage(const Message& msg);

    bool idle() const;

    void regStats(StatRegistry& registry) override;

    std::uint64_t checkFailures() const { return checkFailures_.value(); }
    std::uint64_t warpsRetired() const { return warpsRetired_.value(); }
    GpuL1& l1() { return l1_; }

    /// L1 contents plus the clock-conversion remainder. Everything else
    /// (warps, block slots, outstanding lines/stores) exists only while a
    /// kernel runs, and safe points are between kernels.
    void snapSave(snap::SnapWriter& w) const override
    {
        requireQuiesced(idle(), name() + " is executing a kernel");
        w.u64(clock_.accumulator());
        l1_.snapSave(w);
    }
    void snapRestore(snap::SnapReader& r) override
    {
        clock_.setAccumulator(r.u64());
        l1_.snapRestore(r);
    }

private:
    struct Warp {
        std::uint32_t blockSlot = 0;
        std::vector<std::vector<GpuOp>> laneOps; ///< [lane][step], equal sizes
        std::uint32_t step = 0;
        std::uint32_t steps = 0;
        std::uint32_t pendingLines = 0; ///< load lines in flight this step
        bool waitingStores = false;     ///< stalled on the store cap
    };

    struct BlockSlot {
        bool active = false;
        std::uint32_t warpsLeft = 0;
    };

    void pullBlocks();
    void addBlock(std::uint32_t blockId);
    void scheduleIssue(Tick delay);
    void issue();
    void execStep(Warp& warp);
    void execLoads(Warp& warp);
    /// Issues the step's coalesced write-through stores; returns true when
    /// the outstanding-store cap is exceeded (the warp must stall).
    bool execStores(Warp& warp);
    void stepDone(Warp& warp, Tick latency);
    void advanceWarp(Warp& warp);
    void retireWarp(Warp& warp);
    void maybeReportIdle();
    void makeReady(Warp& warp);

    Params params_;
    const AddressSpace& space_;
    GpuL1 l1_;
    GpuClock clock_;

    const KernelDesc* kernel_ = nullptr;
    std::function<std::optional<std::uint32_t>()> requestBlock_;
    std::function<void()> onIdle_;

    std::vector<std::unique_ptr<Warp>> warps_;
    std::deque<Warp*> readyQ_;
    std::vector<BlockSlot> blockSlots_;
    std::uint32_t residentBlocks_ = 0;
    bool gridExhausted_ = false;
    bool issueScheduled_ = false;

    std::size_t outstandingStores_ = 0;
    std::deque<Warp*> storeWaiters_;

    /// Line address -> completions to run when its data arrives.
    std::unordered_map<Addr, std::vector<std::function<void(const DataBlock&)>>>
        outstandingLines_;

    Counter instructionsIssued_;
    Counter globalLoads_;
    Counter globalStores_;
    Counter smemAccesses_;
    Counter coalescedTransactions_;
    Counter blocksExecuted_;
    Counter warpsRetired_;
    Counter checkFailures_;
};

} // namespace dscoh
