// One slice of the shared GPU L2 (Table I: 2 MB, 16-way, 4 slices).
//
// Each slice is a coherent CacheAgent for the (interleaved) addresses it
// owns. Its front side serves the SM L1s over the GPU-internal network, and
// it is the landing zone for the paper's direct stores: a DsPutX installs
// the pushed line as MM (Fig. 3, I -> MM via the blue transition), falling
// back to a DRAM write when the set has no evictable way (the paper's "if
// the GPU L2 cache is full, the system writes data to DRAM").
#pragma once

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "coherence/cache_agent.h"
#include "mem/dram.h"

namespace dscoh {

class GpuL2Slice final : public CacheAgent {
public:
    struct SliceParams {
        Tick tagLatency = 16;  ///< front-side lookup latency, ticks
        Network* gpuNet = nullptr; ///< SM L1s <-> slices
        Network* dsNet = nullptr;  ///< dedicated direct-store network
        MemoryInterface* dram = nullptr; ///< for the DS bypass/write-through path
        /// Sequential (next-line) prefetch depth on demand misses; 0 = off.
        /// Used by the prefetching-vs-direct-store ablation (§IV-C notes
        /// direct store beats prefetching; bench/ablation_prefetch checks).
        std::uint32_t prefetchDepth = 0;
        std::uint32_t slices = 4; ///< stride between slice-local lines

        // --- delivery hardening (PROTOCOL.md "Delivery hardening") ---
        /// Track DsPutX transaction ids, squash duplicates idempotently and
        /// replay the ack for already-served pushes.
        bool harden = false;
        /// Serve every push through the coherent fetch-merge path (skip the
        /// bare install) so an arbitrarily late or reordered copy can never
        /// create a second owner behind the fallback pull path.
        bool mergeOnly = false;
        /// Verify each DsPutX payload checksum; a mismatch is NACKed.
        bool verifyChecksum = false;
    };

    GpuL2Slice(std::string name, SimContext& ctx,
               const CacheAgent::Params& agentParams,
               const SliceParams& sliceParams);

    /// Entry point for kL1Load / kL1Store from the SMs (GPU network).
    void handleGpuMessage(const Message& msg);

    /// Entry point for kDsPutX / kUcRead from the CPU (dedicated network).
    void handleDsMessage(const Message& msg);

    void regStats(StatRegistry& registry) override;

    // GPU-side demand statistics (what Fig. 5 reports).
    std::uint64_t demandAccesses() const { return accesses_.value(); }
    std::uint64_t demandMisses() const { return misses_.value(); }
    std::uint64_t compulsoryMisses() const { return compulsory_.value(); }
    std::uint64_t dsFills() const { return dsFills_.value(); }
    std::uint64_t dsBypasses() const { return dsBypassed_.value(); }
    std::uint64_t prefetchesIssued() const { return prefetches_.value(); }

protected:
    void onFill(Line& line) override;

private:
    void serveLoad(const Message& msg);
    void serveStore(const Message& msg);
    void maybePrefetch(Addr missAddr);
    void serveDirectStore(const Message& msg);
    void serveUncachedRead(const Message& msg);
    void noteDemand(Addr addr, bool exclusive);
    void sendDsAck(const Message& msg);
    /// Hardened admission control, run once per *network arrival* of a
    /// DsPutX (never from a deferred retry, which would squash its own
    /// in-service transaction): checksum verify, then duplicate squash.
    /// Returns false when the message was consumed (NACKed or squashed).
    bool admitDirectStore(const Message& msg);
    void trimDsSeen();

    SliceParams slice_;

    /// Served-or-in-service DsPutX transaction ids (hardened path); value =
    /// "ack already sent". Bounded FIFO; only acked entries are evicted.
    std::unordered_map<std::uint64_t, bool> dsSeen_;
    std::deque<std::uint64_t> dsSeenOrder_;

    Counter accesses_;
    Counter misses_;
    Counter compulsory_;
    Counter dsStores_;
    Counter dsFills_;
    Counter dsBypassed_;
    Counter dsMerges_;
    Counter ucReads_;
    Counter prefetches_;
    Counter dsDupSquashed_;
    Counter dsNacks_;
};

} // namespace dscoh
