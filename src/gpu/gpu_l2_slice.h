// One slice of the shared GPU L2 (Table I: 2 MB, 16-way, 4 slices).
//
// Each slice is a coherent CacheAgent for the (interleaved) addresses it
// owns. Its front side serves the SM L1s over the GPU-internal network, and
// it is the landing zone for the paper's direct stores: a DsPutX installs
// the pushed line as MM (Fig. 3, I -> MM via the blue transition), falling
// back to a DRAM write when the set has no evictable way (the paper's "if
// the GPU L2 cache is full, the system writes data to DRAM").
#pragma once

#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "coherence/cache_agent.h"
#include "mem/dram.h"

namespace dscoh {

class GpuL2Slice final : public CacheAgent {
public:
    struct SliceParams {
        Tick tagLatency = 16;  ///< front-side lookup latency, ticks
        Network* gpuNet = nullptr; ///< SM L1s <-> slices
        Network* dsNet = nullptr;  ///< dedicated direct-store network
        MemoryInterface* dram = nullptr; ///< for the DS bypass/write-through path
        /// Sequential (next-line) prefetch depth on demand misses; 0 = off.
        /// Used by the prefetching-vs-direct-store ablation (§IV-C notes
        /// direct store beats prefetching; bench/ablation_prefetch checks).
        std::uint32_t prefetchDepth = 0;
        std::uint32_t slices = 4; ///< stride between slice-local lines

        // --- delivery hardening (PROTOCOL.md "Delivery hardening") ---
        /// Track DsPutX transaction ids, squash duplicates idempotently and
        /// replay the ack for already-served pushes.
        bool harden = false;
        /// Serve every push through the coherent fetch-merge path (skip the
        /// bare install) so an arbitrarily late or reordered copy can never
        /// create a second owner behind the fallback pull path.
        bool mergeOnly = false;
        /// Verify each DsPutX payload checksum; a mismatch is NACKed.
        bool verifyChecksum = false;

        // --- multi-GPU scale-out (PROTOCOL.md "Directory sharding across
        // GPUs") ---
        /// Timestamp-lease length in ticks for the GPU<->GPU read fast
        /// path. 0 disables the fast path: remote-homed reads always take
        /// the home-directory pull path.
        Tick tsLeaseTicks = 0;
        /// Which GPU this slice belongs to (the shard index the agent's
        /// homeMap reports for locally-homed addresses).
        std::uint32_t myGpu = 0;
        /// Node id of GPU 0's slice 0: slice s of GPU g is firstSliceNode +
        /// g * slices + s, which is how a requester addresses the remote
        /// home slice of a line.
        NodeId firstSliceNode = 1;
    };

    GpuL2Slice(std::string name, SimContext& ctx,
               const CacheAgent::Params& agentParams,
               const SliceParams& sliceParams);

    /// Entry point for kL1Load / kL1Store from the SMs (GPU network).
    void handleGpuMessage(const Message& msg);

    /// Entry point for kDsPutX / kUcRead from the CPU (dedicated network).
    void handleDsMessage(const Message& msg);

    void regStats(StatRegistry& registry) override;

    // GPU-side demand statistics (what Fig. 5 reports).
    std::uint64_t demandAccesses() const { return accesses_.value(); }
    std::uint64_t demandMisses() const { return misses_.value(); }
    std::uint64_t compulsoryMisses() const { return compulsory_.value(); }
    std::uint64_t dsFills() const { return dsFills_.value(); }
    std::uint64_t dsBypasses() const { return dsBypassed_.value(); }
    std::uint64_t prefetchesIssued() const { return prefetches_.value(); }

    // Timestamp fast path (multi-GPU): lease traffic observed by tests.
    std::uint64_t tsReadsSent() const { return tsReads_.value(); }
    std::uint64_t tsLeaseHits() const { return tsHits_.value(); }
    std::uint64_t tsGrantsIssued() const { return tsGrants_.value(); }
    std::uint64_t tsLeaseHolds() const { return tsHolds_.value(); }

    /// Adds the lease buffer and the granted-lease table to the coherent
    /// agent's snapshot (only when the fast path is configured, so 1-GPU
    /// snapshot bytes are unchanged).
    void snapSave(snap::SnapWriter& w) const override;
    void snapRestore(snap::SnapReader& r) override;

protected:
    void onFill(Line& line) override;
    /// Granted-lease freeze (write stall / snoop hold / eviction pin in the
    /// base agent). The injected cross-shard bug reports no hold.
    Tick holdUntil(Addr base) const override;

private:
    void serveLoad(const Message& msg);
    void serveStore(const Message& msg);
    void maybePrefetch(Addr missAddr);
    void serveDirectStore(const Message& msg);
    void serveUncachedRead(const Message& msg);
    void noteDemand(Addr addr, bool exclusive);
    void sendDsAck(const Message& msg);
    /// Hardened admission control, run once per *network arrival* of a
    /// DsPutX (never from a deferred retry, which would squash its own
    /// in-service transaction): checksum verify, then duplicate squash.
    /// Returns false when the message was consumed (NACKed or squashed).
    bool admitDirectStore(const Message& msg);
    void trimDsSeen();

    // --- timestamp fast path (multi-GPU) ---
    /// Is @p addr ordered by another GPU's directory shard?
    bool remoteHomed(Addr addr) const;
    /// The remote home slice holding @p base (same slice interleave there).
    NodeId homeSliceFor(Addr base) const;
    /// Serve a load from the lease buffer if a valid epoch covers it;
    /// expired entries self-invalidate lazily (HALCONE-style).
    bool tryServeLeased(const Message& msg);
    /// Park the load and (for the first waiter) send kTsRead to the home
    /// slice.
    void startTsRead(const Message& msg);
    /// Home-slice side: grant a lease on an owned stable line, else NACK.
    void serveTsRead(const Message& msg);
    void handleTsData(const Message& msg);
    void handleTsNack(const Message& msg);
    /// The pre-sharding load path (demand counters + coherent access).
    void serveLoadCoherent(const Message& msg);
    void sendLoadResp(const Message& msg, const DataBlock& data);
    /// Record the Fig. 3 cross-shard request edge when a coherent miss
    /// targets a remotely-homed line.
    void noteRemoteMiss(Addr addr, bool exclusive);
    void pruneExpiredGrants();

    SliceParams slice_;

    /// Served-or-in-service DsPutX transaction ids (hardened path); value =
    /// "ack already sent". Bounded FIFO; only acked entries are evicted.
    std::unordered_map<std::uint64_t, bool> dsSeen_;
    std::deque<std::uint64_t> dsSeenOrder_;

    /// Leased (non-coherent) copy of a remotely-homed line; readable
    /// strictly before @c expiry, self-invalidated lazily at or after it.
    struct LeasedLine {
        DataBlock data;
        Tick expiry = 0;
    };
    std::unordered_map<Addr, LeasedLine> tsLeased_;
    /// Leases this slice granted on its own lines: base -> expiry. Until
    /// then the line is write-stalled, snoop-held and eviction-pinned —
    /// and re-grants reply with the same expiry (a lease never extends),
    /// so every hold is bounded by the first grant.
    std::unordered_map<Addr, Tick> tsGranted_;
    /// Loads parked on an in-flight kTsRead, replayed on kTsData/kTsNack.
    std::unordered_map<Addr, std::vector<Message>> tsWaiting_;

    Counter accesses_;
    Counter misses_;
    Counter compulsory_;
    Counter dsStores_;
    Counter dsFills_;
    Counter dsBypassed_;
    Counter dsMerges_;
    Counter ucReads_;
    Counter prefetches_;
    Counter dsDupSquashed_;
    Counter dsNacks_;
    Counter tsReads_;
    Counter tsFills_;
    Counter tsHits_;
    Counter tsGrants_;
    Counter tsNacksSent_;
    Counter tsExpired_;
    Counter tsFallbacks_;
    Counter tsHolds_;
};

} // namespace dscoh
