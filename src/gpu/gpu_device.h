// GPU device: dispatches kernel grids across the SMs and tracks completion.
#pragma once

#include <functional>
#include <vector>

#include "gpu/sm.h"

namespace dscoh {

class GpuDevice final : public SimObject {
public:
    struct Params {
        Tick launchLatency = 2000; ///< driver/runtime launch overhead, ticks
    };

    GpuDevice(std::string name, SimContext& ctx, Params params,
              std::vector<StreamingMultiprocessor*> sms);

    /// Launches @p kernel; @p onDone fires when every block retired and all
    /// write-through stores are globally performed. Kernels are serial (the
    /// benchmarks under study launch one grid at a time).
    void launch(const KernelDesc& kernel, std::function<void()> onDone);

    bool busy() const { return active_; }

    void regStats(StatRegistry& registry) override;

    /// Kernels never span a safe point; the device only asserts that.
    void snapSave(snap::SnapWriter& w) const override
    {
        requireQuiesced(!active_, name() + " has an active kernel");
        w.u8(1);
    }
    void snapRestore(snap::SnapReader& r) override
    {
        if (r.u8() != 1)
            throw snap::SnapError(name() + ": bad quiescence marker");
    }

private:
    std::optional<std::uint32_t> nextBlock();
    void onSmIdle();

    Params params_;
    std::vector<StreamingMultiprocessor*> sms_;

    const KernelDesc* kernel_ = nullptr;
    std::uint32_t nextBlock_ = 0;
    bool active_ = false;
    Tick launchedAt_ = 0; ///< launch tick of the active kernel (trace span)
    std::function<void()> onDone_;

    Counter kernelsLaunched_;
    Counter blocksDispatched_;
};

} // namespace dscoh
