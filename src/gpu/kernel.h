// GPU kernel abstraction.
//
// A kernel is a grid of thread blocks; every thread's behaviour is produced
// by a body callback that records a SIMT op stream into a ThreadBuilder.
// Threads of one warp must record the same number of ops (lockstep);
// divergence is modelled with predication (nop()).
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/types.h"

namespace dscoh {

struct GpuOp {
    enum class Kind : std::uint8_t {
        kLoad,      ///< global load through L1/L2
        kStore,     ///< global store, write-through at the L1
        kSmemLoad,  ///< shared-memory (scratchpad) access, no cache traffic
        kSmemStore,
        kCompute, ///< ALU work, `cycles` GPU cycles
        kNop,     ///< predicated-off lane
    };

    Kind kind = Kind::kNop;
    Addr vaddr = 0;
    std::uint32_t size = 4;  ///< bytes, <= 8
    std::uint64_t value = 0; ///< store value / expected load value
    bool check = false;      ///< verify loaded value against `value`
    std::uint32_t cycles = 1;
};

constexpr bool isGlobalMem(GpuOp::Kind k)
{
    return k == GpuOp::Kind::kLoad || k == GpuOp::Kind::kStore;
}

/// Records one thread's op stream.
class ThreadBuilder {
public:
    void ld(Addr va, std::uint32_t size = 4)
    {
        GpuOp op;
        op.kind = GpuOp::Kind::kLoad;
        op.vaddr = va;
        op.size = size;
        ops_.push_back(op);
    }

    void ldCheck(Addr va, std::uint64_t expect, std::uint32_t size = 4)
    {
        GpuOp op;
        op.kind = GpuOp::Kind::kLoad;
        op.vaddr = va;
        op.size = size;
        op.value = expect;
        op.check = true;
        ops_.push_back(op);
    }

    void st(Addr va, std::uint64_t value, std::uint32_t size = 4)
    {
        GpuOp op;
        op.kind = GpuOp::Kind::kStore;
        op.vaddr = va;
        op.size = size;
        op.value = value;
        ops_.push_back(op);
    }

    void smemLd()
    {
        GpuOp op;
        op.kind = GpuOp::Kind::kSmemLoad;
        ops_.push_back(op);
    }

    void smemSt()
    {
        GpuOp op;
        op.kind = GpuOp::Kind::kSmemStore;
        ops_.push_back(op);
    }

    void compute(std::uint32_t cycles)
    {
        GpuOp op;
        op.kind = GpuOp::Kind::kCompute;
        op.cycles = cycles;
        ops_.push_back(op);
    }

    void nop() { ops_.push_back(GpuOp{}); }

    std::vector<GpuOp> take() { return std::move(ops_); }

private:
    std::vector<GpuOp> ops_;
};

struct KernelDesc {
    std::string name;
    std::uint32_t blocks = 1;
    std::uint32_t threadsPerBlock = 32;
    /// Which GPU device runs this kernel (multi-GPU scale-out; 0 is the
    /// only device in the default configuration).
    std::uint32_t gpu = 0;
    /// Table II "Shared" column: the kernel stages data in the SM-local
    /// scratchpad, largely bypassing the L2 for its inner loops.
    bool usesSharedMemory = false;
    /// Produces thread (blockId, threadId)'s op stream.
    std::function<void(ThreadBuilder&, std::uint32_t, std::uint32_t)> body;
};

} // namespace dscoh
