// Simulated virtual memory: page table, heap allocator (the program's
// malloc), and the reserved direct-store region allocator (the program's
// mmap(MAP_FIXED) after source translation, §III-C/D of the paper).
//
// The direct-store region is the high-order VA range with bit 46 set. The
// TLB recognizes translations inside it and tags CPU stores as remote.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

#include "sim/types.h"
#include "snap/snapshot.h"

namespace dscoh {

/// Base (and tag bit) of the reserved direct-store virtual address region.
inline constexpr Addr kDsRegionBase = 1ull << 46;

/// True when @p va lies in the reserved direct-store region.
constexpr bool inDsRegion(Addr va) { return (va & kDsRegionBase) != 0; }

struct Translation {
    Addr paddr = 0;
    bool dsRegion = false; ///< store must be forwarded to the GPU L2
};

/// Page-granular address space with eager physical backing.
class AddressSpace {
public:
    /// @p physBytes is the simulated DRAM capacity (Table I: 2 GB).
    explicit AddressSpace(std::uint64_t physBytes);

    /// Heap allocation (the program's malloc/cudaMalloc). Line-aligned.
    Addr heapAlloc(std::uint64_t bytes);

    /// Fixed-address allocation in the direct-store region, mirroring what
    /// the source translator emits: consecutive non-overlapping MAP_FIXED
    /// mmaps starting at the region base. Returns the mapped VA.
    Addr dsMmap(std::uint64_t bytes);

    /// MAP_FIXED at an explicit direct-store address (translator output has
    /// explicit start addresses). Throws on overlap or non-DS address.
    Addr dsMmapFixed(Addr va, std::uint64_t bytes);

    /// Translates @p va. Throws std::out_of_range for unmapped addresses
    /// (the simulated program segfaulted — a workload bug).
    Translation translate(Addr va) const;

    bool isMapped(Addr va) const;

    std::uint64_t mappedBytes() const
    {
        return static_cast<std::uint64_t>(pages_.size()) * kPageSize;
    }
    std::uint64_t physBytes() const { return physBytes_; }
    std::uint64_t physAllocated() const { return nextPhysPage_ * kPageSize; }

    /// Page table plus allocator cursors (std::map iterates in key order,
    /// so the serialized form is deterministic).
    void snapSave(snap::SnapWriter& w) const
    {
        w.u64(heapCursor_);
        w.u64(dsCursor_);
        w.u64(nextPhysPage_);
        w.u64(pages_.size());
        for (const auto& [va, pa] : pages_) {
            w.u64(va);
            w.u64(pa);
        }
    }

    void snapRestore(snap::SnapReader& r)
    {
        heapCursor_ = r.u64();
        dsCursor_ = r.u64();
        nextPhysPage_ = r.u64();
        pages_.clear();
        const std::uint64_t n = r.u64();
        for (std::uint64_t i = 0; i < n; ++i) {
            const Addr va = r.u64();
            pages_[va] = r.u64();
        }
    }

private:
    void mapRange(Addr vaBase, std::uint64_t bytes);

    std::uint64_t physBytes_;
    std::map<Addr, Addr> pages_; ///< VA page -> PA page base
    Addr heapCursor_;
    Addr dsCursor_;
    std::uint64_t nextPhysPage_ = 1; ///< page 0 kept unmapped (null guard)
};

} // namespace dscoh
