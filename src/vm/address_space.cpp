#include "vm/address_space.h"

namespace dscoh {

namespace {
constexpr Addr kHeapBase = 0x10000000; // plain data, far from page 0

std::uint64_t roundUpLine(std::uint64_t bytes)
{
    return (bytes + kLineSize - 1) & ~static_cast<std::uint64_t>(kLineSize - 1);
}
} // namespace

AddressSpace::AddressSpace(std::uint64_t physBytes)
    : physBytes_(physBytes), heapCursor_(kHeapBase), dsCursor_(kDsRegionBase)
{
}

void AddressSpace::mapRange(Addr vaBase, std::uint64_t bytes)
{
    const Addr first = pageAlign(vaBase);
    const Addr last = pageAlign(vaBase + bytes - 1);
    for (Addr va = first; va <= last; va += kPageSize) {
        if (pages_.count(va) != 0)
            continue; // page already backed (allocations can share pages)
        const Addr pa = nextPhysPage_ * kPageSize;
        if (pa + kPageSize > physBytes_)
            throw std::runtime_error("simulated physical memory exhausted");
        pages_.emplace(va, pa);
        ++nextPhysPage_;
    }
}

Addr AddressSpace::heapAlloc(std::uint64_t bytes)
{
    if (bytes == 0)
        throw std::invalid_argument("heapAlloc of zero bytes");
    const Addr va = heapCursor_;
    heapCursor_ += roundUpLine(bytes);
    mapRange(va, bytes);
    return va;
}

Addr AddressSpace::dsMmap(std::uint64_t bytes)
{
    return dsMmapFixed(dsCursor_, bytes);
}

Addr AddressSpace::dsMmapFixed(Addr va, std::uint64_t bytes)
{
    if (bytes == 0)
        throw std::invalid_argument("dsMmapFixed of zero bytes");
    if (!inDsRegion(va))
        throw std::invalid_argument("dsMmapFixed outside the DS region");
    // MAP_FIXED semantics without MAP_FIXED's silent clobbering: the
    // translator guarantees non-overlapping ranges, so overlap is a bug.
    const Addr first = pageAlign(va);
    const Addr last = pageAlign(va + bytes - 1);
    for (Addr page = first; page <= last; page += kPageSize)
        if (pages_.count(page) != 0)
            throw std::invalid_argument("dsMmapFixed overlaps an existing mapping");
    mapRange(va, bytes);
    if (va + bytes > dsCursor_)
        dsCursor_ = pageAlign(va + bytes + kPageSize - 1);
    return va;
}

Translation AddressSpace::translate(Addr va) const
{
    const auto it = pages_.find(pageAlign(va));
    if (it == pages_.end())
        throw std::out_of_range("translate: unmapped virtual address");
    return Translation{it->second + (va - pageAlign(va)), inDsRegion(va)};
}

bool AddressSpace::isMapped(Addr va) const
{
    return pages_.count(pageAlign(va)) != 0;
}

} // namespace dscoh
