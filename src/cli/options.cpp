#include "cli/options.h"

#include <cstdlib>
#include <stdexcept>
#include <thread>

namespace dscoh::cli {

void OptionParser::addFlag(const std::string& name, const std::string& help,
                           bool* out)
{
    Option opt;
    opt.help = help;
    opt.takesValue = false;
    opt.apply = [out](const std::string&) {
        *out = true;
        return true;
    };
    options_.emplace(name, std::move(opt));
}

void OptionParser::addUint(const std::string& name, const std::string& help,
                           std::uint64_t* out)
{
    Option opt;
    opt.help = help + " (integer)";
    opt.takesValue = true;
    opt.apply = [out](const std::string& value) {
        try {
            std::size_t used = 0;
            *out = std::stoull(value, &used, 0);
            return used == value.size();
        } catch (const std::exception&) {
            return false;
        }
    };
    options_.emplace(name, std::move(opt));
}

void OptionParser::addString(const std::string& name, const std::string& help,
                             std::string* out)
{
    Option opt;
    opt.help = help;
    opt.takesValue = true;
    opt.apply = [out](const std::string& value) {
        *out = value;
        return true;
    };
    options_.emplace(name, std::move(opt));
}

bool OptionParser::parse(int argc, const char* const* argv, std::ostream& err)
{
    positional_.clear();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        std::string name = arg.substr(2);
        std::string value;
        bool hasValue = false;
        if (const auto eq = name.find('='); eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            hasValue = true;
        }
        if (name == "help") {
            printHelp(err);
            return false;
        }
        const auto it = options_.find(name);
        if (it == options_.end()) {
            err << program_ << ": unknown option --" << name << "\n";
            return false;
        }
        if (it->second.takesValue && !hasValue) {
            if (i + 1 >= argc) {
                err << program_ << ": --" << name << " needs a value\n";
                return false;
            }
            value = argv[++i];
        }
        if (!it->second.takesValue && hasValue) {
            err << program_ << ": --" << name << " takes no value\n";
            return false;
        }
        if (!it->second.apply(value)) {
            err << program_ << ": bad value for --" << name << ": '" << value
                << "'\n";
            return false;
        }
    }
    return true;
}

bool parseJobCount(const std::string& text, unsigned& out, std::string& error)
{
    if (text.empty()) {
        error = "job count is empty";
        return false;
    }
    // Strict: digits only, so "0", "-3", "2x" and "1e3" all fail loudly
    // instead of silently truncating.
    for (const char c : text) {
        if (c < '0' || c > '9') {
            error = "job count '" + text + "' is not a positive integer";
            return false;
        }
    }
    unsigned long long value = 0;
    try {
        value = std::stoull(text);
    } catch (const std::exception&) {
        error = "job count '" + text + "' is out of range";
        return false;
    }
    if (value == 0) {
        error = "job count must be at least 1";
        return false;
    }
    if (value > 4096) {
        error = "job count '" + text + "' is unreasonably large (max 4096)";
        return false;
    }
    out = static_cast<unsigned>(value);
    return true;
}

bool resolveJobs(const std::string& flagText, unsigned& out, std::string& error)
{
    if (!flagText.empty())
        return parseJobCount(flagText, out, error);
    if (const char* env = std::getenv("DSCOH_JOBS");
        env != nullptr && *env != '\0') {
        if (!parseJobCount(env, out, error)) {
            error = "DSCOH_JOBS: " + error;
            return false;
        }
        return true;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    out = hw == 0 ? 1 : hw;
    return true;
}

bool parseLogLevel(const std::string& text, LogLevel& out, std::string& error)
{
    if (text == "error") {
        out = LogLevel::kError;
    } else if (text == "warn") {
        out = LogLevel::kWarn;
    } else if (text == "info") {
        out = LogLevel::kInfo;
    } else if (text == "debug") {
        out = LogLevel::kDebug;
    } else {
        error = "log level '" + text +
                "' is not one of error|warn|info|debug";
        return false;
    }
    return true;
}

bool resolveLogLevel(const std::string& flagText, LogLevel& out,
                     std::string& error)
{
    if (!flagText.empty())
        return parseLogLevel(flagText, out, error);
    if (const char* env = std::getenv("DSCOH_LOG_LEVEL");
        env != nullptr && *env != '\0') {
        if (!parseLogLevel(env, out, error)) {
            error = "DSCOH_LOG_LEVEL: " + error;
            return false;
        }
        return true;
    }
    out = LogLevel::kInfo;
    return true;
}

void OptionParser::printHelp(std::ostream& os) const
{
    os << program_ << " — " << description_ << "\n\noptions:\n";
    for (const auto& [name, opt] : options_)
        os << "  --" << name << (opt.takesValue ? " <value>" : "") << "\n      "
           << opt.help << "\n";
    os << "  --help\n      show this message\n";
}

} // namespace dscoh::cli
