// Tiny declarative command-line option parser for the dscoh tools.
//
// Flags are GNU-style: --name value or --name=value; bare --name for
// booleans. Unknown options are errors; non-option arguments collect into
// positional(). No dependencies, deterministic error messages.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/log.h"

namespace dscoh::cli {

class OptionParser {
public:
    explicit OptionParser(std::string programName, std::string description)
        : program_(std::move(programName)), description_(std::move(description))
    {
    }

    void addFlag(const std::string& name, const std::string& help, bool* out);
    void addUint(const std::string& name, const std::string& help,
                 std::uint64_t* out);
    void addString(const std::string& name, const std::string& help,
                   std::string* out);

    /// Parses argv. Returns false (and writes a message to @p err) on any
    /// unknown option, missing value, or malformed number. `--help` prints
    /// usage to @p err and also returns false.
    bool parse(int argc, const char* const* argv, std::ostream& err);

    const std::vector<std::string>& positional() const { return positional_; }

    void printHelp(std::ostream& os) const;

private:
    struct Option {
        std::string help;
        bool takesValue = false;
        std::function<bool(const std::string&)> apply;
    };

    std::string program_;
    std::string description_;
    std::map<std::string, Option> options_; ///< keyed without leading dashes
    std::vector<std::string> positional_;
};

/// Parses a worker-count value (from --jobs or DSCOH_JOBS): a positive
/// decimal integer. Rejects 0, negatives, garbage and trailing junk with a
/// deterministic message in @p error.
bool parseJobCount(const std::string& text, unsigned& out, std::string& error);

/// Resolves the worker count for a parallel tool. Precedence: an explicit
/// --jobs value (@p flagText, empty = not given), then the DSCOH_JOBS
/// environment variable, then std::thread::hardware_concurrency() (minimum
/// 1). Returns false and fills @p error when an explicit source is invalid.
bool resolveJobs(const std::string& flagText, unsigned& out,
                 std::string& error);

/// Parses a log-level name (from --log-level or DSCOH_LOG_LEVEL):
/// error|warn|info|debug, exactly. Anything else fails with a
/// deterministic message in @p error, mirroring parseJobCount.
bool parseLogLevel(const std::string& text, LogLevel& out, std::string& error);

/// Resolves the per-context log threshold. Precedence: an explicit
/// --log-level value (@p flagText, empty = not given), then the
/// DSCOH_LOG_LEVEL environment variable, then LogLevel::kInfo. Returns
/// false and fills @p error when an explicit source is invalid.
bool resolveLogLevel(const std::string& flagText, LogLevel& out,
                     std::string& error);

} // namespace dscoh::cli
