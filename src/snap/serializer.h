// Versioned, CRC-checked binary serialization for simulator snapshots.
//
// A snapshot file is a header (magic, format version, tick, config hash)
// followed by named component sections and a trailing CRC32 over everything
// before it. Sections are length-prefixed, so a reader can index the file
// (tools/inspect dumps the section table) without understanding any
// payload. All integers are little-endian; payloads are written by the
// components themselves through the primitive accessors below.
//
// Writing is atomic: the file image is assembled in memory and published
// with write-temp-then-rename, so a killed process never leaves a torn
// snapshot (or results file — atomicWriteFile is shared with the JSON
// writers) behind.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/types.h"

namespace dscoh::snap {

/// Every failure in this subsystem (bad magic, CRC mismatch, truncated
/// section, unquiesced component, config-hash mismatch) throws this.
class SnapError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Current snapshot file format version. Bump on ANY layout change — there
/// is deliberately no cross-version migration: a snapshot is a cache of a
/// deterministic computation, never the only copy of anything, so readers
/// reject other versions loudly and callers re-simulate.
inline constexpr std::uint32_t kFormatVersion = 1;

/// Standard CRC-32 (IEEE 802.3, reflected). @p seed chains partial blocks.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

/// Writes @p contents to @p path via a temporary file in the same
/// directory plus rename(2), so concurrent readers (and crash recovery)
/// only ever observe the old or the complete new file. Durable: the temp
/// file is fsync'ed before the rename and the containing directory after
/// it, so a crash straight after return cannot lose the publication.
/// Transient failures (EIO, short write) are retried a bounded number of
/// times; persistent failures and ENOSPC throw SnapError. Consults the
/// process io-fault injector (fault/io_fault.h) when one is installed.
void atomicWriteFile(const std::string& path, const std::string& contents);

/// Appends @p data to @p path and fsyncs it. Torn-safe retry: a failed or
/// short append is undone with ftruncate back to the pre-append length
/// before the bounded retry, so the file never gains a duplicated or
/// interleaved record. Creating the file also fsyncs its directory. This
/// is the primitive under every WAL/journal append. Throws SnapError when
/// retries are exhausted or the disk is full.
void durableAppendLine(const std::string& path, const std::string& data);

/// fsyncs the directory itself so a rename/creation inside it survives a
/// crash. A directory that cannot be opened is skipped (not every
/// filesystem supports it); a failing fsync throws SnapError.
void fsyncDir(const std::string& dirPath);

/// The containing directory of @p path ("." when it has none).
std::string dirOf(const std::string& path);

/// Assembles a snapshot image section by section.
class SnapWriter {
public:
    SnapWriter(Tick tick, std::uint64_t configHash)
        : tick_(tick), configHash_(configHash)
    {
    }

    /// Starts a new named section; primitives below land in it. Section
    /// names must be unique within a file.
    void beginSection(const std::string& name);
    void endSection();
    bool inSection() const { return open_; }

    void u8(std::uint8_t v) { raw(&v, 1); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void f64(double v);
    void str(const std::string& s);
    void bytes(const void* data, std::size_t size);

    Tick tick() const { return tick_; }

    /// The complete file image (header + sections + CRC).
    std::string finish() const;

    /// finish() + atomicWriteFile().
    void writeFile(const std::string& path) const;

private:
    void raw(const void* data, std::size_t size);

    struct Section {
        std::string name;
        std::string payload;
    };

    Tick tick_;
    std::uint64_t configHash_;
    std::vector<Section> sections_;
    bool open_ = false;
};

/// One entry of a snapshot's section table.
struct SectionInfo {
    std::string name;
    std::uint64_t bytes = 0;
};

/// Parses and validates a snapshot file; components then consume their
/// sections. Every read is bounds-checked against its section; closing a
/// section verifies it was consumed exactly, so a component whose layout
/// drifted from the writer fails loudly instead of reading garbage.
class SnapReader {
public:
    /// Reads @p path, validating magic, format version and the trailing
    /// CRC. Throws SnapError with the reason on any mismatch.
    explicit SnapReader(const std::string& path);

    std::uint32_t formatVersion() const { return version_; }
    Tick tick() const { return tick_; }
    std::uint64_t configHash() const { return configHash_; }
    const std::vector<SectionInfo>& sections() const { return table_; }
    bool hasSection(const std::string& name) const;

    /// Positions the cursor at the start of @p name. Throws if absent or
    /// if another section is still open.
    void openSection(const std::string& name);
    /// Verifies the open section was consumed exactly.
    void closeSection();

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    std::string str();
    void bytes(void* out, std::size_t size);

private:
    void raw(void* out, std::size_t size);

    std::string data_;
    std::uint32_t version_ = 0;
    Tick tick_ = 0;
    std::uint64_t configHash_ = 0;
    std::vector<SectionInfo> table_;
    std::vector<std::size_t> offsets_; ///< payload start per section
    std::size_t cursor_ = 0;
    std::size_t sectionEnd_ = 0;
    std::string openName_;
    bool open_ = false;
};

/// Snapshot header summary for tools (no payload validation beyond CRC).
struct SnapshotHeader {
    std::uint32_t formatVersion = 0;
    Tick tick = 0;
    std::uint64_t configHash = 0;
    std::vector<SectionInfo> sections;
    std::uint64_t fileBytes = 0;
};

/// Reads @p path's header and section table (CRC-validated — throws
/// SnapError on corruption, exactly like SnapReader).
SnapshotHeader readSnapshotHeader(const std::string& path);

} // namespace dscoh::snap
