// A shared, size-bounded snapshot store.
//
// The produce-phase snapshot cache started life as "a directory of .snap
// files": every writer published atomically and every reader either hit or
// missed, which is already safe across processes. What a *service* sharing
// that directory across tenants additionally needs is a byte budget — the
// cache must not grow without bound under heavy traffic — and a safe way
// to enforce it while several processes insert concurrently. SnapshotCache
// wraps the directory with exactly that:
//
//  - lookups bump the entry's LRU stamp (its mtime), so recency is shared
//    across every process using the directory;
//  - inserts publish atomically (temp + rename) and then evict
//    oldest-stamp entries until the directory fits the budget again;
//  - eviction runs under an advisory flock(2) on "<dir>/.cache.lock", so
//    two processes trimming at once never double-delete or race the scan.
//
// Evicting a file another process is mid-restore from is harmless on
// POSIX: the open descriptor keeps the data alive, and a subsequent miss
// just re-populates. The cache holds only derived data by construction
// (snapshots of deterministic computations), so any entry is always safe
// to drop.
#pragma once

#include <cstdint>
#include <string>

namespace dscoh::snap {

class SnapshotCache {
public:
    /// Uses (and creates, if needed) @p dir. @p maxBytes of 0 means
    /// unbounded — the store degenerates to the plain shared directory.
    /// Entry files are whatever callers name them; the lock file and
    /// temporaries are excluded from the budget and from eviction.
    explicit SnapshotCache(std::string dir, std::uint64_t maxBytes = 0);

    const std::string& dir() const { return dir_; }
    std::uint64_t maxBytes() const { return maxBytes_; }

    /// Full path of entry @p file inside the store.
    std::string pathFor(const std::string& file) const;

    /// Hit test: true when the entry exists, refreshing its LRU stamp so
    /// hot entries survive eviction. Counts a hit or a miss either way.
    bool touch(const std::string& file);

    /// Publishes @p contents as entry @p file (atomic temp + rename; a
    /// concurrent insert of the same key leaves one valid file either
    /// way), then evicts down to the byte budget. Throws SnapError on I/O
    /// failure.
    void insert(const std::string& file, const std::string& contents);

    /// Oldest-stamp-first eviction until the store fits maxBytes (no-op
    /// when unbounded). @p keep, when non-empty, names one entry exempt
    /// from this pass (the insert that triggered it). Returns the number
    /// of entries removed.
    std::size_t evictToBudget(const std::string& keep = {});

    /// Total bytes of entry files currently in the store.
    std::uint64_t totalBytes() const;

    /// Per-instance (not per-directory) traffic counters.
    struct Counters {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t inserts = 0;
        std::uint64_t evictions = 0;
    };
    const Counters& counters() const { return counters_; }

private:
    std::string dir_;
    std::uint64_t maxBytes_ = 0;
    Counters counters_;
};

} // namespace dscoh::snap
