// The Snapshottable interface.
//
// Snapshots are taken only at *safe points*: the event queue is fully
// drained, so no closure-captured in-flight work exists and the entire
// machine state is plain data (cache arrays, directory registries, timing
// reservations, counters, RNG streams). Components that buffer transient
// work (MSHRs, writeback buffers, pending-request deques) therefore do not
// serialize it — they *assert it is empty* and throw SnapError otherwise,
// which turns "snapshot taken at a non-safe point" into a loud failure
// instead of silent state loss.
#pragma once

#include <string>

#include "snap/serializer.h"

namespace dscoh::snap {

/// Implemented by every component with state that must survive a
/// checkpoint. SimObject derives from this with no-op defaults, so purely
/// stateless components (and ones whose state is fully transient and
/// drained at safe points) need nothing.
class Snapshottable {
public:
    virtual ~Snapshottable() = default;

    /// Appends this component's persistent state to the writer's currently
    /// open section. Must throw SnapError if the component holds transient
    /// in-flight state (the caller tried to snapshot off a safe point).
    virtual void snapSave(SnapWriter& writer) const
    {
        static_cast<void>(writer);
    }

    /// Restores state previously written by snapSave. Called on a freshly
    /// constructed component (same config — the caller verified the config
    /// hash); must consume its section exactly.
    virtual void snapRestore(SnapReader& reader)
    {
        static_cast<void>(reader);
    }

protected:
    /// Quiescence guard for snapSave implementations.
    static void requireQuiesced(bool quiesced, const std::string& what)
    {
        if (!quiesced)
            throw SnapError("snapshot off a safe point: " + what);
    }
};

} // namespace dscoh::snap
