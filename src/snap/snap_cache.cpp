#include "snap/snap_cache.h"

#include <algorithm>
#include <filesystem>
#include <system_error>
#include <vector>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "snap/serializer.h"

namespace dscoh::snap {

namespace fs = std::filesystem;

namespace {

constexpr const char* kLockFile = ".cache.lock";

/// RAII advisory lock on the store's lock file. Lock failure (exotic
/// filesystems without flock) degrades to lockless operation — the
/// individual operations are still rename-atomic, only concurrent eviction
/// loses its serialization.
class StoreLock {
public:
    explicit StoreLock(const std::string& dir)
    {
        const std::string path = dir + "/" + kLockFile;
        fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
        if (fd_ >= 0 && ::flock(fd_, LOCK_EX) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }
    ~StoreLock()
    {
        if (fd_ >= 0) {
            ::flock(fd_, LOCK_UN);
            ::close(fd_);
        }
    }
    StoreLock(const StoreLock&) = delete;
    StoreLock& operator=(const StoreLock&) = delete;

private:
    int fd_ = -1;
};

bool isEntry(const fs::directory_entry& e)
{
    if (!e.is_regular_file())
        return false;
    const std::string name = e.path().filename().string();
    if (name == kLockFile)
        return false;
    // Skip in-flight atomicWriteFile temporaries ("<entry>.tmp").
    return name.size() < 4 || name.compare(name.size() - 4, 4, ".tmp") != 0;
}

} // namespace

SnapshotCache::SnapshotCache(std::string dir, std::uint64_t maxBytes)
    : dir_(std::move(dir)), maxBytes_(maxBytes)
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        throw SnapError("snapshot cache: cannot create " + dir_ + ": " +
                        ec.message());
}

std::string SnapshotCache::pathFor(const std::string& file) const
{
    return dir_ + "/" + file;
}

bool SnapshotCache::touch(const std::string& file)
{
    const fs::path path = pathFor(file);
    std::error_code ec;
    if (!fs::is_regular_file(path, ec)) {
        ++counters_.misses;
        return false;
    }
    // Refresh the shared LRU stamp. A racing eviction may have removed the
    // file between the check and the stamp; that's still just a miss for
    // the caller's subsequent read, never an error here.
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
    ++counters_.hits;
    return true;
}

void SnapshotCache::insert(const std::string& file,
                           const std::string& contents)
{
    atomicWriteFile(pathFor(file), contents);
    ++counters_.inserts;
    if (maxBytes_ != 0)
        evictToBudget(file);
}

std::size_t SnapshotCache::evictToBudget(const std::string& keep)
{
    if (maxBytes_ == 0)
        return 0;
    const StoreLock lock(dir_);

    struct Entry {
        fs::path path;
        fs::file_time_type stamp;
        std::uint64_t bytes = 0;
    };
    std::vector<Entry> entries;
    std::uint64_t total = 0;
    std::error_code ec;
    for (const fs::directory_entry& e : fs::directory_iterator(dir_, ec)) {
        if (!isEntry(e))
            continue;
        Entry entry;
        entry.path = e.path();
        entry.stamp = e.last_write_time(ec);
        entry.bytes = e.file_size(ec);
        total += entry.bytes;
        entries.push_back(std::move(entry));
    }
    if (total <= maxBytes_)
        return 0;

    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                  return a.stamp != b.stamp ? a.stamp < b.stamp
                                            : a.path < b.path;
              });
    std::size_t evicted = 0;
    for (const Entry& e : entries) {
        if (total <= maxBytes_)
            break;
        if (!keep.empty() && e.path.filename().string() == keep)
            continue;
        if (fs::remove(e.path, ec)) {
            total -= e.bytes;
            ++evicted;
        }
    }
    counters_.evictions += evicted;
    return evicted;
}

std::uint64_t SnapshotCache::totalBytes() const
{
    std::uint64_t total = 0;
    std::error_code ec;
    for (const fs::directory_entry& e : fs::directory_iterator(dir_, ec))
        if (isEntry(e))
            total += e.file_size(ec);
    return total;
}

} // namespace dscoh::snap
