#include "snap/serializer.h"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "fault/io_fault.h"

namespace dscoh::snap {

namespace {

constexpr std::array<char, 8> kMagic = {'D', 'S', 'C', 'O',
                                        'H', 'S', 'N', 'P'};

std::array<std::uint32_t, 256> makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

void appendLe32(std::string& out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

void appendLe64(std::string& out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

std::uint32_t readLe32(const std::string& in, std::size_t at)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) |
            static_cast<std::uint8_t>(in[at + static_cast<std::size_t>(i)]);
    return v;
}

std::uint64_t readLe64(const std::string& in, std::size_t at)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) |
            static_cast<std::uint8_t>(in[at + static_cast<std::size_t>(i)]);
    return v;
}

} // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    std::uint32_t c = seed ^ 0xffffffffu;
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < size; ++i)
        c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

namespace {

/// Transient failures (EIO, short writes, failed fsync) get this many
/// attempts before the error propagates; ENOSPC never retries.
constexpr int kDurableRetries = 3;

struct WriteAttempt {
    bool ok = false;
    bool retryable = false;
    std::string error;
};

/// Writes [data, data+size) to @p fd, consulting the io-fault injector
/// before each write(2). Injected torn writes land their prefix and then
/// kill the process (or throw, under a test crash handler).
WriteAttempt writeAllFd(int fd, const std::string& name, const char* data,
                        std::size_t size)
{
    WriteAttempt a;
    std::size_t off = 0;
    while (off < size) {
        const std::size_t want = size - off;
        if (fault::IoFaultInjector* inj = fault::ioFaultInjector()) {
            using Kind = fault::IoFaultInjector::WriteDecision::Kind;
            const auto d = inj->onWrite(name, want);
            if (d.kind != Kind::kNone) {
                if (d.kind == Kind::kTornCrash ||
                    d.kind == Kind::kShortWrite) {
                    // The prefix really lands — that is what makes the
                    // record torn rather than merely missing.
                    std::size_t landed = 0;
                    while (landed < d.keepBytes) {
                        const ssize_t n = ::write(fd, data + off + landed,
                                                  d.keepBytes - landed);
                        if (n <= 0)
                            break;
                        landed += static_cast<std::size_t>(n);
                    }
                }
                switch (d.kind) {
                case Kind::kTornCrash:
                    fault::ioFaultCrash("torn write to " + name);
                    a.error = name + ": injected torn write";
                    a.retryable = true; // crash handler returned (tests)
                    return a;
                case Kind::kShortWrite:
                    a.error = name + ": injected short write";
                    a.retryable = true;
                    return a;
                case Kind::kEnospc:
                    a.error = name +
                              ": injected ENOSPC (no space left on device)";
                    a.retryable = false;
                    return a;
                case Kind::kEio:
                    a.error = name + ": injected EIO";
                    a.retryable = true;
                    return a;
                case Kind::kNone:
                    break;
                }
            }
        }
        const ssize_t n = ::write(fd, data + off, want);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const int err = errno;
            a.error = "write " + name + " failed: " + std::strerror(err);
            a.retryable = err != ENOSPC;
            return a;
        }
        off += static_cast<std::size_t>(n);
    }
    a.ok = true;
    return a;
}

/// fsync(fd) with fault injection. Fills @p a on failure.
bool fsyncFd(int fd, const std::string& name, WriteAttempt* a)
{
    if (fault::IoFaultInjector* inj = fault::ioFaultInjector()) {
        if (inj->onFsync(name)) {
            a->error = name + ": injected fsync failure";
            a->retryable = true;
            return false;
        }
    }
    if (::fsync(fd) != 0) {
        const int err = errno;
        a->error = "fsync " + name + " failed: " + std::strerror(err);
        a->retryable = err != ENOSPC;
        return false;
    }
    return true;
}

/// One attempt at assembling the temp file: open-trunc, write, fsync.
WriteAttempt writeTmpOnce(const std::string& tmp,
                          const std::string& contents)
{
    WriteAttempt a;
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
        a.error = "cannot open " + tmp + " for writing: " +
                  std::strerror(errno);
        return a;
    }
    a = writeAllFd(fd, tmp, contents.data(), contents.size());
    if (a.ok && !fsyncFd(fd, tmp, &a))
        a.ok = false;
    if (::close(fd) != 0 && a.ok) {
        a.ok = false;
        a.retryable = true;
        a.error = "close " + tmp + " failed: " + std::strerror(errno);
    }
    return a;
}

} // namespace

std::string dirOf(const std::string& path)
{
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

void fsyncDir(const std::string& dirPath)
{
    const int fd =
        ::open(dirPath.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0)
        return; // not every filesystem lets you open a directory
    WriteAttempt a;
    const bool ok = fsyncFd(fd, dirPath, &a);
    ::close(fd);
    if (!ok)
        throw SnapError(a.error);
}

void atomicWriteFile(const std::string& path, const std::string& contents)
{
    const std::string tmp = path + ".tmp";
    WriteAttempt last;
    for (int attempt = 0; attempt < kDurableRetries; ++attempt) {
        last = writeTmpOnce(tmp, contents);
        if (last.ok)
            break;
        if (!last.retryable)
            break;
    }
    if (!last.ok) {
        std::remove(tmp.c_str());
        throw SnapError(last.error);
    }

    if (fault::IoFaultInjector* inj = fault::ioFaultInjector()) {
        using R = fault::IoFaultInjector::RenameDecision;
        const R d = inj->onRename(path);
        if (d == R::kCrashBefore) {
            fault::ioFaultCrash("crash before rename of " + path);
            // Test crash handler returned without throwing: the temp file
            // stays behind, the publication never happened.
            std::remove(tmp.c_str());
            throw SnapError(path + ": injected crash before rename");
        }
        if (d == R::kCrashAfter) {
            if (std::rename(tmp.c_str(), path.c_str()) != 0) {
                const int err = errno;
                std::remove(tmp.c_str());
                throw SnapError("rename " + tmp + " -> " + path +
                                " failed: " + std::strerror(err));
            }
            fault::ioFaultCrash("crash after rename of " + path);
            // Handler returned: the file IS published, but its directory
            // entry may not be durable — exactly the window satellite 1
            // closes. Fall through to the directory fsync.
            fsyncDir(dirOf(path));
            return;
        }
    }

    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        const int err = errno;
        std::remove(tmp.c_str());
        throw SnapError("rename " + tmp + " -> " + path + " failed: " +
                        std::strerror(err));
    }
    // A crash between rename and directory fsync can roll the rename back;
    // syncing the parent closes the last window of the publication.
    fsyncDir(dirOf(path));
}

void durableAppendLine(const std::string& path, const std::string& data)
{
    WriteAttempt last;
    for (int attempt = 0; attempt < kDurableRetries; ++attempt) {
        const int fd = ::open(path.c_str(),
                              O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                              0644);
        if (fd < 0) {
            last.error = "cannot open " + path + " for append: " +
                         std::strerror(errno);
            last.retryable = true;
            continue;
        }
        const off_t origSize = ::lseek(fd, 0, SEEK_END);
        last = writeAllFd(fd, path, data.data(), data.size());
        if (last.ok && !fsyncFd(fd, path, &last))
            last.ok = false;
        if (!last.ok) {
            // Undo the partial append so a retry (or the next record)
            // never produces a duplicated or interleaved prefix. Torn
            // records therefore come only from real (or injected) crashes,
            // which replay handles by truncation.
            if (origSize >= 0)
                (void)::ftruncate(fd, origSize);
            ::close(fd);
            if (!last.retryable)
                break;
            continue;
        }
        ::close(fd);
        if (origSize == 0)
            fsyncDir(dirOf(path)); // first creation: make the entry durable
        return;
    }
    throw SnapError(last.error);
}

// --------------------------------------------------------------------------
// SnapWriter

void SnapWriter::beginSection(const std::string& name)
{
    if (open_)
        throw SnapError("beginSection('" + name + "') with '" +
                        sections_.back().name + "' still open");
    for (const Section& s : sections_)
        if (s.name == name)
            throw SnapError("duplicate snapshot section '" + name + "'");
    sections_.push_back(Section{name, {}});
    open_ = true;
}

void SnapWriter::endSection()
{
    if (!open_)
        throw SnapError("endSection() with no open section");
    open_ = false;
}

void SnapWriter::raw(const void* data, std::size_t size)
{
    if (!open_)
        throw SnapError("snapshot write outside of a section");
    sections_.back().payload.append(static_cast<const char*>(data), size);
}

void SnapWriter::u32(std::uint32_t v)
{
    if (!open_)
        throw SnapError("snapshot write outside of a section");
    appendLe32(sections_.back().payload, v);
}

void SnapWriter::u64(std::uint64_t v)
{
    if (!open_)
        throw SnapError("snapshot write outside of a section");
    appendLe64(sections_.back().payload, v);
}

void SnapWriter::f64(double v)
{
    static_assert(sizeof(double) == sizeof(std::uint64_t));
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void SnapWriter::str(const std::string& s)
{
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
}

void SnapWriter::bytes(const void* data, std::size_t size)
{
    raw(data, size);
}

std::string SnapWriter::finish() const
{
    if (open_)
        throw SnapError("finish() with section '" + sections_.back().name +
                        "' still open");
    std::string out;
    out.append(kMagic.data(), kMagic.size());
    appendLe32(out, kFormatVersion);
    appendLe64(out, tick_);
    appendLe64(out, configHash_);
    appendLe32(out, static_cast<std::uint32_t>(sections_.size()));
    for (const Section& s : sections_) {
        appendLe32(out, static_cast<std::uint32_t>(s.name.size()));
        out.append(s.name);
        appendLe64(out, s.payload.size());
        out.append(s.payload);
    }
    appendLe32(out, crc32(out.data(), out.size()));
    return out;
}

void SnapWriter::writeFile(const std::string& path) const
{
    atomicWriteFile(path, finish());
}

// --------------------------------------------------------------------------
// SnapReader

SnapReader::SnapReader(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SnapError("cannot open snapshot: " + path);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    data_ = std::move(data);

    const std::size_t minSize = kMagic.size() + 4 + 8 + 8 + 4 + 4;
    if (data_.size() < minSize)
        throw SnapError(path + ": truncated snapshot (" +
                        std::to_string(data_.size()) + " bytes)");
    if (std::memcmp(data_.data(), kMagic.data(), kMagic.size()) != 0)
        throw SnapError(path + ": not a dscoh snapshot (bad magic)");

    const std::uint32_t storedCrc = readLe32(data_, data_.size() - 4);
    const std::uint32_t actualCrc = crc32(data_.data(), data_.size() - 4);
    if (storedCrc != actualCrc)
        throw SnapError(path + ": CRC mismatch (file " +
                        std::to_string(storedCrc) + ", computed " +
                        std::to_string(actualCrc) + ") — corrupt snapshot");

    std::size_t at = kMagic.size();
    version_ = readLe32(data_, at);
    at += 4;
    if (version_ != kFormatVersion)
        throw SnapError(path + ": snapshot format version " +
                        std::to_string(version_) + ", this build reads " +
                        std::to_string(kFormatVersion) +
                        " — re-simulate instead of restoring");
    tick_ = readLe64(data_, at);
    at += 8;
    configHash_ = readLe64(data_, at);
    at += 8;
    const std::uint32_t count = readLe32(data_, at);
    at += 4;
    const std::size_t end = data_.size() - 4; // CRC trailer
    for (std::uint32_t i = 0; i < count; ++i) {
        if (at + 4 > end)
            throw SnapError(path + ": truncated section table");
        const std::uint32_t nameLen = readLe32(data_, at);
        at += 4;
        if (at + nameLen + 8 > end)
            throw SnapError(path + ": truncated section header");
        std::string name = data_.substr(at, nameLen);
        at += nameLen;
        const std::uint64_t payloadLen = readLe64(data_, at);
        at += 8;
        if (payloadLen > end - at)
            throw SnapError(path + ": section '" + name +
                            "' overruns the file");
        table_.push_back(SectionInfo{std::move(name), payloadLen});
        offsets_.push_back(at);
        at += payloadLen;
    }
    if (at != end)
        throw SnapError(path + ": trailing garbage after last section");
}

bool SnapReader::hasSection(const std::string& name) const
{
    for (const SectionInfo& s : table_)
        if (s.name == name)
            return true;
    return false;
}

void SnapReader::openSection(const std::string& name)
{
    if (open_)
        throw SnapError("openSection('" + name + "') with '" + openName_ +
                        "' still open");
    for (std::size_t i = 0; i < table_.size(); ++i) {
        if (table_[i].name == name) {
            cursor_ = offsets_[i];
            sectionEnd_ = offsets_[i] + table_[i].bytes;
            openName_ = name;
            open_ = true;
            return;
        }
    }
    throw SnapError("snapshot has no section '" + name +
                    "' — saved by an incompatible build?");
}

void SnapReader::closeSection()
{
    if (!open_)
        throw SnapError("closeSection() with no open section");
    if (cursor_ != sectionEnd_)
        throw SnapError("section '" + openName_ + "': " +
                        std::to_string(sectionEnd_ - cursor_) +
                        " unconsumed bytes — reader/writer layout mismatch");
    open_ = false;
}

void SnapReader::raw(void* out, std::size_t size)
{
    if (!open_)
        throw SnapError("snapshot read outside of a section");
    if (cursor_ + size > sectionEnd_)
        throw SnapError("section '" + openName_ +
                        "': read past end — reader/writer layout mismatch");
    std::memcpy(out, data_.data() + cursor_, size);
    cursor_ += size;
}

std::uint8_t SnapReader::u8()
{
    std::uint8_t v = 0;
    raw(&v, 1);
    return v;
}

std::uint32_t SnapReader::u32()
{
    std::uint8_t b[4];
    raw(b, 4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | b[i];
    return v;
}

std::uint64_t SnapReader::u64()
{
    std::uint8_t b[8];
    raw(b, 8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | b[i];
    return v;
}

double SnapReader::f64()
{
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string SnapReader::str()
{
    const std::uint32_t n = u32();
    std::string s(n, '\0');
    raw(s.data(), n);
    return s;
}

void SnapReader::bytes(void* out, std::size_t size)
{
    raw(out, size);
}

SnapshotHeader readSnapshotHeader(const std::string& path)
{
    SnapReader reader(path);
    SnapshotHeader header;
    header.formatVersion = reader.formatVersion();
    header.tick = reader.tick();
    header.configHash = reader.configHash();
    header.sections = reader.sections();
    std::uint64_t total = 0;
    {
        std::ifstream in(path, std::ios::binary | std::ios::ate);
        if (in)
            total = static_cast<std::uint64_t>(in.tellg());
    }
    header.fileBytes = total;
    return header;
}

} // namespace dscoh::snap
