// Hand-built producer-consumer scenario on the raw public API — the
// paper's motivating pattern, without the workload framework.
//
// The CPU produces an array of N values; a GPU kernel loads each value,
// verifies it, and writes a derived result; the CPU then reads a few
// results back. Runs under both schemes and shows exactly where the pushed
// lines end up.
#include <cstdio>

#include "core/system.h"

using namespace dscoh;

namespace {

constexpr std::uint32_t kN = 8192; // 32-bit values -> 32 KB

RunMetrics runOnce(CoherenceMode mode)
{
    System sys(SystemConfig::paper(mode));

    // The source translator would move both kernel-referenced arrays into
    // the direct-store region; allocateArray does the same by policy.
    const Addr input = sys.allocateArray(kN * 4, /*gpuShared=*/true);
    const Addr output = sys.allocateArray(kN * 4, /*gpuShared=*/true);
    std::printf("  [%s] input VA 0x%llx %s\n", to_string(mode),
                static_cast<unsigned long long>(input),
                inDsRegion(input) ? "(direct-store region)" : "(heap)");

    // --- CPU produce phase -------------------------------------------------
    CpuProgram produce;
    for (std::uint32_t i = 0; i < kN; ++i)
        produce.push_back(cpuStore(input + i * 4ull, 0xc0ffee00ull + i, 4));
    produce.push_back(cpuFence());

    // --- GPU consume kernel -----------------------------------------------
    KernelDesc kernel;
    kernel.name = "consume_and_derive";
    kernel.threadsPerBlock = 256;
    kernel.blocks = kN / 256;
    kernel.body = [input, output](ThreadBuilder& t, std::uint32_t block,
                                  std::uint32_t thread) {
        const std::uint32_t i = block * 256 + thread;
        t.ldCheck(input + i * 4ull, 0xc0ffee00ull + i, 4); // verified load
        t.compute(8);
        t.st(output + i * 4ull, i * 3ull, 4);
    };

    // --- CPU reads a few results back (uncached in DS mode) ----------------
    CpuProgram readBack;
    for (std::uint32_t i = 0; i < kN; i += kN / 8)
        readBack.push_back(cpuLoadCheck(output + i * 4ull, i * 3ull, 4));

    sys.runCpuProgram(produce, [&] {
        sys.launchKernel(kernel, [&] { sys.runCpuProgram(readBack, [] {}); });
    });
    sys.simulate();

    // Show where the pushed lines live after the produce phase effects.
    const auto violations = sys.checkCoherenceInvariants();
    std::printf("  [%s] ticks=%llu l2MissRate=%.1f%% dsFills=%llu "
                "checkFailures=%llu coherent=%s\n",
                to_string(mode),
                static_cast<unsigned long long>(sys.metrics().ticks),
                sys.metrics().gpuL2MissRate * 100,
                static_cast<unsigned long long>(sys.metrics().dsFills),
                static_cast<unsigned long long>(sys.metrics().checkFailures),
                violations.empty() ? "yes" : violations.front().c_str());
    return sys.metrics();
}

} // namespace

int main()
{
    std::printf("Producer-consumer on the raw System API (%u values)\n\n", kN);
    const RunMetrics ccsm = runOnce(CoherenceMode::kCcsm);
    std::printf("\n");
    const RunMetrics ds = runOnce(CoherenceMode::kDirectStore);

    std::printf("\nDirect store speedup: %.1f%% | misses %llu -> %llu | "
                "compulsory %llu -> %llu\n",
                (static_cast<double>(ccsm.ticks) /
                     static_cast<double>(ds.ticks) -
                 1.0) *
                    100.0,
                static_cast<unsigned long long>(ccsm.gpuL2Misses),
                static_cast<unsigned long long>(ds.gpuL2Misses),
                static_cast<unsigned long long>(ccsm.gpuL2Compulsory),
                static_cast<unsigned long long>(ds.gpuL2Compulsory));
    return ccsm.checkFailures + ds.checkFailures == 0 ? 0 : 1;
}
