// Runs a user-written .trace workload (see examples/traces/) under both
// coherence schemes — the no-C++-required way to explore direct store on
// your own access patterns.
//
//   ./trace_runner examples/traces/vector_add.trace [small|big]
#include <cstdio>
#include <string>

#include "trace/trace_format.h"
#include "workloads/runner.h"

int main(int argc, char** argv)
{
    using namespace dscoh;
    if (argc < 2) {
        std::printf("usage: %s <file.trace> [small|big]\n", argv[0]);
        return 1;
    }
    const InputSize size = (argc > 2 && std::string(argv[2]) == "big")
                               ? InputSize::kBig
                               : InputSize::kSmall;
    try {
        const auto workload = trace::loadTraceFile(argv[1]);
        std::printf("trace '%s' (%s input)\n", workload->info().code.c_str(),
                    to_string(size));
        for (const auto& a : workload->arrays(size))
            std::printf("  array %-10s %8llu bytes  %s%s\n", a.name.c_str(),
                        static_cast<unsigned long long>(a.bytes),
                        a.gpuShared ? "shared" : "private",
                        a.cpuProduced ? ", CPU-produced" : "");

        const ComparisonResult cmp = compareModes(*workload, size);
        std::printf("\n                     %12s %12s\n", "CCSM", "DirectStore");
        std::printf("ticks                %12llu %12llu\n",
                    static_cast<unsigned long long>(cmp.ccsm.metrics.ticks),
                    static_cast<unsigned long long>(
                        cmp.directStore.metrics.ticks));
        std::printf("GPU L2 miss rate     %11.2f%% %11.2f%%\n",
                    cmp.ccsm.metrics.gpuL2MissRate * 100,
                    cmp.directStore.metrics.gpuL2MissRate * 100);
        std::printf("pushed lines         %12s %12llu\n", "-",
                    static_cast<unsigned long long>(
                        cmp.directStore.metrics.dsFills));
        std::printf("\nDirect store speedup: %.1f%%\n",
                    (cmp.speedup() - 1.0) * 100.0);
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
