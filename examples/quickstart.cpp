// Quickstart: simulate one benchmark under both coherence schemes and
// print the headline numbers. This is the 30-second tour of the library.
//
//   ./quickstart           runs vectorAdd (VA), small input
//   ./quickstart NN big    any Table II code and input size
#include <cstdio>
#include <string>

#include "workloads/runner.h"

int main(int argc, char** argv)
{
    using namespace dscoh;

    const std::string code = argc > 1 ? argv[1] : "VA";
    const InputSize size = (argc > 2 && std::string(argv[2]) == "big")
                               ? InputSize::kBig
                               : InputSize::kSmall;

    if (!WorkloadRegistry::instance().has(code)) {
        std::printf("unknown benchmark '%s'; codes:", code.c_str());
        for (const auto& c : WorkloadRegistry::instance().codes())
            std::printf(" %s", c.c_str());
        std::printf("\n");
        return 1;
    }

    const Workload& workload = WorkloadRegistry::instance().get(code);
    const WorkloadInfo info = workload.info();
    std::printf("Benchmark %s (%s), %s input (%s), suite %s\n",
                info.code.c_str(), info.fullName.c_str(), to_string(size),
                size == InputSize::kSmall ? info.smallInput.c_str()
                                          : info.bigInput.c_str(),
                info.suite.c_str());

    // compareModes builds two independent Systems (Table I configuration),
    // allocates the benchmark's arrays the way the translated program
    // would, runs CPU-produce then the kernels, and verifies every checked
    // value on the way.
    const ComparisonResult cmp = compareModes(workload, size);

    std::printf("\n                      %14s %14s\n", "CCSM", "DirectStore");
    std::printf("execution ticks       %14llu %14llu\n",
                static_cast<unsigned long long>(cmp.ccsm.metrics.ticks),
                static_cast<unsigned long long>(cmp.directStore.metrics.ticks));
    std::printf("GPU L2 accesses       %14llu %14llu\n",
                static_cast<unsigned long long>(cmp.ccsm.metrics.gpuL2Accesses),
                static_cast<unsigned long long>(
                    cmp.directStore.metrics.gpuL2Accesses));
    std::printf("GPU L2 miss rate      %13.2f%% %13.2f%%\n",
                cmp.ccsm.metrics.gpuL2MissRate * 100,
                cmp.directStore.metrics.gpuL2MissRate * 100);
    std::printf("compulsory misses     %14llu %14llu\n",
                static_cast<unsigned long long>(cmp.ccsm.metrics.gpuL2Compulsory),
                static_cast<unsigned long long>(
                    cmp.directStore.metrics.gpuL2Compulsory));
    std::printf("coherence messages    %14llu %14llu\n",
                static_cast<unsigned long long>(
                    cmp.ccsm.metrics.coherenceMessages),
                static_cast<unsigned long long>(
                    cmp.directStore.metrics.coherenceMessages));
    std::printf("direct-store pushes   %14s %14llu\n", "-",
                static_cast<unsigned long long>(cmp.directStore.metrics.dsFills));
    std::printf("\nDirect store speedup: %.1f%%\n",
                (cmp.speedup() - 1.0) * 100.0);
    return 0;
}
