// Domain study: the Pannotia-style irregular graph workloads (GC, MS, SP)
// plus BFS under both coherence schemes — the kind of exploration a user of
// this library would run to decide whether direct store helps their
// workload class.
//
// Irregular neighbour lookups defeat coalescing and stress the GPU L2;
// whether the push pays off depends on how many traversal rounds amortize
// the one-time transfer (GC few rounds -> gains; MS many rounds -> ~0).
#include <cstdio>

#include "workloads/runner.h"

int main()
{
    using namespace dscoh;
    std::printf("Graph analytics under pull (CCSM) vs push (direct store)\n\n");
    std::printf("%-5s %-8s %12s %12s %9s %9s %9s\n", "Code", "Input",
                "CCSM ticks", "DS ticks", "speedup", "mrCCSM", "mrDS");

    for (const auto& code : {"BF", "GC", "MS", "SP"}) {
        for (const InputSize size : {InputSize::kSmall, InputSize::kBig}) {
            const auto cmp =
                compareModes(WorkloadRegistry::instance().get(code), size);
            std::printf("%-5s %-8s %12llu %12llu %8.1f%% %8.2f%% %8.2f%%\n",
                        code, to_string(size),
                        static_cast<unsigned long long>(cmp.ccsm.metrics.ticks),
                        static_cast<unsigned long long>(
                            cmp.directStore.metrics.ticks),
                        (cmp.speedup() - 1.0) * 100.0,
                        cmp.ccsm.metrics.gpuL2MissRate * 100.0,
                        cmp.directStore.metrics.gpuL2MissRate * 100.0);
        }
    }

    std::printf("\nReading the table: the CSR arrays (offsets/edges) are "
                "CPU-produced and\nre-traversed every round; the more rounds "
                "a kernel runs (MS > GC > SP),\nthe smaller the one-time push "
                "benefit becomes — the same amortization the\npaper sees for "
                "its zero-speedup group.\n");
    return 0;
}
