// Demonstrates the SIII-C source-to-source translator on a small CUDA-like
// program: kernel-argument capture, size evaluation, and the rewrite of
// malloc/cudaMalloc into fixed-address ds_mmap calls in the reserved
// region. Finally shows that the simulator's allocator accepts exactly the
// addresses the translator assigned (the MAP_FIXED contract).
#include <cstdio>

#include "translate/translator.h"
#include "vm/address_space.h"

int main()
{
    using namespace dscoh;
    using namespace dscoh::xlate;

    const std::map<std::string, std::string> project{
        {"blackscholes.cu", R"cuda(
#define OPTIONS 5000

__global__ void price(float* S, float* X, float* T, float* call, float* put);

int main() {
    float *S, *X, *T, *call, *put;
    S = (float*)malloc(OPTIONS * sizeof(float));
    X = (float*)malloc(OPTIONS * sizeof(float));
    T = (float*)malloc(OPTIONS * sizeof(float));
    CUDA_CHECK(cudaMalloc((void**)&call, OPTIONS * sizeof(float)));
    CUDA_CHECK(cudaMalloc((void**)&put, OPTIONS * sizeof(float)));

    init_inputs(S, X, T, OPTIONS); // host produce phase

    price<<<OPTIONS / 128, 128>>>(S, X, T, call, put);
    return 0;
}
)cuda"},
    };

    SourceTranslator translator;
    const TranslateResult result = translator.translateProject(project);

    std::printf("=== kernel launches found ===\n");
    for (const auto& launch : result.launches) {
        std::printf("  %s<<<...>>>(", launch.kernel.c_str());
        for (std::size_t i = 0; i < launch.arguments.size(); ++i)
            std::printf("%s%s", i ? ", " : "", launch.arguments[i].c_str());
        std::printf(")  in %s\n", launch.file.c_str());
    }

    std::printf("\n=== allocations moved to the direct-store region ===\n");
    for (const auto& alloc : result.allocations) {
        std::printf("  %-6s at 0x%llx  %8llu bytes  (%s; size %s)\n",
                    alloc.variable.c_str(),
                    static_cast<unsigned long long>(alloc.address),
                    static_cast<unsigned long long>(alloc.bytes),
                    alloc.sizeKnown ? "evaluated" : "fallback reservation",
                    alloc.sizeExpr.c_str());
    }

    std::printf("\n=== rewritten source ===\n%s\n",
                result.outputs.at("blackscholes.cu").c_str());

    for (const auto& diag : result.diagnostics)
        std::printf("note: %s\n", diag.c_str());

    // The MAP_FIXED contract: the simulated address space accepts exactly
    // these (address, size) reservations with no overlap.
    AddressSpace space(1ull << 30);
    for (const auto& alloc : result.allocations)
        space.dsMmapFixed(alloc.address, alloc.bytes);
    std::printf("\nAll %zu reservations mapped MAP_FIXED in the simulated "
                "address space.\n",
                result.allocations.size());
    return 0;
}
