file(REMOVE_RECURSE
  "CMakeFiles/coh_tests.dir/coh_coverage_test.cpp.o"
  "CMakeFiles/coh_tests.dir/coh_coverage_test.cpp.o.d"
  "CMakeFiles/coh_tests.dir/coh_directory_test.cpp.o"
  "CMakeFiles/coh_tests.dir/coh_directory_test.cpp.o.d"
  "CMakeFiles/coh_tests.dir/coh_home_test.cpp.o"
  "CMakeFiles/coh_tests.dir/coh_home_test.cpp.o.d"
  "CMakeFiles/coh_tests.dir/coh_protocol_test.cpp.o"
  "CMakeFiles/coh_tests.dir/coh_protocol_test.cpp.o.d"
  "CMakeFiles/coh_tests.dir/coh_random_test.cpp.o"
  "CMakeFiles/coh_tests.dir/coh_random_test.cpp.o.d"
  "coh_tests"
  "coh_tests.pdb"
  "coh_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coh_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
