# Empty compiler generated dependencies file for coh_tests.
# This may be replaced when dependencies are built.
