
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net_network_test.cpp" "tests/CMakeFiles/net_tests.dir/net_network_test.cpp.o" "gcc" "tests/CMakeFiles/net_tests.dir/net_network_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dscoh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/translate/CMakeFiles/dscoh_translate.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/dscoh_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dscoh_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cli/CMakeFiles/dscoh_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/dscoh_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/dscoh_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/dscoh_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dscoh_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dscoh_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/dscoh_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dscoh_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
