# Empty dependencies file for xlate_tests.
# This may be replaced when dependencies are built.
