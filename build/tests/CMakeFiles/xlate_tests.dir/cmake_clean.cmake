file(REMOVE_RECURSE
  "CMakeFiles/xlate_tests.dir/xlate_fuzz_test.cpp.o"
  "CMakeFiles/xlate_tests.dir/xlate_fuzz_test.cpp.o.d"
  "CMakeFiles/xlate_tests.dir/xlate_translator_test.cpp.o"
  "CMakeFiles/xlate_tests.dir/xlate_translator_test.cpp.o.d"
  "xlate_tests"
  "xlate_tests.pdb"
  "xlate_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xlate_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
