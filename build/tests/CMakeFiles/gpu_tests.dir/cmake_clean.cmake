file(REMOVE_RECURSE
  "CMakeFiles/gpu_tests.dir/gpu_l1_test.cpp.o"
  "CMakeFiles/gpu_tests.dir/gpu_l1_test.cpp.o.d"
  "CMakeFiles/gpu_tests.dir/gpu_sm_test.cpp.o"
  "CMakeFiles/gpu_tests.dir/gpu_sm_test.cpp.o.d"
  "gpu_tests"
  "gpu_tests.pdb"
  "gpu_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
