# Empty dependencies file for translator_demo.
# This may be replaced when dependencies are built.
