file(REMOVE_RECURSE
  "CMakeFiles/translator_demo.dir/translator_demo.cpp.o"
  "CMakeFiles/translator_demo.dir/translator_demo.cpp.o.d"
  "translator_demo"
  "translator_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translator_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
