file(REMOVE_RECURSE
  "libdscoh_coherence.a"
)
