# Empty dependencies file for dscoh_coherence.
# This may be replaced when dependencies are built.
