
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coherence/cache_agent.cpp" "src/coherence/CMakeFiles/dscoh_coherence.dir/cache_agent.cpp.o" "gcc" "src/coherence/CMakeFiles/dscoh_coherence.dir/cache_agent.cpp.o.d"
  "/root/repo/src/coherence/home_controller.cpp" "src/coherence/CMakeFiles/dscoh_coherence.dir/home_controller.cpp.o" "gcc" "src/coherence/CMakeFiles/dscoh_coherence.dir/home_controller.cpp.o.d"
  "/root/repo/src/coherence/transition_coverage.cpp" "src/coherence/CMakeFiles/dscoh_coherence.dir/transition_coverage.cpp.o" "gcc" "src/coherence/CMakeFiles/dscoh_coherence.dir/transition_coverage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dscoh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dscoh_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dscoh_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
