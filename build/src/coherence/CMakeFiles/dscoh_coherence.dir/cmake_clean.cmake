file(REMOVE_RECURSE
  "CMakeFiles/dscoh_coherence.dir/cache_agent.cpp.o"
  "CMakeFiles/dscoh_coherence.dir/cache_agent.cpp.o.d"
  "CMakeFiles/dscoh_coherence.dir/home_controller.cpp.o"
  "CMakeFiles/dscoh_coherence.dir/home_controller.cpp.o.d"
  "CMakeFiles/dscoh_coherence.dir/transition_coverage.cpp.o"
  "CMakeFiles/dscoh_coherence.dir/transition_coverage.cpp.o.d"
  "libdscoh_coherence.a"
  "libdscoh_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dscoh_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
