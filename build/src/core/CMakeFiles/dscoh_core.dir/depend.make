# Empty dependencies file for dscoh_core.
# This may be replaced when dependencies are built.
