file(REMOVE_RECURSE
  "libdscoh_core.a"
)
