file(REMOVE_RECURSE
  "CMakeFiles/dscoh_core.dir/config_io.cpp.o"
  "CMakeFiles/dscoh_core.dir/config_io.cpp.o.d"
  "CMakeFiles/dscoh_core.dir/system.cpp.o"
  "CMakeFiles/dscoh_core.dir/system.cpp.o.d"
  "libdscoh_core.a"
  "libdscoh_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dscoh_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
