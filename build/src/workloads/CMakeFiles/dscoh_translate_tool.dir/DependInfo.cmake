
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/dscoh_translate.cpp" "src/workloads/CMakeFiles/dscoh_translate_tool.dir/__/__/tools/dscoh_translate.cpp.o" "gcc" "src/workloads/CMakeFiles/dscoh_translate_tool.dir/__/__/tools/dscoh_translate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/translate/CMakeFiles/dscoh_translate.dir/DependInfo.cmake"
  "/root/repo/build/src/cli/CMakeFiles/dscoh_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/dscoh_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dscoh_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
