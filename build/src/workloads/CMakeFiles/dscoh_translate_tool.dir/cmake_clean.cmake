file(REMOVE_RECURSE
  "CMakeFiles/dscoh_translate_tool.dir/__/__/tools/dscoh_translate.cpp.o"
  "CMakeFiles/dscoh_translate_tool.dir/__/__/tools/dscoh_translate.cpp.o.d"
  "dscoh_translate"
  "dscoh_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dscoh_translate_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
