# Empty dependencies file for dscoh_translate_tool.
# This may be replaced when dependencies are built.
