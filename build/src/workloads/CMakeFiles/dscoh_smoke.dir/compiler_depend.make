# Empty compiler generated dependencies file for dscoh_smoke.
# This may be replaced when dependencies are built.
