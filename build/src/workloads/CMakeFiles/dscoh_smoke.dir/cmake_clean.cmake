file(REMOVE_RECURSE
  "CMakeFiles/dscoh_smoke.dir/__/__/tools/smoke.cpp.o"
  "CMakeFiles/dscoh_smoke.dir/__/__/tools/smoke.cpp.o.d"
  "dscoh_smoke"
  "dscoh_smoke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dscoh_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
