# Empty compiler generated dependencies file for dscoh_workloads.
# This may be replaced when dependencies are built.
