file(REMOVE_RECURSE
  "libdscoh_workloads.a"
)
