file(REMOVE_RECURSE
  "CMakeFiles/dscoh_workloads.dir/parboil_pannotia.cpp.o"
  "CMakeFiles/dscoh_workloads.dir/parboil_pannotia.cpp.o.d"
  "CMakeFiles/dscoh_workloads.dir/rodinia.cpp.o"
  "CMakeFiles/dscoh_workloads.dir/rodinia.cpp.o.d"
  "CMakeFiles/dscoh_workloads.dir/runner.cpp.o"
  "CMakeFiles/dscoh_workloads.dir/runner.cpp.o.d"
  "CMakeFiles/dscoh_workloads.dir/sdk_standalone.cpp.o"
  "CMakeFiles/dscoh_workloads.dir/sdk_standalone.cpp.o.d"
  "CMakeFiles/dscoh_workloads.dir/workload.cpp.o"
  "CMakeFiles/dscoh_workloads.dir/workload.cpp.o.d"
  "libdscoh_workloads.a"
  "libdscoh_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dscoh_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
