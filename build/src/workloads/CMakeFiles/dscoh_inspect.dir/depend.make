# Empty dependencies file for dscoh_inspect.
# This may be replaced when dependencies are built.
