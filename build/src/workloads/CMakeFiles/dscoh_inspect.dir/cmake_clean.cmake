file(REMOVE_RECURSE
  "CMakeFiles/dscoh_inspect.dir/__/__/tools/inspect.cpp.o"
  "CMakeFiles/dscoh_inspect.dir/__/__/tools/inspect.cpp.o.d"
  "dscoh_inspect"
  "dscoh_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dscoh_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
