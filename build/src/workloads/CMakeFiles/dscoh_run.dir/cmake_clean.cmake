file(REMOVE_RECURSE
  "CMakeFiles/dscoh_run.dir/__/__/tools/dscoh_run.cpp.o"
  "CMakeFiles/dscoh_run.dir/__/__/tools/dscoh_run.cpp.o.d"
  "dscoh_run"
  "dscoh_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dscoh_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
