# Empty compiler generated dependencies file for dscoh_run.
# This may be replaced when dependencies are built.
