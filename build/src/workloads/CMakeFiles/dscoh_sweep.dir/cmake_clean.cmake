file(REMOVE_RECURSE
  "CMakeFiles/dscoh_sweep.dir/__/__/tools/sweep.cpp.o"
  "CMakeFiles/dscoh_sweep.dir/__/__/tools/sweep.cpp.o.d"
  "dscoh_sweep"
  "dscoh_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dscoh_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
