
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/sweep.cpp" "src/workloads/CMakeFiles/dscoh_sweep.dir/__/__/tools/sweep.cpp.o" "gcc" "src/workloads/CMakeFiles/dscoh_sweep.dir/__/__/tools/sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/dscoh_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dscoh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/dscoh_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/dscoh_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/dscoh_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dscoh_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dscoh_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/dscoh_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dscoh_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
