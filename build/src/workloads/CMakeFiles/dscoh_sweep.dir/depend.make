# Empty dependencies file for dscoh_sweep.
# This may be replaced when dependencies are built.
