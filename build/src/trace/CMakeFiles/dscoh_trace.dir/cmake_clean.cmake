file(REMOVE_RECURSE
  "CMakeFiles/dscoh_trace.dir/trace_format.cpp.o"
  "CMakeFiles/dscoh_trace.dir/trace_format.cpp.o.d"
  "libdscoh_trace.a"
  "libdscoh_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dscoh_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
