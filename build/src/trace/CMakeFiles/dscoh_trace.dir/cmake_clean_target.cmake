file(REMOVE_RECURSE
  "libdscoh_trace.a"
)
