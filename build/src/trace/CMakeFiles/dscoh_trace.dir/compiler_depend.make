# Empty compiler generated dependencies file for dscoh_trace.
# This may be replaced when dependencies are built.
