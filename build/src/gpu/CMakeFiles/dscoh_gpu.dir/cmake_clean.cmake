file(REMOVE_RECURSE
  "CMakeFiles/dscoh_gpu.dir/gpu_device.cpp.o"
  "CMakeFiles/dscoh_gpu.dir/gpu_device.cpp.o.d"
  "CMakeFiles/dscoh_gpu.dir/gpu_l2_slice.cpp.o"
  "CMakeFiles/dscoh_gpu.dir/gpu_l2_slice.cpp.o.d"
  "CMakeFiles/dscoh_gpu.dir/sm.cpp.o"
  "CMakeFiles/dscoh_gpu.dir/sm.cpp.o.d"
  "libdscoh_gpu.a"
  "libdscoh_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dscoh_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
