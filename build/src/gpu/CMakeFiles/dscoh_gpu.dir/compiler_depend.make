# Empty compiler generated dependencies file for dscoh_gpu.
# This may be replaced when dependencies are built.
