
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/gpu_device.cpp" "src/gpu/CMakeFiles/dscoh_gpu.dir/gpu_device.cpp.o" "gcc" "src/gpu/CMakeFiles/dscoh_gpu.dir/gpu_device.cpp.o.d"
  "/root/repo/src/gpu/gpu_l2_slice.cpp" "src/gpu/CMakeFiles/dscoh_gpu.dir/gpu_l2_slice.cpp.o" "gcc" "src/gpu/CMakeFiles/dscoh_gpu.dir/gpu_l2_slice.cpp.o.d"
  "/root/repo/src/gpu/sm.cpp" "src/gpu/CMakeFiles/dscoh_gpu.dir/sm.cpp.o" "gcc" "src/gpu/CMakeFiles/dscoh_gpu.dir/sm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dscoh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dscoh_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dscoh_net.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/dscoh_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/dscoh_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
