file(REMOVE_RECURSE
  "libdscoh_gpu.a"
)
