
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/cpu_cache_agent.cpp" "src/cpu/CMakeFiles/dscoh_cpu.dir/cpu_cache_agent.cpp.o" "gcc" "src/cpu/CMakeFiles/dscoh_cpu.dir/cpu_cache_agent.cpp.o.d"
  "/root/repo/src/cpu/cpu_core.cpp" "src/cpu/CMakeFiles/dscoh_cpu.dir/cpu_core.cpp.o" "gcc" "src/cpu/CMakeFiles/dscoh_cpu.dir/cpu_core.cpp.o.d"
  "/root/repo/src/cpu/tlb.cpp" "src/cpu/CMakeFiles/dscoh_cpu.dir/tlb.cpp.o" "gcc" "src/cpu/CMakeFiles/dscoh_cpu.dir/tlb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dscoh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dscoh_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dscoh_net.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/dscoh_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/dscoh_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
