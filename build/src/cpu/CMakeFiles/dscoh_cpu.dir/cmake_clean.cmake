file(REMOVE_RECURSE
  "CMakeFiles/dscoh_cpu.dir/cpu_cache_agent.cpp.o"
  "CMakeFiles/dscoh_cpu.dir/cpu_cache_agent.cpp.o.d"
  "CMakeFiles/dscoh_cpu.dir/cpu_core.cpp.o"
  "CMakeFiles/dscoh_cpu.dir/cpu_core.cpp.o.d"
  "CMakeFiles/dscoh_cpu.dir/tlb.cpp.o"
  "CMakeFiles/dscoh_cpu.dir/tlb.cpp.o.d"
  "libdscoh_cpu.a"
  "libdscoh_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dscoh_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
