file(REMOVE_RECURSE
  "libdscoh_cpu.a"
)
