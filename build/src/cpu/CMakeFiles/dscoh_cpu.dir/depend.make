# Empty dependencies file for dscoh_cpu.
# This may be replaced when dependencies are built.
