file(REMOVE_RECURSE
  "libdscoh_cli.a"
)
