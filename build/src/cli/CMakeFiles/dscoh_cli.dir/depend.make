# Empty dependencies file for dscoh_cli.
# This may be replaced when dependencies are built.
