file(REMOVE_RECURSE
  "CMakeFiles/dscoh_cli.dir/options.cpp.o"
  "CMakeFiles/dscoh_cli.dir/options.cpp.o.d"
  "libdscoh_cli.a"
  "libdscoh_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dscoh_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
