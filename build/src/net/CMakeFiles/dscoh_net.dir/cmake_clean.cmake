file(REMOVE_RECURSE
  "CMakeFiles/dscoh_net.dir/network.cpp.o"
  "CMakeFiles/dscoh_net.dir/network.cpp.o.d"
  "libdscoh_net.a"
  "libdscoh_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dscoh_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
