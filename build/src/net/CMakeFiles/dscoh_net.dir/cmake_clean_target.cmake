file(REMOVE_RECURSE
  "libdscoh_net.a"
)
