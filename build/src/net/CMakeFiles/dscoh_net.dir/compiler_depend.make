# Empty compiler generated dependencies file for dscoh_net.
# This may be replaced when dependencies are built.
