file(REMOVE_RECURSE
  "CMakeFiles/dscoh_vm.dir/address_space.cpp.o"
  "CMakeFiles/dscoh_vm.dir/address_space.cpp.o.d"
  "libdscoh_vm.a"
  "libdscoh_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dscoh_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
