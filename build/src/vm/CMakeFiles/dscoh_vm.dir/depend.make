# Empty dependencies file for dscoh_vm.
# This may be replaced when dependencies are built.
