file(REMOVE_RECURSE
  "libdscoh_vm.a"
)
