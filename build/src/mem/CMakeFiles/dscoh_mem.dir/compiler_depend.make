# Empty compiler generated dependencies file for dscoh_mem.
# This may be replaced when dependencies are built.
