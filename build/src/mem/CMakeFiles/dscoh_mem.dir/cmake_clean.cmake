file(REMOVE_RECURSE
  "CMakeFiles/dscoh_mem.dir/dram.cpp.o"
  "CMakeFiles/dscoh_mem.dir/dram.cpp.o.d"
  "CMakeFiles/dscoh_mem.dir/replacement.cpp.o"
  "CMakeFiles/dscoh_mem.dir/replacement.cpp.o.d"
  "libdscoh_mem.a"
  "libdscoh_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dscoh_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
