file(REMOVE_RECURSE
  "libdscoh_mem.a"
)
