file(REMOVE_RECURSE
  "libdscoh_sim.a"
)
