file(REMOVE_RECURSE
  "CMakeFiles/dscoh_sim.dir/event_queue.cpp.o"
  "CMakeFiles/dscoh_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/dscoh_sim.dir/stats.cpp.o"
  "CMakeFiles/dscoh_sim.dir/stats.cpp.o.d"
  "libdscoh_sim.a"
  "libdscoh_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dscoh_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
