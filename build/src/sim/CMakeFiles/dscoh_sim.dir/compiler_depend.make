# Empty compiler generated dependencies file for dscoh_sim.
# This may be replaced when dependencies are built.
