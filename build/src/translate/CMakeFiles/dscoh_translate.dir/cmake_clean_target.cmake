file(REMOVE_RECURSE
  "libdscoh_translate.a"
)
