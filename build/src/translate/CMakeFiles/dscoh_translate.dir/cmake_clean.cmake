file(REMOVE_RECURSE
  "CMakeFiles/dscoh_translate.dir/lexer.cpp.o"
  "CMakeFiles/dscoh_translate.dir/lexer.cpp.o.d"
  "CMakeFiles/dscoh_translate.dir/translator.cpp.o"
  "CMakeFiles/dscoh_translate.dir/translator.cpp.o.d"
  "libdscoh_translate.a"
  "libdscoh_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dscoh_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
