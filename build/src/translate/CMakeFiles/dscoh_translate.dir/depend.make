# Empty dependencies file for dscoh_translate.
# This may be replaced when dependencies are built.
