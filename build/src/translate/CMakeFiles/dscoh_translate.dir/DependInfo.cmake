
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/translate/lexer.cpp" "src/translate/CMakeFiles/dscoh_translate.dir/lexer.cpp.o" "gcc" "src/translate/CMakeFiles/dscoh_translate.dir/lexer.cpp.o.d"
  "/root/repo/src/translate/translator.cpp" "src/translate/CMakeFiles/dscoh_translate.dir/translator.cpp.o" "gcc" "src/translate/CMakeFiles/dscoh_translate.dir/translator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dscoh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/dscoh_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
