# Empty compiler generated dependencies file for compulsory_misses.
# This may be replaced when dependencies are built.
