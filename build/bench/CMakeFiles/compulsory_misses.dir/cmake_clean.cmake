file(REMOVE_RECURSE
  "CMakeFiles/compulsory_misses.dir/compulsory_misses.cpp.o"
  "CMakeFiles/compulsory_misses.dir/compulsory_misses.cpp.o.d"
  "compulsory_misses"
  "compulsory_misses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compulsory_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
