# Empty compiler generated dependencies file for traffic_breakdown.
# This may be replaced when dependencies are built.
