file(REMOVE_RECURSE
  "CMakeFiles/traffic_breakdown.dir/traffic_breakdown.cpp.o"
  "CMakeFiles/traffic_breakdown.dir/traffic_breakdown.cpp.o.d"
  "traffic_breakdown"
  "traffic_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
