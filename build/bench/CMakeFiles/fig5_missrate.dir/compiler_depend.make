# Empty compiler generated dependencies file for fig5_missrate.
# This may be replaced when dependencies are built.
