#!/usr/bin/env sh
# Crash-recovery check for the sweep SERVICE: start the daemon, submit two
# tenants' requests at mixed priorities, SIGKILL the daemon mid-flight
# (no chance to clean up — the service WAL plus each request's journal
# must carry the recovery), restart it on the same state directory, and
# require every request's results.json to be byte-identical to the same
# request run on a never-killed daemon.
#
# Usage: scripts/svc_kill_resume_check.sh [build_dir]
set -eu

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
svc="${repo_root}/${build_dir}/src/svc/dscoh_svc"
client="${repo_root}/${build_dir}/src/svc/dscoh_client"
[ -x "${svc}" ] && [ -x "${client}" ] || {
    echo "svc_kill_resume_check: ${svc} / ${client} not built" >&2
    exit 1
}

work="$(mktemp -d)"
daemon_pid=""
cleanup() {
    [ -n "${daemon_pid}" ] && kill -9 "${daemon_pid}" 2> /dev/null || true
    rm -rf "${work}"
}
trap cleanup EXIT

# Waits until the daemon behind $1 answers a ping.
wait_ping() {
    tries=0
    while ! "${client}" --socket "$1" ping > /dev/null 2>&1; do
        tries=$((tries + 1))
        if [ "${tries}" -gt 300 ]; then
            echo "svc_kill_resume_check: daemon never answered ping" >&2
            exit 1
        fi
        sleep 0.1
    done
}

# --- Reference: the same two requests on a daemon that is never killed.
ref_state="${work}/ref"
echo "svc_kill_resume_check: reference daemon"
"${svc}" --state "${ref_state}" --jobs 2 > "${work}/ref_daemon.log" 2>&1 &
daemon_pid=$!
wait_ping "${ref_state}/svc.sock"
"${client}" --socket "${ref_state}/svc.sock" submit \
    --tenant alice --priority 1 --only VA,NN > /dev/null
"${client}" --socket "${ref_state}/svc.sock" submit \
    --tenant bob --weight 2 --only BP > /dev/null
"${client}" --socket "${ref_state}/svc.sock" drain > /dev/null
"${client}" --socket "${ref_state}/svc.sock" shutdown > /dev/null
wait "${daemon_pid}" || true
daemon_pid=""
[ -f "${ref_state}/jobs/r000001/results.json" ] &&
    [ -f "${ref_state}/jobs/r000002/results.json" ] || {
    echo "svc_kill_resume_check: reference daemon published nothing" >&2
    exit 1
}

# --- Victim: same submissions, single worker so the kill lands mid-queue,
# SIGKILL once the first request's journal shows a completed job.
state="${work}/victim"
echo "svc_kill_resume_check: victim daemon (will be killed with SIGKILL)"
"${svc}" --state "${state}" --jobs 1 > "${work}/victim_daemon.log" 2>&1 &
daemon_pid=$!
wait_ping "${state}/svc.sock"
"${client}" --socket "${state}/svc.sock" submit \
    --tenant alice --priority 1 --only VA,NN > /dev/null
"${client}" --socket "${state}/svc.sock" submit \
    --tenant bob --weight 2 --only BP > /dev/null

tries=0
while ! [ -s "${state}/jobs/r000001/journal" ] &&
      ! [ -s "${state}/jobs/r000002/journal" ]; do
    tries=$((tries + 1))
    if [ "${tries}" -gt 600 ]; then
        echo "svc_kill_resume_check: no journaled job after 60s" >&2
        exit 1
    fi
    if ! kill -0 "${daemon_pid}" 2> /dev/null; then
        echo "svc_kill_resume_check: daemon died on its own" >&2
        exit 1
    fi
    sleep 0.1
done
kill -9 "${daemon_pid}"
wait "${daemon_pid}" 2> /dev/null || true
daemon_pid=""
echo "svc_kill_resume_check: killed mid-flight"

# Both requests were accepted but at most one can have published.
published=0
[ -f "${state}/jobs/r000001/results.json" ] && published=$((published + 1))
[ -f "${state}/jobs/r000002/results.json" ] && published=$((published + 1))
[ "${published}" -lt 2 ] || {
    echo "svc_kill_resume_check: daemon finished before it could be killed" >&2
    exit 1
}

# --- Restart on the same state dir; recovery re-admits and finishes
# everything the WAL says is owed.
echo "svc_kill_resume_check: restarting on the same state dir"
"${svc}" --state "${state}" --jobs 2 > "${work}/restart_daemon.log" 2>&1 &
daemon_pid=$!
wait_ping "${state}/svc.sock"
"${client}" --socket "${state}/svc.sock" drain > /dev/null
"${client}" --socket "${state}/svc.sock" shutdown > /dev/null
wait "${daemon_pid}" || true
daemon_pid=""

for id in r000001 r000002; do
    cmp "${ref_state}/jobs/${id}/results.json" \
        "${state}/jobs/${id}/results.json" || {
        echo "svc_kill_resume_check: ${id} results differ from reference" >&2
        exit 1
    }
done
echo "svc_kill_resume_check: recovered results are byte-identical" \
     "to the never-killed daemon"

# --- ENOSPC pass: the same submissions on a daemon whose disk "fills up"
# shortly after the accepts land (deterministic injection, every durable
# write from op 25 on fails with ENOSPC). The daemon must degrade — stay
# up, answer stats, reject new submits with the degraded exit code — not
# crash or corrupt state. A SIGKILL plus a clean-disk restart then owes
# exactly the same bytes as the never-killed reference.
echo "svc_kill_resume_check: ENOSPC victim (disk fills after op 25)"
estate="${work}/enospc"
"${svc}" --state "${estate}" --jobs 1 \
    --iofault "enospc-ppm=1000000,op-start=25" \
    > "${work}/enospc_daemon.log" 2>&1 &
daemon_pid=$!
wait_ping "${estate}/svc.sock"
"${client}" --socket "${estate}/svc.sock" submit \
    --tenant alice --priority 1 --only VA,NN > /dev/null
"${client}" --socket "${estate}/svc.sock" submit \
    --tenant bob --weight 2 --only BP > /dev/null

tries=0
until "${client}" --socket "${estate}/svc.sock" stats 2> /dev/null |
    grep -q '"degraded": true'; do
    tries=$((tries + 1))
    if [ "${tries}" -gt 600 ]; then
        echo "svc_kill_resume_check: daemon never degraded under ENOSPC" >&2
        exit 1
    fi
    if ! kill -0 "${daemon_pid}" 2> /dev/null; then
        echo "svc_kill_resume_check: daemon died under ENOSPC" \
             "instead of degrading" >&2
        exit 1
    fi
    sleep 0.1
done
echo "svc_kill_resume_check: daemon degraded and stayed up"

# A degraded daemon sheds new work with the dedicated exit code (7).
rc=0
"${client}" --socket "${estate}/svc.sock" submit \
    --tenant carol --only MT > /dev/null 2>&1 || rc=$?
[ "${rc}" -eq 7 ] || {
    echo "svc_kill_resume_check: degraded submit exited ${rc}, want 7" >&2
    exit 1
}

kill -9 "${daemon_pid}"
wait "${daemon_pid}" 2> /dev/null || true
daemon_pid=""

echo "svc_kill_resume_check: restarting the ENOSPC victim on a clean disk"
"${svc}" --state "${estate}" --jobs 2 > "${work}/enospc_restart.log" 2>&1 &
daemon_pid=$!
wait_ping "${estate}/svc.sock"
"${client}" --socket "${estate}/svc.sock" drain > /dev/null
"${client}" --socket "${estate}/svc.sock" shutdown > /dev/null
wait "${daemon_pid}" || true
daemon_pid=""

for id in r000001 r000002; do
    cmp "${ref_state}/jobs/${id}/results.json" \
        "${estate}/jobs/${id}/results.json" || {
        echo "svc_kill_resume_check: ENOSPC ${id} results differ" \
             "from reference" >&2
        exit 1
    }
done
echo "svc_kill_resume_check: ENOSPC recovery is byte-identical" \
     "to the never-killed daemon"
