#!/usr/bin/env bash
# Regenerates everything the repository claims: build, full test suite, and
# every table/figure bench, with outputs captured under results/.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

mkdir -p results
ctest --test-dir build 2>&1 | tee results/test_output.txt

for b in build/bench/*; do
  [ -x "$b" ] || continue
  name=$(basename "$b")
  echo "== $name =="
  "$b" 2>/dev/null | tee "results/${name}.txt"
done

echo
echo "Done. See results/ and EXPERIMENTS.md."
