#!/usr/bin/env sh
# Crash-recovery check for the sweep journal/checkpoint machinery:
# SIGTERM a single-threaded sweep once it has journaled at least one
# completed job, finish it with --resume, and require the resumed
# results.json to be byte-identical to an uninterrupted reference sweep
# (restore-determinism is the snap subsystem's keystone property).
#
# Usage: scripts/kill_resume_check.sh [build_dir]
set -eu

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
sweep="${repo_root}/${build_dir}/src/workloads/dscoh_sweep"
[ -x "${sweep}" ] || {
    echo "kill_resume_check: ${sweep} not built" >&2
    exit 1
}

work="$(mktemp -d)"
trap 'rm -rf "${work}"' EXIT

echo "kill_resume_check: reference sweep"
"${sweep}" small --json "${work}/reference.json" > "${work}/reference.txt"

# Single worker so the SIGTERM reliably lands mid-sweep.
echo "kill_resume_check: interrupted sweep (will be killed)"
"${sweep}" small --jobs 1 --json "${work}/resumed.json" \
    > /dev/null 2>&1 &
pid=$!

journal="${work}/resumed.json.journal"
tries=0
while [ ! -s "${journal}" ]; do
    tries=$((tries + 1))
    if [ "${tries}" -gt 600 ]; then
        echo "kill_resume_check: no journal after 60s" >&2
        exit 1
    fi
    if ! kill -0 "${pid}" 2> /dev/null; then
        echo "kill_resume_check: sweep finished before it could be killed" >&2
        exit 1
    fi
    sleep 0.1
done
kill -TERM "${pid}"
wait "${pid}" || true

if [ -f "${work}/resumed.json" ]; then
    echo "kill_resume_check: killed sweep must not publish results.json" >&2
    exit 1
fi
journaled="$(wc -l < "${journal}")"
echo "kill_resume_check: killed after ${journaled} journaled jobs"

echo "kill_resume_check: resuming"
"${sweep}" small --resume --json "${work}/resumed.json" \
    > "${work}/resumed.txt" 2> "${work}/resumed.log"
grep "jobs replayed" "${work}/resumed.log" || {
    echo "kill_resume_check: resume replayed nothing" >&2
    exit 1
}

cmp "${work}/reference.json" "${work}/resumed.json" || {
    echo "kill_resume_check: resumed results.json differs from reference" >&2
    exit 1
}
cmp "${work}/reference.txt" "${work}/resumed.txt" || {
    echo "kill_resume_check: resumed table differs from reference" >&2
    exit 1
}
echo "kill_resume_check: resumed sweep is byte-identical to the reference"
