#!/usr/bin/env sh
# Crash-recovery check for the sweep journal/checkpoint machinery: kill a
# single-threaded sweep once it has journaled at least one completed job,
# finish it with --resume, and require the resumed results.json to be
# byte-identical to an uninterrupted reference sweep (restore-determinism
# is the snap subsystem's keystone property). Runs twice: once with
# SIGTERM (graceful shutdown path) and once with SIGKILL (the process gets
# no chance to clean up — the journal alone must carry the recovery).
#
# Usage: scripts/kill_resume_check.sh [build_dir] [extra sweep args...]
#
# Extra arguments are passed through to every dscoh_sweep invocation, so
# e.g. `kill_resume_check.sh build --gpus 2 --ts-lease-ticks 20000` runs
# the whole crash-recovery property against a sharded multi-GPU sweep
# (see kill_resume_multigpu_check.sh).
set -eu

build_dir="${1:-build}"
[ "$#" -gt 0 ] && shift
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
sweep="${repo_root}/${build_dir}/src/workloads/dscoh_sweep"
[ -x "${sweep}" ] || {
    echo "kill_resume_check: ${sweep} not built" >&2
    exit 1
}

work="$(mktemp -d)"
trap 'rm -rf "${work}"' EXIT

echo "kill_resume_check: reference sweep"
"${sweep}" small --json "${work}/reference.json" "$@" > "${work}/reference.txt"

# Interrupts a sweep with $1 (TERM or KILL) and verifies that --resume
# reconstructs the byte-identical reference output.
kill_and_resume() {
    sig="$1"
    shift # remaining args go through to the sweep
    out="${work}/resumed_${sig}"

    # Single worker so the signal reliably lands mid-sweep.
    echo "kill_resume_check: interrupted sweep (will be killed with SIG${sig})"
    "${sweep}" small --jobs 1 --json "${out}.json" "$@" > /dev/null 2>&1 &
    pid=$!

    journal="${out}.json.journal"
    tries=0
    while [ ! -s "${journal}" ]; do
        tries=$((tries + 1))
        if [ "${tries}" -gt 600 ]; then
            echo "kill_resume_check: no journal after 60s" >&2
            exit 1
        fi
        if ! kill -0 "${pid}" 2> /dev/null; then
            echo "kill_resume_check: sweep finished before it could be killed" >&2
            exit 1
        fi
        sleep 0.1
    done
    kill "-${sig}" "${pid}"
    wait "${pid}" || true

    if [ -f "${out}.json" ]; then
        echo "kill_resume_check: killed sweep must not publish results.json" >&2
        exit 1
    fi
    journaled="$(wc -l < "${journal}")"
    echo "kill_resume_check: SIG${sig} after ${journaled} journaled jobs"

    echo "kill_resume_check: resuming"
    "${sweep}" small --resume --json "${out}.json" "$@" \
        > "${out}.txt" 2> "${out}.log"
    grep "jobs replayed" "${out}.log" || {
        echo "kill_resume_check: resume replayed nothing" >&2
        exit 1
    }

    cmp "${work}/reference.json" "${out}.json" || {
        echo "kill_resume_check: resumed results.json differs from reference" >&2
        exit 1
    }
    cmp "${work}/reference.txt" "${out}.txt" || {
        echo "kill_resume_check: resumed table differs from reference" >&2
        exit 1
    }
    echo "kill_resume_check: SIG${sig}-resumed sweep is byte-identical" \
         "to the reference"
}

kill_and_resume TERM "$@"
kill_and_resume KILL "$@"
