#!/usr/bin/env sh
# Builds the sweep tool with ThreadSanitizer and runs a parallel sweep
# subset. Any data race in the experiment engine (or in simulation state
# leaking across concurrently running SimContexts) aborts with a TSan
# report and a non-zero exit code.
#
# Usage: scripts/tsan_sweep.sh [jobs]
set -eu

jobs="${1:-4}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-tsan"

cmake -B "${build_dir}" -S "${repo_root}" -DDSCOH_TSAN=ON
cmake --build "${build_dir}" --target dscoh_sweep -j
TSAN_OPTIONS="halt_on_error=1" \
    "${build_dir}/src/workloads/dscoh_sweep" small --jobs "${jobs}" \
    --only VA,NN,BP --json "${build_dir}/tsan_results.json"
echo "tsan_sweep: no data races reported"
