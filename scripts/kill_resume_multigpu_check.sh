#!/usr/bin/env sh
# Crash-recovery check against a sharded multi-GPU sweep: the same
# kill/resume byte-identity property as kill_resume_check.sh, but with the
# DS region split across 2 GPUs (page-interleaved directory shards), 2 CPU
# cores, the ring DS network and the timestamp fast path armed — so the
# journal/checkpoint machinery has to carry per-shard in-flight state and
# lease epochs through the restore.
#
# Usage: scripts/kill_resume_multigpu_check.sh [build_dir]
set -eu

exec "$(dirname "$0")/kill_resume_check.sh" "${1:-build}" \
    --gpus 2 --cpu-cores 2 --shard-policy page --ds-topology ring \
    --ts-lease-ticks 20000
